//! The paper's Fig. 1 `Make` program: a worklist iterated while item
//! processing (three calls deep) adds new items to it — the motivating
//! real-world shape of the Concurrent Modification Problem.
//!
//! The intraprocedural certifier is sound here but cannot say *why*; the
//! §8 context-sensitive interprocedural engine pinpoints the staleness flow
//! through `processItem → doSubproblem → worklist.add`.
//!
//! Run with `cargo run --example worklist_make`.

use canvas_conformance::{Certifier, Engine};

const MAKE: &str = r#"
class Make {
    static Set worklist;
    static void main() {
        worklist = new Set();
        worklist.add("all");
        processWorklist();
    }
    static void processWorklist() {
        for (Iterator i = worklist.iterator(); i.hasNext(); ) {
            Object item = i.next();
            if (true) { processItem(item); }
        }
    }
    static void processItem(Object item) { doSubproblem(); }
    static void doSubproblem() {
        if (true) { worklist.add("newitem"); }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let certifier = Certifier::from_spec(canvas_conformance::easl::builtin::cmp())?;
    let program = canvas_conformance::minijava::Program::parse(MAKE, certifier.spec())?;

    let report = certifier.certify_program(&program, Engine::ScmpInterproc)?;
    println!("interprocedural certification of Fig. 1:\n{report}");
    assert!(!report.certified(), "the CME in Make must be detected");

    // A corrected Make snapshots the worklist before processing: the items
    // added during processing are picked up by the next outer round.
    let fixed = r#"
class Make {
    static Set worklist;
    static void main() {
        worklist = new Set();
        worklist.add("all");
        processWorklist();
    }
    static void processWorklist() {
        Set snapshot = worklist;
        worklist = new Set();
        for (Iterator i = snapshot.iterator(); i.hasNext(); ) {
            Object item = i.next();
            if (true) { processItem(item); }
        }
    }
    static void processItem(Object item) { doSubproblem(); }
    static void doSubproblem() {
        if (true) { worklist.add("newitem"); }
    }
}
"#;
    let program = canvas_conformance::minijava::Program::parse(fixed, certifier.spec())?;
    let report = certifier.certify_program(&program, Engine::ScmpInterproc)?;
    println!("after the snapshot fix:\n{report}");
    assert!(report.certified(), "the snapshot pattern is safe");
    Ok(())
}
