//! Runs every certification engine on the paper's Fig. 3 running example
//! and prints the precision/time comparison — the repository's one-screen
//! summary of the paper's message.
//!
//! Run with `cargo run --release --example engine_comparison`.

use canvas_conformance::{Certifier, Engine};

const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("...");
        if (true) { i1.next(); }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let certifier = Certifier::from_spec(canvas_conformance::easl::builtin::cmp())?;
    println!("Fig. 3: real errors at lines 10 and 13; line 11 is safe.\n");
    println!("{:<26} {:>18} {:>10} {:>8}", "engine", "reported lines", "time", "preds");
    for engine in Engine::all() {
        match certifier.certify_source(FIG3, engine) {
            Ok(r) => println!(
                "{:<26} {:>18} {:>9.2?} {:>8}",
                engine.to_string(),
                format!("{:?}", r.lines()),
                r.stats.duration,
                r.stats.predicates
            ),
            Err(e) => println!("{:<26} {e}", engine.to_string()),
        }
    }
    println!(
        "\nthe specialized certifiers are exact; the generic shape-graph baseline\n\
         false-alarms at line 11 exactly as the paper's §4.4 explains"
    );
    Ok(())
}
