//! Quickstart: derive the CMP abstraction and certify a small client.
//!
//! Run with `cargo run --example quickstart`.

use canvas_conformance::{Certifier, Engine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1-2 (certifier generation time): parse the component's EASL
    // specification and derive the specialized abstraction.
    let spec = canvas_conformance::easl::builtin::cmp();
    let certifier = Certifier::from_spec(spec)?;

    println!("derived instrumentation-predicate families (paper Fig. 4):");
    for fam in certifier.derived().families() {
        println!("  {fam}");
    }

    // Stage 3-4 (client analysis time): certify a client. This one holds an
    // iterator across a mutation of its collection — the classic CME bug.
    let client = r#"
class Main {
    static void main() {
        Set schedule = new Set();
        schedule.add("task-1");
        schedule.add("task-2");
        Iterator cursor = schedule.iterator();
        cursor.next();
        schedule.add("task-3");
        cursor.next();
    }
}
"#;
    let report = certifier.certify_source(client, Engine::ScmpFds)?;
    println!("\ncertification report:\n{report}");
    assert!(!report.certified(), "the bug must be found");

    // Fixing the bug (refreshing the iterator) certifies cleanly.
    let fixed = client.replace(
        "schedule.add(\"task-3\");",
        "schedule.add(\"task-3\");\n        cursor = schedule.iterator();",
    );
    let report = certifier.certify_source(&fixed, Engine::ScmpFds)?;
    println!("after the fix:\n{report}");
    assert!(report.certified());
    Ok(())
}
