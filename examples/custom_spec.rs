//! Writing your own EASL specification and deriving its certifier.
//!
//! The component here is a connection pool: leasing a connection hands out
//! a `Lease`; recycling the pool revokes all outstanding leases (the same
//! grabbed-resource shape as the paper's GRP, written from scratch to show
//! the full authoring flow).
//!
//! Run with `cargo run --example custom_spec`.

use canvas_conformance::easl::Spec;
use canvas_conformance::{Certifier, Engine};

const POOL_SPEC: &str = r#"
class Epoch { /* identity of one pool generation */ }

class Pool {
    Epoch epoch;
    Pool() { epoch = new Epoch(); }
    Lease lease() { return new Lease(this); }
    void recycle() { epoch = new Epoch(); }
}

class Lease {
    Pool pool;
    Epoch born;
    Lease(Pool p) { pool = p; born = p.epoch; }
    Object use() { requires (born == pool.epoch); }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Spec::parse("pool", POOL_SPEC)?;
    println!(
        "spec classification: {:?} (derivation guaranteed to converge)",
        canvas_conformance::easl::classify(&spec)
    );

    let certifier = Certifier::from_spec(spec)?;
    println!("derived families:");
    for fam in certifier.derived().families() {
        println!("  {fam}");
    }

    // A client that keeps using a lease across a recycle.
    let client = r#"
class Main {
    static void main() {
        Pool pool = new Pool();
        Lease a = pool.lease();
        a.use();
        pool.recycle();
        Lease b = pool.lease();
        b.use();
        a.use();
    }
}
"#;
    let report = certifier.certify_source(client, Engine::ScmpFds)?;
    println!("\n{report}");
    assert_eq!(report.lines(), vec![10], "only the revoked lease use is flagged");
    Ok(())
}
