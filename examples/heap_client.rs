//! HCMP: certifying a client that stores iterators in object fields.
//!
//! The nullary (SCMP) abstraction cannot track references once they enter
//! the heap; the first-order predicate abstraction on the TVLA-style engine
//! (§5) tracks them per *individual* and stays exact here.
//!
//! Run with `cargo run --example heap_client`.

use canvas_conformance::{Certifier, Engine};

const CLIENT: &str = r#"
class Cursor {
    Iterator it;
    Cursor() { }
}
class Main {
    static void main() {
        Set rows = new Set();
        rows.add("r1");
        Cursor c = new Cursor();
        c.it = rows.iterator();
        Iterator direct = c.it;
        direct.next();
        rows.add("r2");
        Iterator reloaded = c.it;
        reloaded.next();
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let certifier = Certifier::from_spec(canvas_conformance::easl::builtin::cmp())?;

    let scmp = certifier.certify_source(CLIENT, Engine::ScmpFds)?;
    let tvla = certifier.certify_source(CLIENT, Engine::TvlaRelational)?;

    println!("SCMP (nullary) engine — sound but loses heap-stored iterators:");
    println!("{scmp}");
    println!("TVLA (first-order) engine — exact:");
    println!("{tvla}");

    // both find the real error at line 16 (`reloaded.next()` after the add)
    assert!(tvla.lines().contains(&16));
    // the first-order abstraction reports nothing else
    assert_eq!(tvla.lines(), vec![16]);
    // the nullary engine is sound (finds it too), just less precise overall
    assert!(scmp.lines().contains(&16));
    Ok(())
}
