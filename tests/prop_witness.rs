//! Property-based tests for witness provenance: every violation the traced
//! solver reports must carry a justification chain that *replays* — each
//! link is legal under the boolean-program edge semantics and the links
//! connect from a base establishment (or entry fact) to the violating
//! culprit at the check node (see `canvas_dataflow::provenance::replay`).

use canvas_conformance::abstraction::{transform_method, EntryAssumption, Operand};
use canvas_conformance::dataflow::fds;
use canvas_conformance::dataflow::provenance::replay;
use canvas_conformance::suite::generators;
use canvas_conformance::{easl, minijava, wp};
use canvas_conformance::{Certifier, Engine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every culprit of every firing check has a chain that replays to the
    /// violating state, on generated clients of varying shape.
    #[test]
    fn witness_chains_replay(blocks in 1usize..8, iters in 1usize..4, seed in 0u64..1000) {
        let spec = easl::builtin::cmp();
        let g = generators::scmp_blocks(blocks, iters, 0.5, seed);
        let program = minijava::Program::parse(&g.source, &spec).expect("generated source parses");
        let derived = wp::derive_abstraction(&spec).expect("cmp derives");
        let main = program.main_method().expect("main");
        let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
        let (res, prov) = fds::analyze_traced(&bp);
        for c in &bp.checks {
            for op in &c.preds {
                if let Operand::Var(p) = op {
                    if res.get(c.node, *p) {
                        let links = prov.chain(&bp, c.node, *p);
                        prop_assert!(
                            replay(&bp, &links, c.node, *p),
                            "chain for culprit {p} at node {} does not replay\n{}",
                            c.node,
                            g.source
                        );
                    }
                }
            }
        }
    }

    /// At the certifier level, `--explain` attaches a witness to every FDS
    /// violation, and explaining never changes the verdict.
    #[test]
    fn explain_preserves_verdict_and_attaches_witnesses(
        blocks in 1usize..6, seed in 0u64..500
    ) {
        let g = generators::scmp_blocks(blocks, 2, 0.5, seed);
        let plain = Certifier::from_spec(easl::builtin::cmp()).expect("cmp derives");
        let explained = Certifier::from_spec(easl::builtin::cmp())
            .expect("cmp derives")
            .with_explain(true);
        let r0 = plain.certify_source(&g.source, Engine::ScmpFds).expect("fds runs");
        let r1 = explained.certify_source(&g.source, Engine::ScmpFds).expect("fds runs");
        prop_assert_eq!(r0.lines(), r1.lines(), "\n{}", g.source);
        prop_assert_eq!(r1.lines(), g.error_lines.clone(), "\n{}", g.source);
        for v in &r1.violations {
            prop_assert!(
                matches!(v.witness, Some(canvas_conformance::core::Witness::Trace(_))),
                "FDS violation at line {} lacks a witness trace",
                v.line
            );
        }
    }
}
