//! Robustness properties of the resilience layer.
//!
//! Two families of checks:
//!
//! * **panic-free frontier** — mutated and truncated `.mj` / `.easl`
//!   sources must produce `Err`, never a panic, through `Spec::parse`,
//!   `Program::parse` and the full certification pipeline;
//! * **graceful degradation** — every governor budget (steps, deadline,
//!   states) trips every engine into `Verdict::Inconclusive` with the
//!   matching reason, and the default (unlimited) budget changes nothing.

use canvas_conformance::faults::Budget;
use canvas_conformance::suite::generators::{random_client, RandomCfg};
use canvas_conformance::{Certifier, Engine};
use canvas_easl::Spec;
use canvas_minijava::Program;
use proptest::prelude::*;

/// The EASL source of the CMP spec, for spec-side mutation.
const CMP_EASL: &str = r#"
class Set {
    Version ver;
    Set() { ver = new Version(); }
    void add(Object o) { ver = new Version(); }
    Iterator iterator() { return new Iterator(this); }
}
class Iterator {
    Set set;
    Version ver;
    Iterator(Set s) { set = s; ver = s.ver; }
    Object next() { requires (ver == set.ver); }
    void remove() { requires (ver == set.ver); set.ver = new Version(); ver = set.ver; }
    boolean hasNext() { requires (ver == set.ver); }
}
class Version { Version() { } }
"#;

/// Deterministically mutates `src`: truncate at `cut`, then flip one byte
/// at `pos` to `with`.
fn mutate(src: &str, cut: usize, pos: usize, with: u8) -> String {
    let cut = cut % (src.len() + 1);
    let mut s: Vec<u8> = src.as_bytes()[..cut].to_vec();
    if !s.is_empty() {
        let pos = pos % s.len();
        s[pos] = with;
    }
    // arbitrary byte flips can break UTF-8; parse from the lossy decoding,
    // exactly what a file read via `read_to_string` could never produce a
    // panic for either
    String::from_utf8_lossy(&s).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutated/truncated EASL specs: `Err` or a valid `Spec`, never a panic.
    #[test]
    fn mutated_spec_never_panics(cut in 0usize..2048, pos in 0usize..2048, with in 0usize..256) {
        let src = mutate(CMP_EASL, cut, pos, with as u8);
        let _ = Spec::parse("mutated", &src);
    }

    /// Mutated/truncated mini-Java clients: `Err` or a program, never a
    /// panic — through parsing *and* full certification with every engine.
    #[test]
    fn mutated_client_never_panics(
        seed in 0u64..500,
        cut in 0usize..2048,
        pos in 0usize..2048,
        with in 0usize..256,
    ) {
        let spec = canvas_conformance::easl::builtin::cmp();
        let src = mutate(&random_client(RandomCfg::default(), seed), cut, pos, with as u8);
        if let Ok(program) = Program::parse(&src, &spec) {
            let c = Certifier::from_spec(spec).expect("cmp derives");
            for engine in Engine::all() {
                // hard errors (state budget) are fine; panics are not
                let _ = c.certify_program(&program, engine);
            }
        }
    }
}

const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#;

fn certify_with_budget(budget: Budget, engine: Engine) -> canvas_conformance::Report {
    Certifier::from_spec(canvas_conformance::easl::builtin::cmp())
        .expect("cmp derives")
        .with_budget(budget)
        .certify_source(FIG3, engine)
        .expect("budget exhaustion is not a hard error")
}

#[test]
fn step_budget_trips_every_engine_to_inconclusive() {
    for engine in Engine::all() {
        let r = certify_with_budget(Budget::unlimited().with_max_steps(1), engine);
        assert!(r.is_inconclusive(), "{engine}: {:?}", r.verdict);
        assert!(!r.certified(), "{engine}: inconclusive must not certify");
        let reason = r.verdict.reason().expect("inconclusive carries a reason");
        assert_eq!(reason, "step budget of 1 exhausted", "{engine}");
    }
}

#[test]
fn expired_deadline_trips_every_engine_to_inconclusive() {
    for engine in Engine::all() {
        let r = certify_with_budget(Budget::unlimited().with_deadline_ms(0), engine);
        assert!(r.is_inconclusive(), "{engine}: {:?}", r.verdict);
        let reason = r.verdict.reason().expect("inconclusive carries a reason");
        assert_eq!(reason, "wall-clock deadline exceeded", "{engine}");
    }
}

#[test]
fn state_budget_trips_the_state_set_engines_to_inconclusive() {
    // a branch whose arms yield *different* abstract states, so the
    // per-node state sets genuinely grow past 1 at the join
    let src = r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) { s.add("x"); }
        i.next();
    }
}
"#;
    // only the engines tracking per-point state sets can outgrow a state
    // budget (the independent-attribute mode merges to one structure per
    // node, so it can never trip this limit)
    for engine in [Engine::ScmpRelational, Engine::TvlaRelational] {
        let r = Certifier::from_spec(canvas_conformance::easl::builtin::cmp())
            .expect("cmp derives")
            .with_budget(Budget::unlimited().with_max_states(1))
            .certify_source(src, engine)
            .expect("budget exhaustion is not a hard error");
        assert!(r.is_inconclusive(), "{engine}: {:?}", r.verdict);
        let reason = r.verdict.reason().expect("inconclusive carries a reason");
        assert!(reason.starts_with("state budget of 1 exceeded"), "{engine}: {reason}");
    }
}

#[test]
fn unlimited_budget_changes_nothing() {
    let baseline = certify_with_budget(Budget::unlimited(), Engine::ScmpFds);
    assert!(!baseline.is_inconclusive());
    assert_eq!(baseline.lines(), vec![10, 13]);
}

#[test]
fn inconclusive_renders_as_a_warning_diagnostic() {
    let r = certify_with_budget(Budget::unlimited().with_max_steps(1), Engine::ScmpFds);
    let rendered = r.render_explained("fig3.mj", FIG3);
    assert!(rendered.contains("warning: analysis inconclusive"), "{rendered}");
    assert!(rendered.contains("step budget of 1 exhausted"), "{rendered}");
}
