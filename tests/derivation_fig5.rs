//! Checks the derived CMP abstraction against the paper's published
//! artifacts: the predicate families of Fig. 4 and the method abstraction
//! of Fig. 5, plus the §2.2 problems' derivations.

use canvas_conformance::logic::TypeName;
use canvas_conformance::wp::{derive_abstraction, FamilyId, RuleRhs, RuleVar};

#[test]
fn fig4_families() {
    let d = derive_abstraction(&canvas_conformance::easl::builtin::cmp()).expect("derives");
    let rendered: Vec<String> = d.families().iter().map(|f| f.to_string()).collect();
    assert_eq!(
        rendered,
        [
            "stale(x0: Iterator) ≡ x0.defVer != x0.set.ver",
            "iterof(x0: Iterator, x1: Set) ≡ x0.set == x1",
            "mutx(x0: Iterator, x1: Iterator) ≡ x0 != x1 && x0.set == x1.set",
            "same(x0: Set, x1: Set) ≡ x0 == x1",
        ]
    );
}

#[test]
fn fig5_method_abstractions() {
    let d = derive_abstraction(&canvas_conformance::easl::builtin::cmp()).expect("derives");
    let set = TypeName::new("Set");
    let iterator = TypeName::new("Iterator");
    let (stale, iterof, mutx, same) = (
        FamilyId::from_index(0),
        FamilyId::from_index(1),
        FamilyId::from_index(2),
        FamilyId::from_index(3),
    );

    // v = new Set(): same(v,z) := 0, same(z,v) := 0, iterof(k,v) := 0
    let new_set = d.for_new(&set).expect("abstraction for new Set");
    assert!(new_set.checks.is_empty());
    assert_eq!(new_set.rule_for(same, &[0]).expect("same(v,·)").rhs, vec![]);
    assert_eq!(new_set.rule_for(same, &[1]).expect("same(·,v)").rhs, vec![]);
    assert_eq!(new_set.rule_for(iterof, &[1]).expect("iterof(·,v)").rhs, vec![]);
    // and stale is untouched
    assert!(new_set.rule_for(stale, &[]).is_none());

    // v.add(): stale_k := stale_k ∨ iterof_{k,v}
    let add = d.for_call(&set, "add").expect("abstraction for add");
    let r = add.rule_for(stale, &[]).expect("add updates stale");
    assert!(r.rhs.contains(&RuleRhs::Inst(stale, vec![RuleVar::Univ(0)])));
    assert!(r.rhs.iter().any(
        |x| matches!(x, RuleRhs::Inst(f, args) if *f == iterof && args.contains(&RuleVar::Recv))
    ));

    // i = v.iterator(): iterof_{i,z} := same_{v,z}; mutx updated via iterof;
    // stale_i := 0
    let it = d.for_call(&set, "iterator").expect("abstraction for iterator");
    assert_eq!(it.rule_for(stale, &[0]).expect("stale(lhs) := 0").rhs, vec![]);
    let r = it.rule_for(iterof, &[0]).expect("iterof(lhs, z)");
    assert!(matches!(&r.rhs[..], [RuleRhs::Inst(f, _)] if *f == same));
    let r = it.rule_for(mutx, &[0]).expect("mutx(lhs, k)");
    assert!(matches!(&r.rhs[..], [RuleRhs::Inst(f, _)] if *f == iterof));

    // i.remove(): requires ¬stale_i; stale_j := stale_j ∨ mutx_{j,i}
    let rm = d.for_call(&iterator, "remove").expect("abstraction for remove");
    assert_eq!(rm.checks, vec![RuleRhs::Inst(stale, vec![RuleVar::Recv])]);
    let r = rm.rule_for(stale, &[]).expect("remove stales siblings");
    assert!(r.rhs.contains(&RuleRhs::Inst(stale, vec![RuleVar::Univ(0)])));
    assert!(r.rhs.iter().any(
        |x| matches!(x, RuleRhs::Inst(f, args) if *f == mutx && args.contains(&RuleVar::Recv))
    ));

    // i.next(): requires ¬stale_i, no updates
    let next = d.for_call(&iterator, "next").expect("abstraction for next");
    assert_eq!(next.checks, vec![RuleRhs::Inst(stale, vec![RuleVar::Recv])]);
    assert!(next.rules.is_empty());

    // v = w: same_{v,z} := same_{w,z}, iterof_{k,v} := iterof_{k,w}
    let cp = d.for_copy(&set).expect("abstraction for Set copy");
    assert!(cp.rule_for(same, &[0]).is_some());
    assert!(cp.rule_for(same, &[1]).is_some());
    assert!(cp.rule_for(iterof, &[1]).is_some());

    // i = j: stale_i := stale_j, iterof/mutx renamed
    let cp = d.for_copy(&iterator).expect("abstraction for Iterator copy");
    assert_eq!(
        cp.rule_for(stale, &[0]).expect("stale(lhs)").rhs,
        vec![RuleRhs::Inst(stale, vec![RuleVar::Arg(0)])]
    );
}

#[test]
fn grp_imp_aop_derivations_are_small_and_classified() {
    use canvas_conformance::easl::SpecClass;
    let expectations = [
        ("grp", 3usize, SpecClass::MutationRestricted),
        ("imp", 2, SpecClass::MutationFree),
        ("aop", 2, SpecClass::MutationFree),
    ];
    for spec in canvas_conformance::easl::builtin::all() {
        if spec.name() == "cmp" {
            continue;
        }
        let (_, fam_count, class) =
            expectations.iter().find(|(n, _, _)| *n == spec.name()).expect("expectation listed");
        assert_eq!(canvas_conformance::easl::classify(&spec), *class, "{}", spec.name());
        let d = derive_abstraction(&spec).expect("derives");
        assert_eq!(d.families().len(), *fam_count, "{}", spec.name());
    }
}

#[test]
fn derivation_is_deterministic() {
    let a = derive_abstraction(&canvas_conformance::easl::builtin::cmp()).unwrap();
    let b = derive_abstraction(&canvas_conformance::easl::builtin::cmp()).unwrap();
    assert_eq!(a, b);
}
