//! Property-based soundness of the incremental certification cache: a warm
//! answer must always be *semantically identical* to a cold one, whatever
//! the program, whatever the edit, whatever the state of the store on disk.

use std::sync::atomic::{AtomicUsize, Ordering};

use canvas_conformance::incr::store::CertCache;
use canvas_conformance::incr::{report_digest, IncrementalCertifier};
use canvas_conformance::suite::generators::{random_client, RandomCfg};
use canvas_conformance::{Certifier, Engine};
use proptest::prelude::*;

fn certifier() -> Certifier {
    Certifier::from_spec(canvas_conformance::easl::builtin::cmp()).expect("cmp derives")
}

fn incremental() -> IncrementalCertifier {
    IncrementalCertifier::new(certifier(), CertCache::in_memory())
}

/// A two-method client whose helper body is a function of the parameters,
/// so a proptest case can model "the user edited one method" precisely.
fn two_method_client(helper_adds: usize, late_use: bool) -> String {
    let mut out = String::from(
        "class Main {\n    static void main() {\n        Set s = new Set();\n        s.add(\"seed\");\n        Iterator i = s.iterator();\n        Main.touch(s);\n        i.next();\n    }\n    static void touch(Set x) {\n",
    );
    for k in 0..helper_adds {
        out.push_str(&format!("        x.add(\"k{k}\");\n"));
    }
    if late_use {
        out.push_str("        Iterator j = x.iterator();\n        j.next();\n");
    }
    out.push_str("    }\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Cold vs warm: certifying the same random client twice through
    /// one cache yields semantically identical reports, and the second
    /// pass is answered entirely from the store.
    #[test]
    fn warm_run_matches_cold_run_on_random_clients(
        helpers in 0usize..3,
        stmts in 4usize..14,
        seed in 0u64..500,
    ) {
        let cfg = RandomCfg { helpers, stmts, ..RandomCfg::default() };
        let src = random_client(cfg, seed);
        let inc = incremental();
        for engine in [Engine::ScmpFds, Engine::ScmpInterproc] {
            let (cold, cold_stats) = inc.certify_source_cached(&src, engine).expect("cold");
            let (warm, warm_stats) = inc.certify_source_cached(&src, engine).expect("warm");
            prop_assert_eq!(report_digest(&cold), report_digest(&warm), "{}:\n{}", engine, src);
            prop_assert_eq!(cold_stats.hits, 0, "{engine}: cold run must not hit");
            prop_assert_eq!(warm_stats.misses, 0, "{engine}: warm run must not miss");
        }
    }

    /// (b) Invalidation soundness: after an edit to one method, the warm
    /// answer equals a from-scratch certification of the edited program —
    /// never a stale replay of the old one — and for per-method engines
    /// only the edited method's cell re-runs.
    #[test]
    fn editing_one_method_never_yields_a_stale_verdict(
        adds_before in 0usize..3,
        adds_after in 0usize..3,
        late_use in any::<bool>(),
    ) {
        let before = two_method_client(adds_before, late_use);
        let after = two_method_client(adds_after, late_use);
        let reference = certifier();
        for engine in [Engine::ScmpFds, Engine::ScmpInterproc] {
            let inc = incremental();
            inc.certify_source_cached(&before, engine).expect("cold");
            let (warm, stats) = inc.certify_source_cached(&after, engine).expect("edited");
            let edited = canvas_conformance::minijava::Program::parse(&after, reference.spec())
                .expect("edited program parses");
            let fresh = reference.certify_program(&edited, engine).expect("fresh");
            prop_assert_eq!(
                report_digest(&warm),
                report_digest(&fresh),
                "{}: cached answer diverged from a from-scratch run\n{}",
                engine,
                after
            );
            if before == after {
                prop_assert_eq!(stats.misses, 0, "{engine}: identical source must be all hits");
            } else if engine != Engine::ScmpInterproc {
                // the edit is confined to `touch`: `main` keys on the callee
                // *signature*, so its cell survives the edit
                prop_assert_eq!(stats.misses, 1, "{engine}: only the edited cell re-runs");
                prop_assert_eq!(stats.hits, 1, "{engine}: the untouched cell stays cached");
            }
        }
    }

    /// (c) Corruption recovery: a store truncated at an arbitrary byte
    /// never errors and never poisons the answer — the reopened cache
    /// still produces the cold answer, at worst with extra misses.
    #[test]
    fn truncated_store_degrades_to_misses_not_wrong_answers(
        adds in 0usize..3,
        cut_permille in 0u32..1000,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "canvas-prop-incr-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let src = two_method_client(adds, true);
        let engine = Engine::ScmpFds;

        let inc = IncrementalCertifier::new(certifier(), CertCache::open(&dir));
        let (cold, _) = inc.certify_source_cached(&src, engine).expect("cold");
        inc.persist().expect("persist");

        // truncate the on-disk store at an arbitrary char boundary
        let file = dir.join("certs.v2");
        let text = std::fs::read_to_string(&file).expect("store written");
        let mut cut = text.len() as usize * cut_permille as usize / 1000;
        while cut > 0 && !text.is_char_boundary(cut) {
            cut -= 1;
        }
        std::fs::write(&file, &text[..cut]).expect("truncate");

        let reopened = IncrementalCertifier::new(certifier(), CertCache::open(&dir));
        let (again, _) = reopened.certify_source_cached(&src, engine).expect("reopened");
        prop_assert_eq!(
            report_digest(&cold),
            report_digest(&again),
            "a truncated store must never change the verdict"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
