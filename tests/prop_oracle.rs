//! Differential testing of every certifier against the concrete-execution
//! oracle, on randomly generated clients.
//!
//! For each generated client the oracle explores *all* branch choices
//! concretely under the EASL semantics, so its violation set is exact
//! ground truth (the generated clients are loop-free, so exploration is
//! exhaustive). One semantic subtlety: the oracle models JCF faithfully —
//! a failed `requires` throws and *ends the path* — while the certifiers
//! deliberately keep analysing past a violating call (conservatively), so
//! sites downstream of a first violation may be reported without being
//! concretely reachable. The properties checked are therefore:
//!
//! * **soundness** — every engine's report ⊇ oracle violations;
//! * **no false alarms on safe clients (§4.3/§8)** — when the oracle finds
//!   *no* violation, the precise engines (FDS, relational, interprocedural)
//!   report exactly nothing; this is the paper's precision claim in its
//!   strongest observable form (any report on a violation-free client would
//!   be a false alarm);
//! * **agreement** — FDS = relational everywhere (§4.6); the
//!   independent-attribute TVLA mode is never *finer* than the relational
//!   one (the paper's mode-equality observation is empirical and is checked
//!   exactly on the corpus, in `tests/pipeline.rs`).

use std::collections::BTreeSet;

use canvas_conformance::suite::generators::{random_client, RandomCfg};
use canvas_conformance::suite::oracle::{explore, OracleConfig};
use canvas_conformance::{Certifier, Engine};
use proptest::prelude::*;

fn certifier() -> Certifier {
    Certifier::from_spec(canvas_conformance::easl::builtin::cmp()).expect("cmp derives")
}

fn oracle_lines(src: &str) -> BTreeSet<u32> {
    let spec = canvas_conformance::easl::builtin::cmp();
    let program = canvas_conformance::minijava::Program::parse(src, &spec).expect("parses");
    let r = explore(&program, &spec, OracleConfig::default()).expect("oracle runs");
    assert!(!r.truncated, "generated clients are loop-free\n{src}");
    r.violation_lines
}

fn engine_lines(c: &Certifier, src: &str, engine: Engine) -> Option<BTreeSet<u32>> {
    let program = canvas_conformance::minijava::Program::parse(src, c.spec()).expect("parses");
    match c.certify_program(&program, engine) {
        Ok(r) => Some(r.lines().into_iter().collect()),
        Err(canvas_conformance::CertifyError::StateBudget { .. }) => None,
        Err(e) => panic!("unexpected error: {e}\n{src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Call-free clients: every engine is sound; the precise engines report
    /// nothing on violation-free clients; FDS = relational; TVLA modes agree.
    #[test]
    fn call_free_differential(seed in 0u64..10_000) {
        let cfg = RandomCfg { sets: 2, iters: 3, stmts: 14, branch_depth: 2, helpers: 0 };
        let src = random_client(cfg, seed);
        let truth = oracle_lines(&src);
        let c = certifier();

        let fds = engine_lines(&c, &src, Engine::ScmpFds).expect("fds");
        let rel = engine_lines(&c, &src, Engine::ScmpRelational).expect("relational");
        let inter = engine_lines(&c, &src, Engine::ScmpInterproc).expect("interproc");
        prop_assert_eq!(&fds, &rel, "fds and relational differ\n{}", src);
        prop_assert_eq!(&fds, &inter, "fds and interproc differ on call-free\n{}", src);
        if truth.is_empty() {
            prop_assert!(fds.is_empty(), "false alarms on a safe client: {:?}\n{}", fds, src);
        }

        for engine in Engine::all() {
            let Some(lines) = engine_lines(&c, &src, engine) else { continue };
            prop_assert!(
                lines.is_superset(&truth),
                "{} unsound: truth {:?} reported {:?}\n{}",
                engine, truth, lines, src
            );
        }

        // The paper's §7 observation — identical precision of the two TVLA
        // modes — is *empirical* ("for the benchmark clients we studied"),
        // and random search does find adversarial clients where the joined
        // single-structure mode is strictly coarser. The invariant that
        // always holds is containment: joining only loses precision.
        let tr = engine_lines(&c, &src, Engine::TvlaRelational).expect("tvla");
        let ti = engine_lines(&c, &src, Engine::TvlaIndependent).expect("tvla");
        prop_assert!(
            ti.is_superset(&tr),
            "independent-attribute mode must only be coarser\ntr {:?} ti {:?}\n{}",
            tr, ti, src
        );
    }

    /// Clients with helper calls: the §8 certifier is sound and reports
    /// nothing on violation-free clients; the intraprocedural engines
    /// remain sound.
    #[test]
    fn interprocedural_differential(seed in 0u64..10_000) {
        let cfg = RandomCfg { sets: 2, iters: 2, stmts: 10, branch_depth: 1, helpers: 2 };
        let src = random_client(cfg, seed);
        let truth = oracle_lines(&src);
        let c = certifier();

        let inter = engine_lines(&c, &src, Engine::ScmpInterproc).expect("interproc");
        prop_assert!(inter.is_superset(&truth), "interproc unsound\n{}", src);
        if truth.is_empty() {
            prop_assert!(
                inter.is_empty(),
                "interproc false alarms on a safe client: {:?}\n{}",
                inter, src
            );
        }

        let fds = engine_lines(&c, &src, Engine::ScmpFds).expect("fds");
        prop_assert!(fds.is_superset(&truth), "fds unsound\n{}", src);

        // two independent whole-program mechanisms must agree: inlining
        // (syntactic) and the §8 tabulation (semantic)
        let program =
            canvas_conformance::minijava::Program::parse(&src, c.spec()).expect("parses");
        let inlined: BTreeSet<u32> = c
            .certify_inlined(&program, Engine::ScmpFds)
            .expect("generated clients are non-recursive")
            .lines()
            .into_iter()
            .collect();
        prop_assert_eq!(&inlined, &inter, "inline vs interproc disagree\n{}", src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GRP: the derived certifier is exact against the oracle on safe
    /// clients and sound everywhere (same statement as for CMP).
    #[test]
    fn grp_differential(seed in 0u64..10_000) {
        let spec = canvas_conformance::easl::builtin::grp();
        let src = canvas_conformance::suite::generators::random_grp_client(2, 3, 10, seed);
        let program =
            canvas_conformance::minijava::Program::parse(&src, &spec).expect("parses");
        let r = explore(&program, &spec, OracleConfig::default()).expect("oracle runs");
        prop_assert!(!r.truncated);
        let truth = r.violation_lines;
        let c = Certifier::from_spec(spec).expect("grp derives");
        let fds: BTreeSet<u32> = c
            .certify_source(&src, Engine::ScmpFds)
            .expect("fds")
            .lines()
            .into_iter()
            .collect();
        prop_assert!(fds.is_superset(&truth), "unsound\n{}", src);
        if truth.is_empty() {
            prop_assert!(fds.is_empty(), "false alarms on safe GRP client: {:?}\n{}", fds, src);
        }
    }

    /// IMP: likewise.
    #[test]
    fn imp_differential(seed in 0u64..10_000) {
        let spec = canvas_conformance::easl::builtin::imp();
        let src = canvas_conformance::suite::generators::random_imp_client(2, 3, 8, seed);
        let program =
            canvas_conformance::minijava::Program::parse(&src, &spec).expect("parses");
        let r = explore(&program, &spec, OracleConfig::default()).expect("oracle runs");
        prop_assert!(!r.truncated);
        let truth = r.violation_lines;
        let c = Certifier::from_spec(spec).expect("imp derives");
        let fds: BTreeSet<u32> = c
            .certify_source(&src, Engine::ScmpFds)
            .expect("fds")
            .lines()
            .into_iter()
            .collect();
        prop_assert!(fds.is_superset(&truth), "unsound\n{}", src);
        if truth.is_empty() {
            prop_assert!(fds.is_empty(), "false alarms on safe IMP client: {:?}\n{}", fds, src);
        }
    }
}
