//! End-to-end pipeline tests over the evaluation corpus: soundness of every
//! specialized engine, exactness of the SCMP certifiers where the paper
//! claims it, and the documented failure modes of the generic baselines.

use std::collections::BTreeSet;

use canvas_conformance::suite::{corpus, SpecKind};
use canvas_conformance::{Certifier, Engine};

fn certifier_for(kind: SpecKind) -> Certifier {
    Certifier::from_spec(kind.spec()).expect("built-in specs derive")
}

fn reported_lines(c: &Certifier, source: &str, engine: Engine) -> Option<BTreeSet<u32>> {
    let program = canvas_conformance::minijava::Program::parse(source, c.spec()).expect("parses");
    match c.certify_program(&program, engine) {
        Ok(r) => Some(r.lines().into_iter().collect()),
        Err(canvas_conformance::CertifyError::StateBudget { .. }) => None,
        Err(e) => panic!("unexpected certification error: {e}"),
    }
}

#[test]
fn specialized_engines_never_miss_real_errors() {
    for b in corpus() {
        let c = certifier_for(b.spec);
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        for engine in Engine::all() {
            if !engine.specialized() {
                continue;
            }
            let Some(lines) = reported_lines(&c, b.source, engine) else {
                continue; // state budget: conservative failure, not a miss
            };
            for t in &truth {
                assert!(
                    lines.contains(t),
                    "{engine} missed the real error at line {t} of {}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn generic_baselines_are_sound_too() {
    // the baselines are conservative as well; the paper's complaint is
    // precision, never soundness
    for b in corpus() {
        let c = certifier_for(b.spec);
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        for engine in
            [Engine::GenericSsgRelational, Engine::GenericSsgIndependent, Engine::GenericAllocSite]
        {
            let Some(lines) = reported_lines(&c, b.source, engine) else { continue };
            for t in &truth {
                assert!(
                    lines.contains(t),
                    "{engine} missed the real error at line {t} of {}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn fds_is_exact_on_intraprocedural_scmp_benchmarks() {
    // §4.3: the FDS certifier computes the precise MOP solution; on
    // single-procedure SCMP clients it reports exactly the ground truth
    for b in corpus() {
        if !b.scmp || b.interprocedural {
            continue;
        }
        // benchmarks whose main calls helpers are excluded above; everything
        // else must be line-exact
        let c = certifier_for(b.spec);
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        let lines = reported_lines(&c, b.source, Engine::ScmpFds).expect("fds never blows up");
        assert_eq!(lines, truth, "fds not exact on {}", b.name);
    }
}

#[test]
fn interproc_is_exact_on_scmp_benchmarks() {
    // §8: context-sensitive interprocedural certification is exact on all
    // SCMP-shaped benchmarks, including the interprocedural ones
    for b in corpus() {
        if !b.scmp {
            continue;
        }
        let c = certifier_for(b.spec);
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        let lines = reported_lines(&c, b.source, Engine::ScmpInterproc).expect("interproc runs");
        assert_eq!(lines, truth, "interproc not exact on {}", b.name);
    }
}

#[test]
fn fds_matches_relational_where_both_run() {
    // §4.6: disjunct splitting makes the independent-attribute analysis as
    // precise as the relational one
    for b in corpus() {
        let c = certifier_for(b.spec);
        let fds = reported_lines(&c, b.source, Engine::ScmpFds).expect("fds runs");
        let Some(rel) = reported_lines(&c, b.source, Engine::ScmpRelational) else {
            continue; // relational blow-up (heap benchmarks)
        };
        assert_eq!(fds, rel, "precision differs on {}", b.name);
    }
}

#[test]
fn tvla_modes_agree_on_corpus() {
    // the §7 empirical observation
    for b in corpus() {
        let c = certifier_for(b.spec);
        let rel = reported_lines(&c, b.source, Engine::TvlaRelational).expect("tvla runs");
        let ind = reported_lines(&c, b.source, Engine::TvlaIndependent).expect("tvla runs");
        assert_eq!(rel, ind, "TVLA modes differ on {}", b.name);
    }
}

#[test]
fn tvla_is_exact_on_heap_benchmarks() {
    for b in corpus() {
        if b.scmp || b.interprocedural {
            continue;
        }
        let c = certifier_for(b.spec);
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        let lines = reported_lines(&c, b.source, Engine::TvlaRelational).expect("tvla runs");
        assert_eq!(lines, truth, "tvla not exact on {}", b.name);
    }
}

#[test]
fn generic_ssg_false_alarms_where_documented() {
    // §4.4: the shape-graph baseline false-alarms at Fig. 3 line 11
    let fig3 = corpus().into_iter().find(|b| b.name == "fig3").expect("fig3 present");
    let c = certifier_for(fig3.spec);
    let lines = reported_lines(&c, fig3.source, Engine::GenericSsgRelational).expect("ssg runs");
    assert!(lines.contains(&11));
    // §3: the alloc-site baseline false-alarms on the version loop
    let vl = corpus().into_iter().find(|b| b.name == "version-loop").expect("present");
    let lines = reported_lines(&c, vl.source, Engine::GenericAllocSite).expect("alloc runs");
    assert!(!lines.is_empty());
    // while the specialized certifier is exact on both
    assert_eq!(reported_lines(&c, vl.source, Engine::ScmpFds).expect("fds"), BTreeSet::new());
}
