//! Property-based soundness of the size-budgeted certificate cache: the
//! byte budget is a hard occupancy bound, eviction follows recency
//! exactly, and evicting a certificate can cost latency but never change
//! an answer — the disk tier (or a cold re-run) always restores it
//! byte-identically.

use std::sync::atomic::{AtomicUsize, Ordering};

use canvas_conformance::incr::lru::ShardedLru;
use canvas_conformance::incr::store::CertCache;
use canvas_conformance::incr::{report_digest, IncrementalCertifier};
use canvas_conformance::{Certifier, Engine};
use proptest::prelude::*;

fn certifier() -> Certifier {
    Certifier::from_spec(canvas_conformance::easl::builtin::cmp()).expect("cmp derives")
}

/// A family of structurally distinct single-method clients: cache keys
/// fingerprint the canonical IR, so distinctness must come from statement
/// counts, not literals.
fn client(id: usize) -> String {
    format!(
        "class Main {{ static void main() {{ Set s = new Set(); s.add(\"x\"); \
         Iterator i = s.iterator(); {}}} }}",
        "i.next(); ".repeat(1 + id)
    )
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "canvas-prop-lru-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Occupancy never exceeds the byte budget, whatever the op mix,
    /// and the byte counter always equals the sum of resident entry costs.
    #[test]
    fn occupancy_never_exceeds_budget(
        budget in 256u64..20_000,
        ops in prop::collection::vec((0u8..3, 0u64..48, 1usize..700), 1..120),
    ) {
        let lru: ShardedLru<usize> = ShardedLru::new(Some(budget), 8);
        for (op, key, cost) in ops {
            match op {
                0 | 1 => {
                    // the value records the cost so entries() can audit it
                    lru.insert(key, cost, cost);
                }
                _ => {
                    lru.get(key);
                }
            }
            prop_assert!(
                lru.bytes() <= budget,
                "occupancy {} over budget {budget}",
                lru.bytes()
            );
            let audited: u64 = lru.entries().iter().map(|(_, cost)| *cost as u64).sum();
            prop_assert_eq!(lru.bytes(), audited, "byte counter out of sync with entries");
            prop_assert_eq!(lru.len(), lru.entries().len());
        }
    }

    /// (b) Eviction order is exactly least-recently-used: a reference
    /// recency list predicts every evicted key, for arbitrary
    /// insert/get/remove interleavings on a single shard.
    #[test]
    fn evictions_follow_recency_exactly(
        ops in prop::collection::vec((0u8..4, 0u64..24), 1..150),
    ) {
        const COST: usize = 16;
        const CAP: usize = 8;
        // a budget under MIN_SHARD_BYTES collapses to one shard, making
        // the global recency order observable
        let lru: ShardedLru<u64> = ShardedLru::new(Some((COST * CAP) as u64), 8);
        prop_assert_eq!(lru.shard_count(), 1);
        let mut model: Vec<u64> = Vec::new(); // most-recently-used first
        for (op, key) in ops {
            match op {
                0 | 1 => {
                    let evicted: Vec<u64> = lru.insert(key, key, COST)
                        .into_iter()
                        .map(|(k, _)| k)
                        .collect();
                    if let Some(pos) = model.iter().position(|&k| k == key) {
                        model.remove(pos);
                    }
                    let mut expect = Vec::new();
                    while model.len() >= CAP {
                        expect.push(model.pop().expect("nonempty"));
                    }
                    model.insert(0, key);
                    prop_assert_eq!(evicted, expect, "wrong eviction victim(s)");
                }
                2 => {
                    let got = lru.get(key);
                    let pos = model.iter().position(|&k| k == key);
                    prop_assert_eq!(got.is_some(), pos.is_some());
                    if let Some(pos) = pos {
                        let k = model.remove(pos);
                        model.insert(0, k); // a hit promotes to MRU
                    }
                }
                _ => {
                    let got = lru.remove(key);
                    let pos = model.iter().position(|&k| k == key);
                    prop_assert_eq!(got.is_some(), pos.is_some());
                    if let Some(pos) = pos {
                        model.remove(pos);
                    }
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// (c) Eviction never loses a disk-backed certificate: a tiny-budget
    /// store and an unbounded store fed the same work persist
    /// byte-identical files, and a re-fetch of an evicted certificate
    /// through the reopened budgeted store matches the unbounded answer.
    #[test]
    fn eviction_never_changes_the_persisted_store(count in 3usize..7) {
        let tight_dir = fresh_dir("tight");
        let roomy_dir = fresh_dir("roomy");
        let engine = Engine::ScmpFds;

        let tight = IncrementalCertifier::new(
            certifier(),
            CertCache::open_budgeted(&tight_dir, Some(512)),
        );
        let roomy = IncrementalCertifier::new(certifier(), CertCache::open(&roomy_dir));
        let mut roomy_digests = Vec::new();
        for id in 0..count {
            let src = client(id);
            tight.certify_source_cached(&src, engine).expect("tight cold");
            let (r, _) = roomy.certify_source_cached(&src, engine).expect("roomy cold");
            roomy_digests.push(report_digest(&r));
        }
        prop_assert!(
            tight.cache().memory_bytes() <= 512,
            "hot tier over budget: {}",
            tight.cache().memory_bytes()
        );
        prop_assert!(tight.cache().stats().evictions > 0, "512 bytes must force evictions");
        tight.persist().expect("tight persists");
        roomy.persist().expect("roomy persists");

        let tight_file = std::fs::read(tight_dir.join("certs.v2")).expect("tight file");
        let roomy_file = std::fs::read(roomy_dir.join("certs.v2")).expect("roomy file");
        prop_assert_eq!(tight_file, roomy_file, "eviction altered the disk tier");

        // the first client's certificate was evicted from the hot tier
        // long ago; the reopened budgeted store still answers it warm
        // (from spill/disk) with the exact unbounded answer
        let reopened = IncrementalCertifier::new(
            certifier(),
            CertCache::open_budgeted(&tight_dir, Some(512)),
        );
        let (again, stats) = reopened.certify_source_cached(&client(0), engine).expect("warm");
        prop_assert_eq!(stats.misses, 0, "the disk tier must answer an evicted key");
        prop_assert_eq!(report_digest(&again), roomy_digests[0].clone());

        std::fs::remove_dir_all(&tight_dir).ok();
        std::fs::remove_dir_all(&roomy_dir).ok();
    }

    /// (d) Counters balance: the store's global hit/miss counters are the
    /// sum of the per-run counters, evictions never exceed stores, and an
    /// in-memory eviction degrades to a cold re-run with an identical
    /// answer (never an error, never a different verdict).
    #[test]
    fn counters_balance_and_inmemory_eviction_recomputes(
        count in 2usize..6,
        budget in 256u64..2_048,
    ) {
        let engine = Engine::ScmpFds;
        let inc = IncrementalCertifier::new(
            certifier(),
            CertCache::in_memory_budgeted(Some(budget)),
        );
        let mut cold_digests = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for id in 0..count {
            let (r, stats) = inc.certify_source_cached(&client(id), engine).expect("cold");
            cold_digests.push(report_digest(&r));
            hits += stats.hits;
            misses += stats.misses;
            prop_assert!(inc.cache().memory_bytes() <= budget);
        }
        let stats = inc.cache().stats();
        prop_assert_eq!(stats.hits, hits, "global hits drifted from per-run hits");
        prop_assert_eq!(stats.misses, misses, "global misses drifted from per-run misses");
        prop_assert!(stats.evictions <= stats.stores, "evicted more than was ever stored");
        prop_assert!(
            inc.cache().memory_entries() as u64 + stats.evictions <= stats.stores,
            "entries + evictions exceed stores"
        );
        // whether client(0) survived the budget or not, re-certifying it
        // yields the cold answer (an in-memory evictee is recomputed)
        let (again, _) = inc.certify_source_cached(&client(0), engine).expect("again");
        prop_assert_eq!(report_digest(&again), cold_digests[0].clone());
    }
}
