//! Differential pinning of the bit-parallel FDS kernels (DESIGN.md §10):
//! the word-arena solver must agree bit-for-bit with the historical
//! per-bit scalar solver on random boolean programs, and the within-method
//! delta re-solve must be indistinguishable from a cold solve — same
//! fixpoint, same violations, same certificate solution rows — across
//! random one-method edits.

use canvas_conformance::abstraction::{transform_method, BoolProgram, EntryAssumption};
use canvas_conformance::dataflow::delta::{self, DeltaPayload};
use canvas_conformance::dataflow::{fds, DeltaSeed};
use canvas_conformance::faults::Meter;
use canvas_conformance::suite::generators::{random_client, scmp_loop_blocks, RandomCfg};
use proptest::prelude::*;

/// Transforms every method of `src` under the cmp spec, `main` with a
/// clean entry and helpers with an unknown one — the same shapes the
/// engine feeds the solver.
fn boolprogs(src: &str) -> Vec<BoolProgram> {
    let spec = canvas_conformance::easl::builtin::cmp();
    let derived = canvas_conformance::wp::derive_abstraction(&spec).expect("cmp derives");
    let program = canvas_conformance::minijava::Program::parse(src, &spec).expect("client parses");
    program
        .methods()
        .iter()
        .map(|m| {
            let entry =
                if m.name == "main" { EntryAssumption::Clean } else { EntryAssumption::Unknown };
            transform_method(&program, m, &spec, &derived, entry)
        })
        .collect()
}

/// Asserts the word kernel and the scalar reference agree on everything
/// observable: fixpoint, violations, and the work counters (the kernels
/// share one worklist discipline, so even the visit tallies must match).
fn assert_kernels_agree(bp: &BoolProgram, ctx: &str) -> Result<(), TestCaseError> {
    let word = fds::analyze(bp);
    let scalar = fds::analyze_reference(bp);
    prop_assert_eq!(word.to_bitsets(), scalar.may_one, "fixpoint diverged: {}", ctx);
    prop_assert_eq!(word.edge_visits, scalar.edge_visits, "visit tally diverged: {}", ctx);
    prop_assert_eq!(word.worklist_pops, scalar.worklist_pops, "pop tally diverged: {}", ctx);
    Ok(())
}

/// A two-method client whose helper body is a function of the parameters,
/// so a case models "the user edited one method" precisely.
fn two_method_client(adds: usize, late_use: bool, refresh: bool) -> String {
    let mut out = String::from(
        "class Main {\n    static void main() {\n        Set s = new Set();\n        s.add(\"seed\");\n        Iterator i = s.iterator();\n        Main.touch(s);\n        i.next();\n    }\n    static void touch(Set x) {\n",
    );
    for k in 0..adds {
        out.push_str(&format!("        x.add(\"k{k}\");\n"));
    }
    if refresh {
        out.push_str("        Iterator r = x.iterator();\n        r.next();\n");
    }
    if late_use {
        out.push_str(
            "        Iterator j = x.iterator();\n        x.add(\"late\");\n        j.next();\n",
        );
    }
    out.push_str("    }\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Bit-parallel ≡ per-bit scalar on random loop-free clients of
    /// varying shape (branches, helpers, havoc-ing calls).
    #[test]
    fn word_kernel_matches_scalar_reference_on_random_clients(
        helpers in 0usize..3,
        stmts in 4usize..16,
        seed in 0u64..500,
    ) {
        let cfg = RandomCfg { helpers, stmts, ..RandomCfg::default() };
        let src = random_client(cfg, seed);
        for bp in boolprogs(&src) {
            assert_kernels_agree(&bp, &src)?;
        }
    }

    /// (b) Bit-parallel ≡ per-bit scalar on loopy clients, where the
    /// solvers genuinely iterate (facts grow around back edges until the
    /// fixpoint, re-visiting every loop edge many times).
    #[test]
    fn word_kernel_matches_scalar_reference_on_loopy_clients(
        blocks in 1usize..6,
        iters in 1usize..4,
    ) {
        let g = scmp_loop_blocks(blocks, iters);
        for bp in boolprogs(&g.source) {
            assert_kernels_agree(&bp, &g.source)?;
        }
    }

    /// (c) Delta re-solve ≡ cold solve across random one-method edits:
    /// for every method of the edited program, seeding from the base
    /// program's solution must reach the cold fixpoint, report the same
    /// violations, encode the same certificate solution rows, and never
    /// do more worklist pops than the cold solve.
    #[test]
    fn delta_resolve_matches_cold_solve_across_one_method_edits(
        adds_before in 0usize..3,
        adds_after in 0usize..3,
        late_use in any::<bool>(),
        refresh in any::<bool>(),
    ) {
        let before = two_method_client(adds_before, late_use, refresh);
        let after = two_method_client(adds_after, late_use, !refresh);
        let gov = Meter::disarmed();
        for (old_bp, new_bp) in boolprogs(&before).into_iter().zip(boolprogs(&after)) {
            let old_res = fds::analyze(&old_bp);
            let seed = DeltaSeed {
                payload: DeltaPayload::of(&old_bp),
                preds: old_bp.preds.len() as u32,
                solution: (0..old_bp.node_count).map(|r| old_res.row_ones(r)).collect(),
            };
            let cold = fds::analyze(&new_bp);
            let Some(warm) = delta::analyze_delta(&new_bp, &seed, &gov).expect("disarmed meter")
            else {
                // a rejected seed falls back to the cold kernel — sound by
                // construction, nothing further to compare
                continue;
            };
            prop_assert!(
                warm.same_solution(&cold),
                "delta diverged from cold on:\n{}",
                after
            );
            prop_assert_eq!(
                fds::violations(&new_bp, &warm),
                fds::violations(&new_bp, &cold),
                "violations diverged on:\n{}",
                after
            );
            // the certificate's MayOne cell is exactly these rows, so row
            // equality is certificate byte-identity
            let warm_rows: Vec<Vec<u32>> =
                (0..new_bp.node_count).map(|r| warm.row_ones(r)).collect();
            let cold_rows: Vec<Vec<u32>> =
                (0..new_bp.node_count).map(|r| cold.row_ones(r)).collect();
            prop_assert_eq!(warm_rows, cold_rows, "certificate rows diverged on:\n{}", after);
            prop_assert!(
                warm.worklist_pops <= cold.worklist_pops,
                "delta did more work than cold ({} > {}) on:\n{}",
                warm.worklist_pops,
                cold.worklist_pops,
                after
            );
        }
    }
}
