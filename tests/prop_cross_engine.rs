//! Property-based cross-engine tests on generated clients: the generators
//! know the ground truth by construction, so the precision and agreement
//! claims can be checked on thousands of programs nobody hand-wrote.

use std::collections::BTreeSet;

use canvas_conformance::suite::generators;
use canvas_conformance::{Certifier, Engine};
use proptest::prelude::*;

fn certifier() -> Certifier {
    Certifier::from_spec(canvas_conformance::easl::builtin::cmp()).expect("cmp derives")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FDS reports exactly the generated ground truth (precision + soundness).
    #[test]
    fn fds_exact_on_generated(blocks in 1usize..8, iters in 1usize..4, seed in 0u64..1000) {
        let g = generators::scmp_blocks(blocks, iters, 0.5, seed);
        let c = certifier();
        let r = c.certify_source(&g.source, Engine::ScmpFds).expect("fds runs");
        prop_assert_eq!(r.lines(), g.error_lines.clone(), "\n{}", g.source);
    }

    /// The relational engine agrees with FDS on generated clients (§4.6).
    #[test]
    fn relational_agrees_with_fds(blocks in 1usize..5, seed in 0u64..1000) {
        let g = generators::scmp_blocks(blocks, 2, 0.5, seed);
        let c = certifier();
        let fds: BTreeSet<u32> =
            c.certify_source(&g.source, Engine::ScmpFds).expect("fds").lines().into_iter().collect();
        let rel: BTreeSet<u32> = c
            .certify_source(&g.source, Engine::ScmpRelational)
            .expect("relational")
            .lines()
            .into_iter()
            .collect();
        prop_assert_eq!(fds, rel);
    }

    /// The interprocedural engine agrees with FDS on single-procedure
    /// clients (no calls to havoc over).
    #[test]
    fn interproc_agrees_on_call_free(blocks in 1usize..5, seed in 0u64..1000) {
        let g = generators::scmp_blocks(blocks, 2, 0.5, seed);
        let c = certifier();
        let fds: BTreeSet<u32> =
            c.certify_source(&g.source, Engine::ScmpFds).expect("fds").lines().into_iter().collect();
        let inter: BTreeSet<u32> = c
            .certify_source(&g.source, Engine::ScmpInterproc)
            .expect("interproc")
            .lines()
            .into_iter()
            .collect();
        prop_assert_eq!(fds, inter);
    }

    /// Interprocedural chains: the callee's effect is seen through any depth.
    #[test]
    fn interproc_chains(depth in 1usize..7, mutate in any::<bool>()) {
        let g = generators::interproc_chain(depth, mutate);
        let c = certifier();
        let r = c.certify_source(&g.source, Engine::ScmpInterproc).expect("interproc");
        prop_assert_eq!(r.lines(), g.error_lines.clone(), "\n{}", g.source);
    }

    /// TVLA (specialized) is sound on generated clients and both modes agree.
    #[test]
    fn tvla_sound_on_generated(blocks in 1usize..4, seed in 0u64..200) {
        let g = generators::scmp_blocks(blocks, 2, 0.5, seed);
        let c = certifier();
        let rel: BTreeSet<u32> = c
            .certify_source(&g.source, Engine::TvlaRelational)
            .expect("tvla")
            .lines()
            .into_iter()
            .collect();
        let ind: BTreeSet<u32> = c
            .certify_source(&g.source, Engine::TvlaIndependent)
            .expect("tvla")
            .lines()
            .into_iter()
            .collect();
        for t in &g.error_lines {
            prop_assert!(rel.contains(t), "tvla missed line {t}\n{}", g.source);
        }
        prop_assert_eq!(rel, ind);
    }

    /// The iterator-ring sweep: every alias of a staled iterator is flagged,
    /// none of a fresh one.
    #[test]
    fn ring_exactness(n in 1usize..10, stale in any::<bool>()) {
        let g = generators::iterator_ring(n, stale);
        let c = certifier();
        let r = c.certify_source(&g.source, Engine::ScmpFds).expect("fds");
        prop_assert_eq!(r.lines(), g.error_lines.clone(), "\n{}", g.source);
    }
}
