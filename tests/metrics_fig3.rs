//! Golden test pinning the deterministic telemetry counters each engine
//! produces on the Fig. 3 benchmark (`eval fig3-metrics`).
//!
//! This is the counter-level analogue of `golden_eval.rs`: if an engine
//! starts doing a different *amount* of work (more worklist pops, extra
//! canonicalisations, ...) this test catches it even when the certified
//! verdicts are unchanged. Regenerate with
//! `cargo run --release -p canvas-bench --bin eval -- fig3-metrics`
//! after auditing the diff.
//!
//! Kept as its own integration-test binary: telemetry counters are
//! process-global, so this must not share a process with tests that run
//! the engines concurrently.

#[test]
fn fig3_metrics_match_golden() {
    let expected = include_str!("golden/fig3_metrics.txt");
    let actual = canvas_bench::render_fig3_metrics();
    assert_eq!(
        actual, expected,
        "deterministic per-engine counters on Fig. 3 drifted; if the change \
         is intended, regenerate tests/golden/fig3_metrics.txt (and check \
         bench/baseline.json)"
    );
}
