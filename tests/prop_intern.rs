//! Property tests for the global string interner: names round-trip, ids
//! dedup, and the id-based canonical ordering agrees with the string-based
//! ordering it replaced (the byte-identical-tables invariant rests on this).

use canvas_conformance::logic::{AccessPath, Symbol, TypeName, Var};
use proptest::prelude::*;

proptest! {
    /// Interning any name hands back the same string, and interning it
    /// again hands back the same id.
    #[test]
    fn symbols_round_trip(name in "[A-Za-z0-9_.$]{0,24}") {
        let sym = Symbol::intern(&name);
        prop_assert_eq!(sym.as_str(), name.as_str());
        let again = Symbol::intern(&name);
        prop_assert_eq!(again, sym);
        prop_assert_eq!(again.id(), sym.id());
    }

    /// Distinct names get distinct ids (and stay distinguishable through
    /// the str comparisons the analyses use).
    #[test]
    fn distinct_names_distinct_ids(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        let sa = Symbol::intern(&a);
        let sb = Symbol::intern(&b);
        prop_assert_eq!(a == b, sa == sb);
        prop_assert_eq!(a == b, sa.id() == sb.id());
    }

    /// Sorting symbols (id handles, discovery-ordered internally) gives
    /// exactly the order sorting the underlying strings gives — the
    /// property that keeps every derived `Ord` canonical order in the
    /// analysis core identical to the pre-interning string order.
    #[test]
    fn symbol_sort_agrees_with_string_sort(names in prop::collection::vec("[a-zA-Z]{0,10}", 1..24)) {
        // intern in reverse so discovery order disagrees with string order
        let mut names = names;
        let mut symbols: Vec<Symbol> =
            names.iter().rev().map(|n| Symbol::intern(n)).collect();
        symbols.sort();
        symbols.reverse();
        names.sort();
        names.reverse();
        let resolved: Vec<&str> = symbols.iter().map(|s| s.as_str()).collect();
        let expected: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(resolved, expected);
    }

    /// Access-path ordering (vars and interned field ids) agrees with the
    /// lexicographic order of the rendered `base.f.g` strings when the
    /// bases share one type, as spec-derived paths do.
    #[test]
    fn access_path_order_agrees_with_rendering(
        base_a in "[a-z]{1,6}", base_b in "[a-z]{1,6}",
        fields_a in prop::collection::vec("[a-z]{1,6}", 0..4),
        fields_b in prop::collection::vec("[a-z]{1,6}", 0..4),
    ) {
        let ty = TypeName::new("T");
        let mut pa = AccessPath::of(Var::new(&base_a, ty));
        for f in &fields_a {
            pa = pa.field(f);
        }
        let mut pb = AccessPath::of(Var::new(&base_b, ty));
        for f in &fields_b {
            pb = pb.field(f);
        }
        let rendered = pa.to_string().cmp(&pb.to_string());
        // dotted rendering and component-wise comparison only agree when
        // neither rendered path is a strict prefix of the other
        if rendered != std::cmp::Ordering::Equal
            && !pa.to_string().starts_with(&pb.to_string())
            && !pb.to_string().starts_with(&pa.to_string())
        {
            prop_assert_eq!(pa.cmp(&pb), rendered, "{} vs {}", pa, pb);
        }
        prop_assert_eq!(pa == pb, pa.to_string() == pb.to_string());
    }
}
