//! Property-based losslessness and commutativity of certificate-store
//! merging — the contract the fleet driver's end-of-run merge relies on:
//! `merge(a, b)` and `merge(b, a)` persist *byte-identical* stores, and
//! every cell answerable from either input is answerable from the merge.

use std::sync::Arc;

use canvas_conformance::fleet::{generate_with_threads, GenParams};
use canvas_conformance::incr::store::CertCache;
use canvas_conformance::incr::IncrementalCertifier;
use canvas_conformance::{Certifier, Engine};
use proptest::prelude::*;

fn certifier() -> Certifier {
    Certifier::from_spec(canvas_conformance::easl::builtin::cmp()).expect("cmp derives")
}

/// Populates a fresh store by certifying `sources` through it.
fn populate(sources: &[&str]) -> Arc<CertCache> {
    let cache = Arc::new(CertCache::in_memory());
    let inc = IncrementalCertifier::shared(certifier(), Arc::clone(&cache));
    for src in sources {
        inc.certify_source_cached(src, Engine::ScmpFds).expect("certifies");
    }
    cache
}

/// What [`CertCache::persist`] would write: the sorted `(key, line)` set.
fn persisted_image(cache: &CertCache) -> Vec<(u64, String)> {
    let mut lines: Vec<(u64, String)> =
        cache.export_lines().into_iter().map(|(k, l)| (k.0, l.to_string())).collect();
    lines.sort_by_key(|(k, _)| *k);
    lines
}

/// Merges `a` then `b` into a fresh store.
fn merge_pair(a: &CertCache, b: &CertCache) -> CertCache {
    let merged = CertCache::in_memory();
    merged.merge_from(a);
    merged.merge_from(b);
    merged
}

fn assert_merge_contract(a: &CertCache, b: &CertCache, ctx: &str) {
    let ab = merge_pair(a, b);
    let ba = merge_pair(b, a);
    assert_eq!(
        persisted_image(&ab),
        persisted_image(&ba),
        "{ctx}: merge(a,b) and merge(b,a) must persist byte-identical stores"
    );
    for (name, input) in [("a", a), ("b", b)] {
        for (key, _) in input.export_lines() {
            assert!(
                ab.lookup(key, "any", false, "scmp-fds").is_some(),
                "{ctx}: cell {key} answerable from input {name} but not from the merge"
            );
        }
    }
    let union: std::collections::BTreeSet<u64> =
        a.export_lines().iter().chain(b.export_lines().iter()).map(|(k, _)| k.0).collect();
    assert_eq!(ab.len(), union.len(), "{ctx}: merge holds exactly the union of keys");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two stores populated from overlapping random slices of a synthetic
    /// corpus merge losslessly and commutatively — byte-identical
    /// persisted images either way round, no cell lost.
    #[test]
    fn merge_is_commutative_and_lossless_on_random_corpora(
        seed in 0u64..200,
        split in 2usize..7,
        overlap in 0usize..4,
    ) {
        let params = GenParams { programs: 8, seed, ..GenParams::default() };
        let corpus = generate_with_threads(&params, 1).expect("generation succeeds");
        let sources: Vec<&str> = corpus.iter().map(|p| p.source.as_str()).collect();
        let cut = split.min(sources.len());
        let back = cut.saturating_sub(overlap);
        let a = populate(&sources[..cut]);
        let b = populate(&sources[back..]);
        assert_merge_contract(&a, &b, &format!("seed {seed} split {cut} overlap {overlap}"));
    }
}

/// The conflict case the fleet hits in practice: two shards answer the
/// *same* cell key with different bytes (a from-scratch solve vs a
/// delta-seeded re-solve record different `work`). Merge must still be
/// order-independent — the resolution is deterministic, not receiver-wins.
#[test]
fn conflicting_entries_resolve_order_independently() {
    let original = "class Main {\n    static void main() {\n        Set s = new Set();\n        s.add(\"x\");\n        Iterator i = s.iterator();\n        i.next();\n    }\n}\n";
    let edited = original.replace("s.add(\"x\");", "s.add(\"x\");\n        s.add(\"y\");");

    // Store a: certifies the original cold.
    let a = populate(&[original]);
    // Store b: certifies the edit first, then the original — the second
    // run is a delta-seeded re-solve of the same final cell key, so b can
    // hold different bytes under a key a also holds.
    let b = Arc::new(CertCache::in_memory());
    let inc = IncrementalCertifier::shared(certifier(), Arc::clone(&b));
    inc.certify_source_cached(&edited, Engine::ScmpFds).expect("edited certifies");
    inc.certify_source_cached(original, Engine::ScmpFds).expect("original certifies");

    assert_merge_contract(&a, &b, "delta-seeded conflict");

    // Whatever line won, both merge orders agree on the winning bytes.
    let ab = merge_pair(&a, &b);
    let ba = merge_pair(&b, &a);
    assert_eq!(persisted_image(&ab), persisted_image(&ba));
}

/// On-disk corroboration: the two merge orders persist files with
/// identical bytes, and a store reopened from either file answers every
/// merged cell.
#[test]
fn merged_stores_persist_byte_identical_files() {
    let params = GenParams { programs: 6, seed: 77, ..GenParams::default() };
    let corpus = generate_with_threads(&params, 1).expect("generation succeeds");
    let sources: Vec<&str> = corpus.iter().map(|p| p.source.as_str()).collect();
    let a = populate(&sources[..4]);
    let b = populate(&sources[2..]);

    let base = std::env::temp_dir().join(format!("canvas-prop-merge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut files = Vec::new();
    for (name, first, second) in [("ab", &a, &b), ("ba", &b, &a)] {
        let dir = base.join(name);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let disk = CertCache::open(&dir);
        disk.merge_from(first);
        disk.merge_from(second);
        disk.persist().expect("persist");
        files.push(std::fs::read(dir.join("certs.v2")).expect("read back"));
    }
    assert_eq!(files[0], files[1], "persisted merge files must be byte-identical");

    let reopened = CertCache::open(&base.join("ab"));
    for (key, _) in a.export_lines().into_iter().chain(b.export_lines()) {
        assert!(reopened.lookup(key, "any", false, "scmp-fds").is_some(), "cell {key} lost");
    }
    let _ = std::fs::remove_dir_all(&base);
}
