//! Inlining + intraprocedural engines: on non-recursive whole programs,
//! inlining gives the TVLA engines (which have no interprocedural story of
//! their own, §5) exact results on the interprocedural benchmarks.

use std::collections::BTreeSet;

use canvas_conformance::suite::corpus;
use canvas_conformance::{Certifier, Engine};

#[test]
fn inlined_tvla_is_exact_on_interproc_benchmarks() {
    for b in corpus() {
        if !b.interprocedural {
            continue;
        }
        let c = Certifier::from_spec(b.spec.spec()).expect("derives");
        let program =
            canvas_conformance::minijava::Program::parse(b.source, c.spec()).expect("parses");
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        let r = c
            .certify_inlined(&program, Engine::TvlaRelational)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let lines: BTreeSet<u32> = r.lines().into_iter().collect();
        assert_eq!(lines, truth, "inlined TVLA not exact on {}", b.name);
    }
}

#[test]
fn inlined_fds_is_exact_on_interproc_benchmarks() {
    for b in corpus() {
        if !b.interprocedural || !b.scmp {
            continue;
        }
        let c = Certifier::from_spec(b.spec.spec()).expect("derives");
        let program =
            canvas_conformance::minijava::Program::parse(b.source, c.spec()).expect("parses");
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        let r = c
            .certify_inlined(&program, Engine::ScmpFds)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let lines: BTreeSet<u32> = r.lines().into_iter().collect();
        assert_eq!(lines, truth, "inlined FDS not exact on {}", b.name);
    }
}

#[test]
fn inlining_agrees_with_interproc_engine() {
    // two independent roads to whole-program precision must coincide
    for b in corpus() {
        if !b.scmp {
            continue;
        }
        let c = Certifier::from_spec(b.spec.spec()).expect("derives");
        let program =
            canvas_conformance::minijava::Program::parse(b.source, c.spec()).expect("parses");
        let Ok(inlined) = c.certify_inlined(&program, Engine::ScmpFds) else {
            continue; // recursive benchmark: inlining refuses
        };
        let interproc = c.certify_program(&program, Engine::ScmpInterproc).expect("interproc");
        let a: BTreeSet<u32> = inlined.lines().into_iter().collect();
        let b2: BTreeSet<u32> = interproc.lines().into_iter().collect();
        assert_eq!(a, b2, "inline vs interproc disagree on {}", b.name);
    }
}
