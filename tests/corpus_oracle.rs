//! Validates the corpus ground truth against the concrete oracle: the
//! `// ERROR` markers must be exactly the concretely reachable violations
//! (for fully explorable benchmarks) or at least contain them (when the
//! exploration truncates on unbounded loops).

use std::collections::BTreeSet;

use canvas_conformance::suite::corpus;
use canvas_conformance::suite::oracle::{explore, OracleConfig};

#[test]
fn corpus_truth_matches_concrete_oracle() {
    for b in corpus() {
        let spec = b.spec.spec();
        let program =
            canvas_conformance::minijava::Program::parse(b.source, &spec).expect("parses");
        let r = explore(&program, &spec, OracleConfig::default()).expect("oracle runs");
        let truth: BTreeSet<u32> = b.truth().into_iter().collect();
        if r.truncated {
            // unbounded loops: the oracle's set is a lower bound
            assert!(
                r.violation_lines.is_subset(&truth),
                "{}: oracle found unmarked violations {:?} (truth {:?})",
                b.name,
                r.violation_lines,
                truth
            );
        } else {
            assert_eq!(
                r.violation_lines, truth,
                "{}: ground-truth markers disagree with concrete execution",
                b.name
            );
        }
    }
}

#[test]
fn corpus_statistics() {
    let all = corpus();
    assert!(all.len() >= 25, "corpus should stay substantial, has {}", all.len());
    let total_loc: usize = all.iter().map(|b| b.loc()).sum();
    assert!(total_loc > 300, "corpus LOC {total_loc}");
    // each spec kind is represented
    for kind in ["Cmp", "Grp", "Imp", "Aop"] {
        assert!(all.iter().any(|b| format!("{:?}", b.spec) == kind), "no benchmark for {kind}");
    }
    // both safe and buggy benchmarks exist
    assert!(all.iter().any(|b| b.truth().is_empty()));
    assert!(all.iter().any(|b| !b.truth().is_empty()));
}
