//! Property tests for request-scoped metric attribution: the rollup
//! invariant `global total == Σ per-scope totals + unscoped updates` under
//! `thread::scope` parallelism, through a mid-panic scope drop, and across
//! the real parallel suite driver.
//!
//! This binary owns the process-global telemetry registry for its tests:
//! every test serializes on one lock and resets the registry on the way
//! out, so the assertions never race each other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use canvas_conformance::telemetry;
use proptest::prelude::*;

static SCOPED_WORK: telemetry::Counter = telemetry::Counter::new("prop_scope.work");
static UNSCOPED_WORK: telemetry::Counter = telemetry::Counter::new("prop_scope.unscoped");

/// One test at a time: the counters and the enabled switch are process
/// globals.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn counter_value(snapshot: &telemetry::Snapshot, name: &str) -> u64 {
    snapshot.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The rollup invariant under real parallelism: every worker thread
    /// enters its own scope and adds its own amounts concurrently (plus
    /// some unscoped updates); the global total must equal the sum of the
    /// per-scope snapshots plus the unscoped updates, exactly.
    #[test]
    fn global_totals_equal_scope_sums_under_parallelism(
        per_thread in prop::collection::vec(
            prop::collection::vec(0u64..1_000, 1..12),
            2..6,
        ),
        unscoped in prop::collection::vec(0u64..1_000, 0..4),
    ) {
        let _x = exclusive();
        telemetry::set_enabled(true);
        telemetry::reset();
        let scopes: Vec<telemetry::Scope> = per_thread
            .iter()
            .enumerate()
            .map(|(i, _)| telemetry::Scope::new(format!("worker-{i}")))
            .collect();
        std::thread::scope(|s| {
            for (scope, amounts) in scopes.iter().zip(&per_thread) {
                s.spawn(move || {
                    let _g = scope.enter();
                    for &n in amounts {
                        SCOPED_WORK.add(n);
                    }
                });
            }
            for &n in &unscoped {
                UNSCOPED_WORK.add(n);
            }
        });
        let snapshot = telemetry::snapshot();
        let global = counter_value(&snapshot, "prop_scope.work");
        let scope_sum: u64 = scopes
            .iter()
            .map(|sc| sc.snapshot().counter("prop_scope.work").unwrap_or(0))
            .sum();
        let expected: u64 = per_thread.iter().flatten().sum();
        telemetry::set_enabled(false);
        telemetry::reset();
        prop_assert_eq!(global, scope_sum, "rollup invariant broken");
        prop_assert_eq!(global, expected, "updates lost");
        // the unscoped additions land in the global registry only
        prop_assert_eq!(
            counter_value(&snapshot, "prop_scope.unscoped"),
            unscoped.iter().sum::<u64>()
        );
    }

    /// A scope dropped mid-panic (a poisoned cell) still rolls up: the
    /// worker counts, panics, and both the scope snapshot and the global
    /// registry keep everything counted before the panic.
    #[test]
    fn a_scope_dropped_mid_panic_still_rolls_up(
        before_panic in prop::collection::vec(1u64..500, 1..8),
    ) {
        let _x = exclusive();
        telemetry::set_enabled(true);
        telemetry::reset();
        let scope = telemetry::Scope::new("poisoned-cell");
        let counted = AtomicU64::new(0);
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _g = scope.enter();
                for &n in &before_panic {
                    SCOPED_WORK.add(n);
                    counted.fetch_add(n, Ordering::Relaxed);
                }
                panic!("cell dies mid-scope");
            });
            assert!(handle.join().is_err(), "the worker must have panicked");
        });
        let global = counter_value(&telemetry::snapshot(), "prop_scope.work");
        let attributed = scope.snapshot().counter("prop_scope.work").unwrap_or(0);
        telemetry::set_enabled(false);
        telemetry::reset();
        prop_assert_eq!(attributed, counted.load(Ordering::Relaxed));
        prop_assert_eq!(global, attributed, "panic lost part of the rollup");
    }
}

/// The acceptance pin: under the real parallel suite driver (the E4
/// precision table — corpus × engines on scoped worker threads), every
/// counter attributed to any cell scope sums to exactly the global total
/// of that counter. Setup work (derivation, parsing) runs before the
/// workers and outside every scope, so any counter that appears inside a
/// scope is cell-only and must roll up without loss or double-counting.
#[test]
fn suite_driver_scope_rollup_equals_global_totals() {
    let _x = exclusive();
    telemetry::set_enabled(true);
    telemetry::reset();
    let cells = canvas_bench::precision_table();
    let snapshot = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();

    let mut scoped_totals: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut scoped_cells = 0;
    for cell in &cells {
        let scope = cell.scope.as_ref().expect("driver ran with telemetry enabled");
        scoped_cells += 1;
        for (name, value) in &scope.counters {
            *scoped_totals.entry(name.clone()).or_insert(0) += value;
        }
    }
    assert_eq!(scoped_cells, cells.len(), "every cell carries its attribution");
    assert!(!scoped_totals.is_empty(), "the engines counted nothing inside the scopes");
    for (name, scoped_sum) in &scoped_totals {
        let global = counter_value(&snapshot, name);
        assert_eq!(
            global, *scoped_sum,
            "counter {name}: global {global} != Σ per-cell {scoped_sum}"
        );
    }
}
