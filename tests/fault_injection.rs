//! Deterministic fault injection end to end.
//!
//! Forces each named fault point (`canvas_faults::force`, the in-process
//! equivalent of `CANVAS_FAULT=<point>`) and asserts the documented
//! containment: a typed error, an inconclusive verdict, or a poisoned suite
//! cell — never an uncontained panic and never a silently wrong verdict.
//!
//! Everything lives in ONE test function: the force override is process
//! global, so the faults must be injected sequentially.

use canvas_conformance::faults::{force, unforce, Fault};
use canvas_conformance::incr::service::{serve, ServeConfig};
use canvas_conformance::incr::store::CertCache;
use canvas_conformance::incr::{report_digest, IncrementalCertifier};
use canvas_conformance::suite::oracle::{explore, OracleConfig, OracleError};
use canvas_conformance::{Certifier, CertifyError, Engine};
use canvas_easl::Spec;
use canvas_minijava::Program;

const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#;

/// Runs `f` with panic output silenced (the injected panics are expected
/// and would otherwise spam the test log), restoring the previous hook.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn every_injected_fault_is_contained() {
    let spec = canvas_conformance::easl::builtin::cmp();
    let certifier = Certifier::from_spec(spec.clone()).expect("cmp derives");

    // truncate-input: both parsers see half the source and must Err
    force(Some(Fault::TruncateInput));
    assert!(Spec::parse("spec", "class Set { Set() { } }").is_err());
    assert!(Program::parse(FIG3, &spec).is_err());
    unforce();

    // solver-abort: every engine's solve panics; the isolation layer in the
    // certifier converts that into a structured CertifyError::Panicked
    force(Some(Fault::SolverAbort));
    quiet_panics(|| {
        for engine in Engine::all() {
            match certifier.certify_source(FIG3, engine) {
                Err(CertifyError::Panicked { engine: e, message }) => {
                    assert_eq!(e, engine);
                    assert!(message.contains("solver-abort"), "{engine}: {message}");
                }
                other => panic!("{engine}: expected a contained panic, got {other:?}"),
            }
        }
    });
    unforce();

    // budget-trip: the governor trips immediately and every engine degrades
    // to an inconclusive verdict carrying the injected reason
    force(Some(Fault::BudgetTrip));
    for engine in Engine::all() {
        let r = certifier.certify_source(FIG3, engine).expect("trip is not a hard error");
        assert!(r.is_inconclusive(), "{engine}");
        assert!(!r.certified(), "{engine}: inconclusive must not certify");
        assert_eq!(r.verdict.reason(), Some("injected budget-trip fault"), "{engine}");
    }
    unforce();

    // oracle-death: the interpreter thread dies; the thread boundary
    // contains it as OracleError::Panicked
    force(Some(Fault::OracleDeath));
    let program = Program::parse(FIG3, &spec).expect("fig3 parses");
    let got = quiet_panics(|| explore(&program, &spec, OracleConfig::default()));
    match got {
        Err(OracleError::Panicked(msg)) => {
            assert!(msg.contains("oracle-death"), "{msg}");
        }
        other => panic!("expected a contained oracle panic, got {other:?}"),
    }
    unforce();

    // suite poisoning: with every solve panicking, the parallel driver
    // still completes the whole table, reporting every cell as poisoned in
    // the usual deterministic order
    force(Some(Fault::SolverAbort));
    let cells = quiet_panics(canvas_bench::precision_table);
    unforce();
    let benchmarks = canvas_conformance::suite::corpus().len();
    let engines = Engine::all().len();
    assert_eq!(cells.len(), benchmarks * engines, "every cell computed");
    for cell in &cells {
        assert!(cell.poisoned, "{} x {}: expected poisoned", cell.benchmark, cell.engine);
        let why = cell.failed.as_deref().expect("poisoned cells carry the panic message");
        assert!(why.contains("panicked"), "{} x {}: {why}", cell.benchmark, cell.engine);
    }

    // and with the fault gone, the same driver produces a clean table again
    let cells = canvas_bench::precision_table();
    assert!(cells.iter().all(|c| !c.poisoned), "no poisoned cells at defaults");

    // cache-corrupt: the persisted certificate store is truncated on load;
    // the cache degrades to a cold miss (recovery, not an error) and a
    // re-certification still produces the uncorrupted answer
    let dir =
        std::env::temp_dir().join(format!("canvas-fault-injection-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let inc = IncrementalCertifier::new(
        Certifier::from_spec(spec.clone()).expect("cmp derives"),
        CertCache::open(&dir),
    );
    let (clean, cold) = inc.certify_source_cached(FIG3, Engine::ScmpFds).expect("cold");
    assert_eq!(cold.hits, 0, "first run is cold");
    inc.persist().expect("store persists");

    force(Some(Fault::CacheCorrupt));
    let reopened = IncrementalCertifier::new(
        Certifier::from_spec(spec.clone()).expect("cmp derives"),
        CertCache::open(&dir),
    );
    unforce();
    assert!(
        reopened.cache().stats().recovered_from_corruption,
        "the injected corruption must be detected and recovered from"
    );
    let (again, _) = reopened.certify_source_cached(FIG3, Engine::ScmpFds).expect("recovered");
    assert_eq!(
        report_digest(&clean),
        report_digest(&again),
        "recovery must never change the verdict"
    );
    std::fs::remove_dir_all(&dir).ok();

    // the serve front-end faults: a single-line JSON-safe client script
    const FIG3_JSON: &str = "class Main { static void main() { Set v = new Set(); \
         Iterator i = v.iterator(); v.add(\\\"x\\\"); i.next(); } }";
    let script = format!(
        "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3_JSON}\"}}\n\
         {{\"id\":2,\"cmd\":\"shutdown\"}}\n"
    );
    let run_serve = |script: &str| -> (Result<(), canvas_core::CanvasError>, String) {
        let mut out = Vec::new();
        let result = serve(
            std::io::Cursor::new(script.to_string()),
            &mut out,
            &ServeConfig { workers: 1, ..ServeConfig::default() },
        );
        (result, String::from_utf8_lossy(&out).into_owned())
    };

    // queue-full: every certify is shed deterministically in-band; control
    // verbs bypass admission, the loop drains cleanly
    force(Some(Fault::QueueFull));
    let (result, out) = run_serve(&script);
    unforce();
    assert!(result.is_ok(), "{result:?}");
    assert!(out.contains("\"reason\":\"overloaded: queue full\""), "{out}");
    assert!(out.contains("\"shed\":true"), "{out}");
    assert!(out.contains("\"shutdown\":true"), "{out}");

    // conn-drop: the response write tears mid-line; only that connection
    // is poisoned and the daemon still drains with a clean exit
    force(Some(Fault::ConnDrop));
    let (result, out) = run_serve(&script);
    unforce();
    assert!(result.is_ok(), "{result:?}");
    assert!(!out.contains('\n'), "no complete line escapes a torn connection: {out}");

    // slow-client: the stalled write times out; same containment
    force(Some(Fault::SlowClient));
    let (result, out) = run_serve(&script);
    unforce();
    assert!(result.is_ok(), "{result:?}");
    assert!(out.is_empty(), "a timed-out write sends nothing: {out}");

    // with every fault gone, the same script round-trips normally
    let (result, out) = run_serve(&script);
    assert!(result.is_ok(), "{result:?}");
    assert!(out.contains("\"verdict\":\"violations\""), "{out}");
    assert!(out.contains("\"shutdown\":true"), "{out}");

    // shard-death: a fleet worker dies mid-corpus; only its shard is
    // poisoned (its one in-flight program lost), the survivors steal and
    // finish the rest, and the run maps to exit code 3
    use canvas_conformance::fleet::{
        exit_code, generate_with_threads, run_fleet, FleetConfig, FleetItem, GenParams,
    };
    let corpus =
        generate_with_threads(&GenParams { programs: 20, seed: 13, ..GenParams::default() }, 1)
            .expect("corpus generates");
    let items: Vec<FleetItem> = corpus
        .iter()
        .map(|p| FleetItem {
            name: p.name.clone(),
            source: p.source.clone(),
            expected: Some(p.expected.clone()),
        })
        .collect();
    let cfg = FleetConfig::local(spec.clone(), "cmp", Engine::ScmpFds, 4);

    force(Some(Fault::ShardDeath));
    let poisoned = quiet_panics(|| run_fleet(&items, &cfg)).expect("fleet survives the death");
    unforce();
    assert_eq!(poisoned.dead_shards, 1, "exactly one worker dies");
    assert_eq!(poisoned.poisoned_programs, 1, "only its in-flight program is lost");
    assert_eq!(
        poisoned.certified + poisoned.violating + poisoned.inconclusive,
        items.len() - 1,
        "the survivors complete every other program"
    );
    assert_eq!(poisoned.truth_mismatches, 0, "completed verdicts stay correct");
    assert_eq!(exit_code(&poisoned), 3, "a poisoned fleet run is inconclusive");

    // and with the fault gone, the same corpus certifies completely
    let clean = run_fleet(&items, &cfg).expect("clean fleet run");
    assert_eq!(clean.dead_shards, 0);
    assert_eq!(clean.poisoned_programs, 0);
    assert_eq!(clean.certified + clean.violating + clean.inconclusive, items.len());
    assert_ne!(exit_code(&clean), 3, "no poisoning at defaults");
}
