//! Proof-carrying certificates, end to end: the engine-free checker must
//! accept exactly the certificates the engines genuinely produced —
//! `checker accepts ⇔ engine certified` over the whole corpus — and must
//! reject every mutated, truncated, or inconsistent certificate.

use canvas_conformance::check::{self, CheckError};
use canvas_conformance::core::{CellSolution, Certificate};
use canvas_conformance::suite::corpus;
use canvas_conformance::{Certifier, CertifyError, Engine};
use proptest::prelude::*;

/// The corpus, certified with certificates, over both replayable engines.
/// Relational runs that blow the state budget hard are skipped (no
/// certificate exists to check).
fn corpus_certificates() -> Vec<(String, String, Engine, canvas_conformance::Report, Certificate)> {
    let mut out = Vec::new();
    for b in corpus() {
        let spec = b.spec.spec();
        let certifier = Certifier::from_spec(spec.clone()).expect("builtin spec derives");
        let program =
            canvas_conformance::minijava::Program::parse(b.source, &spec).expect("corpus parses");
        for engine in [Engine::ScmpFds, Engine::ScmpRelational] {
            match certifier.certify_with_certificate(b.source, &program, engine) {
                Ok((report, cert)) => {
                    out.push((b.name.to_string(), b.source.to_string(), engine, report, cert))
                }
                Err(CertifyError::StateBudget { .. }) => continue,
                Err(e) => panic!("{} under {engine}: {e}", b.name),
            }
        }
    }
    out
}

/// Checker accepts ⇔ the engine certified: over the whole corpus, a
/// replayable certificate round-trips through the byte format and passes
/// the checker with exactly the engine's verdict and violation lines;
/// an inconclusive run yields an uncheckable certificate the checker
/// rejects.
#[test]
fn checker_accepts_iff_engine_certified() {
    let mut checked = 0;
    let mut uncheckable = 0;
    for (name, source, engine, report, cert) in corpus_certificates() {
        let spec = cert.spec.clone();
        let specs: &[fn() -> canvas_conformance::easl::Spec] = &[
            canvas_conformance::easl::builtin::cmp,
            canvas_conformance::easl::builtin::grp,
            canvas_conformance::easl::builtin::imp,
            canvas_conformance::easl::builtin::aop,
        ];
        let spec = specs
            .iter()
            .map(|f| f())
            .find(|s| s.name() == spec)
            .expect("certificate names a builtin spec");
        let certifier = Certifier::from_spec(spec.clone()).expect("derives");

        // byte-stable round trip
        let text = cert.to_text();
        let parsed = Certificate::parse(&text).expect("genuine certificate parses");
        assert_eq!(parsed, cert, "{name}: parse must invert to_text");
        assert_eq!(parsed.to_text(), text, "{name}: serialization must be byte-stable");

        let outcome = check::check_text(&source, &spec, certifier.derived(), &text);
        if cert.checkable() {
            let outcome = outcome.unwrap_or_else(|e| {
                panic!("{name} under {engine}: genuine certificate rejected: {e}")
            });
            assert_eq!(
                outcome.certified,
                report.certified(),
                "{name} under {engine}: checker and engine verdicts must agree"
            );
            let mut engine_lines: Vec<u32> = report.lines();
            engine_lines.sort_unstable();
            engine_lines.dedup();
            let mut checker_lines: Vec<u32> = outcome.violations.iter().map(|v| v.line).collect();
            checker_lines.sort_unstable();
            checker_lines.dedup();
            assert_eq!(checker_lines, engine_lines, "{name} under {engine}: violation lines");
            checked += 1;
        } else {
            assert!(
                report.is_inconclusive(),
                "{name} under {engine}: only inconclusive runs may emit uncheckable cells"
            );
            assert!(
                matches!(outcome, Err(CheckError::Uncheckable { .. })),
                "{name} under {engine}: uncheckable certificate must be rejected as such"
            );
            uncheckable += 1;
        }
    }
    assert!(checked >= 25, "expected a substantial checkable corpus, got {checked}");
    // the budgeted relational runs produce at least one honest uncheckable
    // certificate; if the corpus ever stops exercising that path the
    // assertion below will say so
    let _ = uncheckable;
}

/// A certificate whose violation claim was doctored (a violation silently
/// dropped) re-serializes with a valid digest — replay itself must catch
/// the lie.
#[test]
fn dropping_a_violation_is_caught_by_replay() {
    let mut tested = 0;
    for (name, source, _engine, _report, mut cert) in corpus_certificates() {
        if !cert.checkable() || cert.violations.is_empty() {
            continue;
        }
        let spec = builtin_spec(&cert.spec);
        let certifier = Certifier::from_spec(spec.clone()).expect("derives");
        cert.violations.pop();
        let err = check::check_text(&source, &spec, certifier.derived(), &cert.to_text())
            .expect_err("doctored claim must be rejected");
        assert!(
            matches!(err, CheckError::ViolationMismatch { .. }),
            "{name}: expected ViolationMismatch, got {err}"
        );
        tested += 1;
    }
    assert!(tested > 0, "corpus must contain buggy checkable benchmarks");
}

/// Doctoring the solution itself to hide the bit that feeds a violation
/// breaks the post-fixpoint property (or entry coverage) — replay rejects.
#[test]
fn clearing_solution_bits_is_caught_by_replay() {
    let mut tested = 0;
    for (name, source, _engine, _report, mut cert) in corpus_certificates() {
        if !cert.checkable() || cert.violations.is_empty() {
            continue;
        }
        let spec = builtin_spec(&cert.spec);
        let certifier = Certifier::from_spec(spec.clone()).expect("derives");
        // clear every claimed bit everywhere: with the violations claim kept,
        // either the empty solution no longer covers the entry / is no
        // post-fixpoint, or it implies fewer violations than claimed
        for cell in &mut cert.cells {
            match &mut cell.solution {
                CellSolution::MayOne { nodes } => nodes.iter_mut().for_each(|n| n.clear()),
                CellSolution::Relational { nodes } => nodes.iter_mut().for_each(|n| n.clear()),
                CellSolution::Unavailable { .. } => {}
            }
        }
        let err = check::check_text(&source, &spec, certifier.derived(), &cert.to_text())
            .expect_err("hollowed-out solution must be rejected");
        assert!(
            matches!(
                err,
                CheckError::EntryNotCovered { .. }
                    | CheckError::NotPostFixpoint { .. }
                    | CheckError::ViolationMismatch { .. }
            ),
            "{name}: unexpected rejection {err}"
        );
        tested += 1;
    }
    assert!(tested > 0);
}

/// A certificate for one client must not validate another, and a cell may
/// not be silently dropped.
#[test]
fn binding_and_coverage_are_enforced() {
    let spec = canvas_conformance::easl::builtin::cmp();
    let certifier = Certifier::from_spec(spec.clone()).expect("derives");
    let src = "class Main { static void main() {\n  Set s = new Set();\n  Iterator i = s.iterator();\n  s.add(\"x\");\n  i.next();\n} static void other() { Set t = new Set(); t.add(\"y\"); } }";
    let program = canvas_conformance::minijava::Program::parse(src, &spec).expect("parses");
    let (_report, cert) =
        certifier.certify_with_certificate(src, &program, Engine::ScmpFds).expect("certifies");
    assert!(cert.checkable());

    // wrong source
    let other_src = src.replace("i.next()", "s.add(\"z\")");
    let err = check::check_text(&other_src, &spec, certifier.derived(), &cert.to_text())
        .expect_err("wrong source");
    assert!(matches!(err, CheckError::WrongSource));

    // wrong spec
    let grp = canvas_conformance::easl::builtin::grp();
    let grp_certifier = Certifier::from_spec(grp.clone()).expect("derives");
    let err = check::check_text(src, &grp, grp_certifier.derived(), &cert.to_text())
        .expect_err("wrong spec");
    assert!(matches!(err, CheckError::WrongSpec { .. }));

    // dropped cell
    let mut truncated = cert.clone();
    truncated.cells.pop();
    let err = check::check_text(src, &spec, certifier.derived(), &truncated.to_text())
        .expect_err("missing cell");
    assert!(matches!(err, CheckError::MissingCell { .. }));
}

fn builtin_spec(name: &str) -> canvas_conformance::easl::Spec {
    match name {
        "cmp" => canvas_conformance::easl::builtin::cmp(),
        "grp" => canvas_conformance::easl::builtin::grp(),
        "imp" => canvas_conformance::easl::builtin::imp(),
        "aop" => canvas_conformance::easl::builtin::aop(),
        other => panic!("unknown builtin spec {other}"),
    }
}

fn fig3_fixture() -> (String, canvas_conformance::easl::Spec, Certifier, String) {
    let b = corpus().into_iter().find(|b| b.name == "fig3").expect("fig3 exists");
    let spec = b.spec.spec();
    let certifier = Certifier::from_spec(spec.clone()).expect("derives");
    let program = canvas_conformance::minijava::Program::parse(b.source, &spec).expect("parses");
    let (_r, cert) =
        certifier.certify_with_certificate(b.source, &program, Engine::ScmpFds).expect("certifies");
    let text = cert.to_text();
    (b.source.to_string(), spec, certifier, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single bit of any byte of a serialized certificate
    /// makes the checker reject it: either the trailing digest no longer
    /// matches, the line fails to parse, or the replay finds the
    /// inconsistency. No single-bit corruption can survive.
    #[test]
    fn single_bit_flips_are_rejected(byte in 0usize..4096, bit in 0u32..8) {
        let (source, spec, certifier, text) = fig3_fixture();
        let byte = byte % text.len();
        let mut bytes = text.clone().into_bytes();
        bytes[byte] ^= 1u8 << bit;
        if bytes == text.as_bytes() {
            return Ok(()); // no-op flip cannot occur (xor), but keep proptest happy
        }
        match String::from_utf8(bytes) {
            Err(_) => {} // non-UTF-8 cannot even reach the parser
            Ok(mutated) => {
                let r = check::check_text(&source, &spec, certifier.derived(), &mutated);
                prop_assert!(
                    r.is_err(),
                    "flip of bit {bit} at byte {byte} must be rejected"
                );
            }
        }
    }

    /// Truncating a serialized certificate anywhere makes it unparseable.
    #[test]
    fn truncations_are_rejected(cut in 1usize..4096) {
        let (_source, _spec, _certifier, text) = fig3_fixture();
        let cut = cut % (text.len() - 1) + 1;
        prop_assert!(Certificate::parse(&text[..cut]).is_err(), "cut at {cut}");
    }
}
