//! Golden tests pinning the deterministic eval tables.
//!
//! The E1 (derivation) and E2 (Fig. 3 walkthrough) tables are pure
//! functions of the built-in specs and engines — no timing, no random
//! clients — so their rendered text is pinned byte-for-byte. Any refactor
//! of the logic/wp/abstraction/engine stack must leave these bytes
//! untouched; regenerate deliberately with
//! `cargo run -p canvas-bench --bin eval -- derive` (resp. `fig3`) only
//! when the analysis itself is meant to change.

#[test]
fn derive_table_matches_golden() {
    let expected = include_str!("golden/derive.txt");
    let actual = canvas_bench::render_derive();
    assert_eq!(actual, expected, "`eval -- derive` output drifted from tests/golden/derive.txt");
}

#[test]
fn fig3_table_matches_golden() {
    let expected = include_str!("golden/fig3.txt");
    let actual = canvas_bench::render_fig3();
    assert_eq!(actual, expected, "`eval -- fig3` output drifted from tests/golden/fig3.txt");
}

#[test]
fn fig3_explained_matches_golden() {
    let expected = include_str!("golden/fig3_explain.txt");
    let actual = canvas_bench::render_fig3_explained();
    assert_eq!(
        actual, expected,
        "`eval -- fig3 --explain` output drifted from tests/golden/fig3_explain.txt"
    );
}

/// Pins `canvas certify --spec cmp --explain examples/fig3.mj`: errors at
/// lines 6 and 9 with full witness traces (create → mutate → stale use),
/// nothing reported at line 7.
#[test]
fn fig3_example_explained_matches_golden() {
    let expected = include_str!("golden/fig3_example_explain.txt");
    let source = include_str!("../examples/fig3.mj");
    let certifier = canvas_core::Certifier::from_spec(canvas_easl::builtin::cmp())
        .expect("cmp derives")
        .with_explain(true);
    let report = certifier
        .certify_source(source, canvas_core::Engine::ScmpFds)
        .expect("fig3 example certifies");
    assert_eq!(report.lines(), vec![6, 9], "errors at lines 6 and 9, line 7 clean");
    let actual = report.render_explained("examples/fig3.mj", source);
    assert_eq!(
        actual, expected,
        "`canvas --explain examples/fig3.mj` output drifted from \
         tests/golden/fig3_example_explain.txt"
    );
}
