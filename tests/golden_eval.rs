//! Golden tests pinning the deterministic eval tables.
//!
//! The E1 (derivation) and E2 (Fig. 3 walkthrough) tables are pure
//! functions of the built-in specs and engines — no timing, no random
//! clients — so their rendered text is pinned byte-for-byte. Any refactor
//! of the logic/wp/abstraction/engine stack must leave these bytes
//! untouched; regenerate deliberately with
//! `cargo run -p canvas-bench --bin eval -- derive` (resp. `fig3`) only
//! when the analysis itself is meant to change.

#[test]
fn derive_table_matches_golden() {
    let expected = include_str!("golden/derive.txt");
    let actual = canvas_bench::render_derive();
    assert_eq!(actual, expected, "`eval -- derive` output drifted from tests/golden/derive.txt");
}

#[test]
fn fig3_table_matches_golden() {
    let expected = include_str!("golden/fig3.txt");
    let actual = canvas_bench::render_fig3();
    assert_eq!(actual, expected, "`eval -- fig3` output drifted from tests/golden/fig3.txt");
}
