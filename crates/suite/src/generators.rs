//! Parameterised client generators for the scaling experiments (E7).
//!
//! The generated programs are SCMP-shaped straight-line/branchy clients of
//! CMP whose size parameters let the evaluation sweep the paper's `E`
//! (control-flow edges) and `B` (component variables) dimensions
//! independently, with known ground truth: a generated error site is a use
//! of an iterator after a mutation of its set, marked by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated client plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The mini-Java source.
    pub source: String,
    /// Lines of genuine potential violations.
    pub error_lines: Vec<u32>,
}

/// Generates a client with `blocks` independent blocks, each creating a
/// set, `iters` iterators over it, exercising them, and (for blocks chosen
/// by `error_rate`) mutating the set before one final (erroneous) use.
///
/// Determinism: the same `(blocks, iters, seed)` always yields the same
/// program.
pub fn scmp_blocks(blocks: usize, iters: usize, error_rate: f64, seed: u64) -> Generated {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("class Main {\n    static void main() {\n");
    let mut line: u32 = 2;
    let mut error_lines = Vec::new();
    let push = |out: &mut String, line: &mut u32, s: &str| {
        out.push_str(s);
        out.push('\n');
        *line += 1;
    };
    for b in 0..blocks {
        push(&mut out, &mut line, &format!("        Set s{b} = new Set();"));
        push(&mut out, &mut line, &format!("        s{b}.add(\"seed\");"));
        for k in 0..iters {
            push(&mut out, &mut line, &format!("        Iterator i{b}_{k} = s{b}.iterator();"));
            push(&mut out, &mut line, &format!("        i{b}_{k}.next();"));
        }
        // optional conditional use under a branch (adds CFG edges)
        push(&mut out, &mut line, "        if (true) {");
        push(&mut out, &mut line, &format!("            i{b}_0.next();"));
        push(&mut out, &mut line, "        }");
        if rng.gen_bool(error_rate) {
            push(&mut out, &mut line, &format!("        s{b}.add(\"more\");"));
            // the very next use is a genuine potential violation
            push(&mut out, &mut line, &format!("        i{b}_0.next();"));
            error_lines.push(line); // counter after push == statement line
        } else {
            // refresh before further use: safe
            push(&mut out, &mut line, &format!("        i{b}_0 = s{b}.iterator();"));
            push(&mut out, &mut line, &format!("        i{b}_0.next();"));
        }
    }
    out.push_str("    }\n}\n");
    Generated { source: out, error_lines }
}

/// Generates a CMP client of `blocks` independent iterate-while-mutating
/// loops: each block seeds a set and loops `{ next()s; add }` *without*
/// refreshing the iterator, so the staleness facts grow around the back
/// edge and the fixpoint kernel must re-sweep every loop body until they
/// converge — the workload of choice for benchmarking the solver itself
/// (the straight-line [`scmp_blocks`] visits every edge exactly once).
/// `iters` scales the `next()` calls per body; every one of them is a
/// genuine potential violation from the second iteration on, so the
/// ground truth is "all of them". Deterministic: no randomness at all.
pub fn scmp_loop_blocks(blocks: usize, iters: usize) -> Generated {
    let mut out = String::from("class Main {\n    static void main() {\n");
    let mut line: u32 = 2;
    let mut error_lines = Vec::new();
    let push = |out: &mut String, line: &mut u32, s: &str| {
        out.push_str(s);
        out.push('\n');
        *line += 1;
    };
    for b in 0..blocks {
        push(&mut out, &mut line, &format!("        Set s{b} = new Set();"));
        push(&mut out, &mut line, &format!("        s{b}.add(\"seed\");"));
        push(
            &mut out,
            &mut line,
            &format!("        for (Iterator i{b} = s{b}.iterator(); i{b}.hasNext(); ) {{"),
        );
        for _ in 0..iters.max(1) {
            push(&mut out, &mut line, &format!("            i{b}.next();"));
            error_lines.push(line);
        }
        push(&mut out, &mut line, &format!("            s{b}.add(\"x\");"));
        push(&mut out, &mut line, "        }");
    }
    out.push_str("    }\n}\n");
    Generated { source: out, error_lines }
}

/// Generates a deep call chain of `depth` helper methods; the innermost one
/// mutates the set iff `mutate`, making the caller's iterator use an error.
pub fn interproc_chain(depth: usize, mutate: bool) -> Generated {
    let mut out = String::from("class Main {\n    static void main() {\n");
    out.push_str("        Set s = new Set();\n");
    out.push_str("        Iterator i = s.iterator();\n");
    out.push_str("        f0(s);\n");
    out.push_str("        i.next();\n"); // line 6
    out.push_str("    }\n");
    for d in 0..depth {
        if d + 1 < depth {
            out.push_str(&format!("    static void f{d}(Set x) {{ f{}(x); }}\n", d + 1));
        } else if mutate {
            out.push_str(&format!("    static void f{d}(Set x) {{ x.add(\"deep\"); }}\n"));
        } else {
            out.push_str(&format!("    static void f{d}(Set x) {{ }}\n"));
        }
    }
    out.push_str("}\n");
    Generated { source: out, error_lines: if mutate { vec![6] } else { vec![] } }
}

/// Generates a client with one set and `n` iterator variables copied in a
/// ring, sweeping the `B` dimension (predicate instances grow as `B²`).
pub fn iterator_ring(n: usize, stale_all: bool) -> Generated {
    let mut out = String::from("class Main {\n    static void main() {\n");
    let mut line: u32 = 2;
    let push = |out: &mut String, line: &mut u32, s: &str| {
        out.push_str(s);
        out.push('\n');
        *line += 1;
    };
    push(&mut out, &mut line, "        Set s = new Set();");
    push(&mut out, &mut line, "        Iterator i0 = s.iterator();");
    for k in 1..n {
        push(&mut out, &mut line, &format!("        Iterator i{k} = i{};", k - 1));
    }
    let mut error_lines = Vec::new();
    if stale_all {
        push(&mut out, &mut line, "        s.add(\"x\");");
    }
    for k in 0..n {
        push(&mut out, &mut line, &format!("        i{k}.next();"));
        if stale_all {
            error_lines.push(line);
        }
    }
    out.push_str("    }\n}\n");
    Generated { source: out, error_lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_core::{Certifier, Engine};

    #[test]
    fn scmp_blocks_truth_matches_fds() {
        let g = scmp_blocks(6, 3, 0.5, 42);
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let r = c.certify_source(&g.source, Engine::ScmpFds).unwrap();
        assert_eq!(r.lines(), g.error_lines, "\n{}", g.source);
    }

    #[test]
    fn scmp_loop_blocks_truth_matches_fds() {
        let g = scmp_loop_blocks(4, 2);
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let r = c.certify_source(&g.source, Engine::ScmpFds).unwrap();
        assert_eq!(r.lines(), g.error_lines, "\n{}", g.source);
        // and it is deterministic (no RNG at all)
        let a = scmp_loop_blocks(4, 2);
        let b = scmp_loop_blocks(4, 2);
        assert_eq!(a.source, b.source);
        assert_eq!(a.error_lines, b.error_lines);
    }

    #[test]
    fn scmp_blocks_deterministic() {
        let a = scmp_blocks(4, 2, 0.3, 7);
        let b = scmp_blocks(4, 2, 0.3, 7);
        assert_eq!(a.source, b.source);
        assert_eq!(a.error_lines, b.error_lines);
    }

    #[test]
    fn interproc_chain_truth() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        let g = interproc_chain(4, true);
        let r = c.certify_source(&g.source, Engine::ScmpInterproc).unwrap();
        assert_eq!(r.lines(), g.error_lines, "\n{}", g.source);
        let g = interproc_chain(4, false);
        let r = c.certify_source(&g.source, Engine::ScmpInterproc).unwrap();
        assert!(r.certified(), "\n{}", g.source);
    }

    #[test]
    fn iterator_ring_truth() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
        for (n, stale) in [(3, true), (3, false), (6, true)] {
            let g = iterator_ring(n, stale);
            let r = c.certify_source(&g.source, Engine::ScmpFds).unwrap();
            assert_eq!(r.lines(), g.error_lines, "n={n} stale={stale}\n{}", g.source);
        }
    }
}

/// Configuration for [`random_client`].
#[derive(Clone, Copy, Debug)]
pub struct RandomCfg {
    /// Number of `Set` variables.
    pub sets: usize,
    /// Number of `Iterator` variables.
    pub iters: usize,
    /// Number of statements in `main`.
    pub stmts: usize,
    /// Maximum `if` nesting depth.
    pub branch_depth: usize,
    /// Number of helper methods (callees mutate/iterate their parameters).
    pub helpers: usize,
}

impl Default for RandomCfg {
    fn default() -> Self {
        RandomCfg { sets: 2, iters: 3, stmts: 12, branch_depth: 2, helpers: 0 }
    }
}

/// Generates a random well-typed, loop-free CMP client: every variable is
/// initialized up front (so no path NPEs), then a random mix of copies,
/// mutations, iterator uses, branches, and helper calls. Ground truth comes
/// from the concrete oracle ([`crate::oracle::explore`]), making this the
/// workhorse of the differential tests.
pub fn random_client(cfg: RandomCfg, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("class Main {\n    static void main() {\n");
    // declarations: sets first, then iterators over random sets
    for s in 0..cfg.sets {
        out.push_str(&format!("        Set s{s} = new Set();\n"));
    }
    for i in 0..cfg.iters {
        let s = rng.gen_range(0..cfg.sets);
        out.push_str(&format!("        Iterator i{i} = s{s}.iterator();\n"));
    }
    let mut budget = cfg.stmts;
    emit_block(&mut out, &mut rng, &cfg, 2, cfg.branch_depth, &mut budget);
    out.push_str("    }\n");
    for h in 0..cfg.helpers {
        let kind = rng.gen_range(0..3);
        match kind {
            0 => out.push_str(&format!("    static void h{h}(Set x) {{ x.add(\"h{h}\"); }}\n")),
            1 => out.push_str(&format!(
                "    static void h{h}(Set x) {{ Iterator t = x.iterator(); t.next(); }}\n"
            )),
            _ => out.push_str(&format!("    static void h{h}(Set x) {{ }}\n")),
        }
    }
    out.push_str("}\n");
    out
}

fn emit_block(
    out: &mut String,
    rng: &mut StdRng,
    cfg: &RandomCfg,
    indent: usize,
    depth: usize,
    budget: &mut usize,
) {
    let pad = "    ".repeat(indent);
    while *budget > 0 {
        *budget -= 1;
        let choice = rng.gen_range(0..100);
        match choice {
            // iterator use
            0..=24 => {
                let i = rng.gen_range(0..cfg.iters);
                out.push_str(&format!("{pad}i{i}.next();\n"));
            }
            // mutation through the collection
            25..=39 => {
                let s = rng.gen_range(0..cfg.sets);
                if rng.gen_bool(0.5) {
                    out.push_str(&format!("{pad}s{s}.add(\"x\");\n"));
                } else {
                    out.push_str(&format!("{pad}s{s}.remove(\"x\");\n"));
                }
            }
            // mutation through an iterator
            40..=49 => {
                let i = rng.gen_range(0..cfg.iters);
                out.push_str(&format!("{pad}i{i}.remove();\n"));
            }
            // refresh an iterator
            50..=64 => {
                let i = rng.gen_range(0..cfg.iters);
                let s = rng.gen_range(0..cfg.sets);
                out.push_str(&format!("{pad}i{i} = s{s}.iterator();\n"));
            }
            // copies
            65..=74 => {
                if rng.gen_bool(0.5) && cfg.iters >= 2 {
                    let a = rng.gen_range(0..cfg.iters);
                    let b = rng.gen_range(0..cfg.iters);
                    out.push_str(&format!("{pad}i{a} = i{b};\n"));
                } else if cfg.sets >= 2 {
                    let a = rng.gen_range(0..cfg.sets);
                    let b = rng.gen_range(0..cfg.sets);
                    out.push_str(&format!("{pad}s{a} = s{b};\n"));
                }
            }
            // fresh set
            75..=81 => {
                let s = rng.gen_range(0..cfg.sets);
                out.push_str(&format!("{pad}s{s} = new Set();\n"));
            }
            // helper call
            82..=89 if cfg.helpers > 0 => {
                let h = rng.gen_range(0..cfg.helpers);
                let s = rng.gen_range(0..cfg.sets);
                out.push_str(&format!("{pad}h{h}(s{s});\n"));
            }
            // branch
            _ if depth > 0 && *budget >= 2 => {
                let then_budget = (*budget).min(1 + rng.gen_range(0..3));
                *budget -= then_budget;
                out.push_str(&format!("{pad}if (true) {{\n"));
                let mut tb = then_budget;
                emit_block(out, rng, cfg, indent + 1, depth - 1, &mut tb);
                if rng.gen_bool(0.5) {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    let mut eb = (*budget).min(rng.gen_range(1..3));
                    *budget -= eb;
                    emit_block(out, rng, cfg, indent + 1, depth - 1, &mut eb);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                let i = rng.gen_range(0..cfg.iters);
                out.push_str(&format!("{pad}i{i}.next();\n"));
            }
        }
    }
}

/// Generates a random well-typed, loop-free GRP client: graphs are created,
/// traversals started (each start *grabs* the graph, invalidating prior
/// traversals), resumed, and copied.
pub fn random_grp_client(graphs: usize, travs: usize, stmts: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("class Main {\n    static void main() {\n");
    for g in 0..graphs {
        out.push_str(&format!("        Graph g{g} = new Graph();\n"));
    }
    for t in 0..travs {
        let g = rng.gen_range(0..graphs);
        out.push_str(&format!("        Traversal t{t} = g{g}.startTraversal();\n"));
    }
    for _ in 0..stmts {
        match rng.gen_range(0..100) {
            0..=39 => {
                let t = rng.gen_range(0..travs);
                out.push_str(&format!("        t{t}.next();\n"));
            }
            40..=64 => {
                let t = rng.gen_range(0..travs);
                let g = rng.gen_range(0..graphs);
                out.push_str(&format!("        t{t} = g{g}.startTraversal();\n"));
            }
            65..=79 if travs >= 2 => {
                let a = rng.gen_range(0..travs);
                let b = rng.gen_range(0..travs);
                out.push_str(&format!("        t{a} = t{b};\n"));
            }
            80..=89 => {
                let g = rng.gen_range(0..graphs);
                out.push_str(&format!("        g{g} = new Graph();\n"));
            }
            _ => {
                let t = rng.gen_range(0..travs);
                out.push_str(&format!("        if (true) {{ t{t}.next(); }}\n"));
            }
        }
    }
    out.push_str("    }\n}\n");
    out
}

/// Generates a random well-typed, loop-free IMP client: factories make
/// widgets; `combine` requires both widgets to come from the receiver.
pub fn random_imp_client(factories: usize, widgets: usize, stmts: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("class Main {\n    static void main() {\n");
    for f in 0..factories {
        out.push_str(&format!("        Factory f{f} = new Factory();\n"));
    }
    for w in 0..widgets {
        let f = rng.gen_range(0..factories);
        out.push_str(&format!("        Widget w{w} = f{f}.makeWidget();\n"));
    }
    for _ in 0..stmts {
        match rng.gen_range(0..100) {
            0..=44 => {
                let f = rng.gen_range(0..factories);
                let a = rng.gen_range(0..widgets);
                let b = rng.gen_range(0..widgets);
                out.push_str(&format!("        f{f}.combine(w{a}, w{b});\n"));
            }
            45..=64 => {
                let w = rng.gen_range(0..widgets);
                let f = rng.gen_range(0..factories);
                out.push_str(&format!("        w{w} = f{f}.makeWidget();\n"));
            }
            65..=79 if widgets >= 2 => {
                let a = rng.gen_range(0..widgets);
                let b = rng.gen_range(0..widgets);
                out.push_str(&format!("        w{a} = w{b};\n"));
            }
            _ if factories >= 2 => {
                let a = rng.gen_range(0..factories);
                let b = rng.gen_range(0..factories);
                out.push_str(&format!("        f{a} = f{b};\n"));
            }
            _ => {}
        }
    }
    out.push_str("    }\n}\n");
    out
}
