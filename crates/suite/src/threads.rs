//! Shared worker-thread-count policy for the parallel drivers.
//!
//! Both the suite/bench driver and the `canvas serve` dispatcher size their
//! worker pools from `CANVAS_EVAL_THREADS`. The variable is parsed **once**
//! per process (so a bad value warns once, not once per table), and every
//! caller clamps the shared answer to its own job count.

use std::sync::OnceLock;

/// Worker count for a parallel driver with `jobs` independent jobs:
/// `CANVAS_EVAL_THREADS` when set (use `1` to force the sequential order),
/// else the machine's parallelism, clamped to `[1, jobs]`. Unusable values
/// (`0`, non-numeric) fall back to the default with a warning instead of
/// being silently ignored; the warning fires at most once per process.
pub fn worker_count(jobs: usize) -> usize {
    static PARSED: OnceLock<usize> = OnceLock::new();
    let n = *PARSED.get_or_init(|| parse_env(std::env::var("CANVAS_EVAL_THREADS").ok().as_deref()));
    clamp(n, jobs)
}

/// The parse-with-warning policy behind [`worker_count`], testable without
/// touching the process environment.
pub fn worker_count_from(raw: Option<&str>, jobs: usize) -> usize {
    clamp(parse_env(raw), jobs)
}

fn clamp(n: usize, jobs: usize) -> usize {
    n.min(jobs).max(1)
}

fn parse_env(raw: Option<&str>) -> usize {
    let default = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match raw {
        None => default(),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                let d = default();
                canvas_telemetry::events::warn(
                    "suite.threads",
                    format!(
                        "CANVAS_EVAL_THREADS={v:?} is not a positive integer; \
                         using the default of {d} worker(s)"
                    ),
                );
                d
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_fallbacks() {
        // unset: machine default, clamped to the job count
        assert_eq!(worker_count_from(None, 1), 1);
        assert!(worker_count_from(None, 1000) >= 1);
        // explicit positive values are honoured (clamped to jobs)
        assert_eq!(worker_count_from(Some("3"), 100), 3);
        assert_eq!(worker_count_from(Some(" 2 "), 100), 2);
        assert_eq!(worker_count_from(Some("64"), 4), 4);
        // zero and garbage fall back to the default instead of wedging
        let default = worker_count_from(None, 1000);
        assert_eq!(worker_count_from(Some("0"), 1000), default);
        assert_eq!(worker_count_from(Some("lots"), 1000), default);
        assert_eq!(worker_count_from(Some(""), 1000), default);
        assert_eq!(worker_count_from(Some("-2"), 1000), default);
    }

    #[test]
    fn worker_count_is_parsed_once_and_clamped_per_call() {
        let a = worker_count(1);
        assert_eq!(a, 1, "clamped to a single job");
        assert!(worker_count(1_000) >= a);
    }
}
