//! The benchmark corpus.

use canvas_easl::Spec;

/// Which built-in specification a benchmark is written against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecKind {
    /// Concurrent Modification Problem.
    Cmp,
    /// Grabbed Resource Problem.
    Grp,
    /// Implementation Mismatch Problem.
    Imp,
    /// Alien Object Problem.
    Aop,
}

impl SpecKind {
    /// Parses the corresponding built-in spec.
    pub fn spec(self) -> Spec {
        match self {
            SpecKind::Cmp => canvas_easl::builtin::cmp(),
            SpecKind::Grp => canvas_easl::builtin::grp(),
            SpecKind::Imp => canvas_easl::builtin::imp(),
            SpecKind::Aop => canvas_easl::builtin::aop(),
        }
    }
}

/// One benchmark client with embedded ground truth.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Short name used in tables.
    pub name: &'static str,
    /// What the benchmark exercises.
    pub description: &'static str,
    /// The specification it is checked against.
    pub spec: SpecKind,
    /// Mini-Java source; real-error lines carry an `// ERROR` marker.
    pub source: &'static str,
    /// Component references confined to locals/statics?
    pub scmp: bool,
    /// Requires interprocedural reasoning for full precision?
    pub interprocedural: bool,
}

impl Benchmark {
    /// Ground truth: the 1-based lines marked `// ERROR`.
    pub fn truth(&self) -> Vec<u32> {
        self.source
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("// ERROR"))
            .map(|(k, _)| (k + 1) as u32)
            .collect()
    }

    /// Lines of code (non-blank).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// The full corpus, ordered roughly by difficulty.
pub fn corpus() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "fig3",
            description: "the paper's running example (Fig. 3)",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); } // ERROR
        if (true) { i3.next(); }
        v.add("...");
        if (true) { i1.next(); } // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "straightline-safe",
            description: "create, mutate, fresh iterator, iterate",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("a");
        s.add("b");
        Iterator i = s.iterator();
        i.next();
        i.remove();
        i.next();
        s.remove("a");
        Iterator j = s.iterator();
        j.next();
    }
}
"#,
        },
        Benchmark {
            name: "version-loop",
            description: "the §3 loop that defeats allocation-site analysis",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) {
                i.next();
            }
        }
    }
}
"#,
        },
        Benchmark {
            name: "loop-mutate",
            description: "collection grown while iterating",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("seed");
        for (Iterator i = s.iterator(); i.hasNext(); ) {
            i.next(); // ERROR
            s.add("more");
        }
    }
}
"#,
        },
        Benchmark {
            name: "iterator-remove",
            description: "remove through one iterator invalidates its siblings",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator a = s.iterator();
        Iterator b = s.iterator();
        a.remove();
        a.next();
        b.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "alias-chain",
            description: "long copy chains; only the last alias family is live",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Set t = s;
        Set u = t;
        Iterator i = u.iterator();
        Iterator j = i;
        Iterator k = j;
        k.remove();
        i.next();
        s.add("x");
        k.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "branch-stale",
            description: "conditional mutation: one branch stales the iterator",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) {
            s.add("x");
        } else {
            i.next();
        }
        i.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "branch-refresh-safe",
            description: "both branches refresh the iterator before use",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) {
            s.add("x");
            i = s.iterator();
        } else {
            i = s.iterator();
        }
        i.next();
    }
}
"#,
        },
        Benchmark {
            name: "two-sets",
            description: "mutating one set leaves the other's iterators valid",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set a = new Set();
        Set b = new Set();
        Iterator ia = a.iterator();
        Iterator ib = b.iterator();
        a.add("x");
        ib.next();
        ia.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "make-worklist",
            description: "the paper's Fig. 1 Make program (worklist grown during processing)",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Make {
    static Set worklist;
    static void main() {
        worklist = new Set();
        worklist.add("all");
        processWorklist();
    }
    static void processWorklist() {
        for (Iterator i = worklist.iterator(); i.hasNext(); ) {
            i.next(); // ERROR
            if (true) { processItem(); }
        }
    }
    static void processItem() { doSubproblem(); }
    static void doSubproblem() { worklist.add("newitem"); }
}
"#,
        },
        Benchmark {
            name: "interproc-grow",
            description: "callee mutates the passed collection",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        grow(s);
        i.next(); // ERROR
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
        },
        Benchmark {
            name: "interproc-other-set",
            description: "callee mutates a different collection (context sensitivity)",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Set t = new Set();
        Iterator i = s.iterator();
        grow(t);
        i.next();
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
        },
        Benchmark {
            name: "interproc-returned",
            description: "iterator produced by a helper, staled by the caller",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = open(s);
        s.add("x");
        i.next(); // ERROR
        Iterator j = open(s);
        j.next();
    }
    static Iterator open(Set x) { return x.iterator(); }
}
"#,
        },
        Benchmark {
            name: "heap-box",
            description: "iterator stored in an object field (HCMP)",
            spec: SpecKind::Cmp,
            scmp: false,
            interprocedural: false,
            source: r#"
class Box {
    Iterator it;
    Box() { }
}
class Main {
    static void main() {
        Set s = new Set();
        Box b = new Box();
        b.it = s.iterator();
        Iterator j = b.it;
        j.next();
        s.add("x");
        Iterator k = b.it;
        k.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "heap-two-boxes",
            description: "two boxed iterators over different sets (HCMP, safe one must not alarm)",
            spec: SpecKind::Cmp,
            scmp: false,
            interprocedural: false,
            source: r#"
class Box {
    Iterator it;
    Box() { }
}
class Main {
    static void main() {
        Set a = new Set();
        Set b = new Set();
        Box ba = new Box();
        Box bb = new Box();
        ba.it = a.iterator();
        bb.it = b.iterator();
        a.add("x");
        Iterator jb = bb.it;
        jb.next();
        Iterator ja = ba.it;
        ja.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "app-report",
            description: "application-like: build, filter and render a report collection",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set records = new Set();
        records.add("r1");
        records.add("r2");
        records.add("r3");
        Set selected = new Set();
        for (Iterator scan = records.iterator(); scan.hasNext(); ) {
            Object r = scan.next();
            if (true) { selected.add(r); }
        }
        for (Iterator render = selected.iterator(); render.hasNext(); ) {
            render.next();
        }
        selected.add("summary-row");
        for (Iterator page = selected.iterator(); page.hasNext(); ) {
            page.next();
            if (true) { page.remove(); }
        }
    }
}
"#,
        },
        Benchmark {
            name: "app-dedup",
            description: "application-like: buggy in-place dedup mutating during iteration",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set items = new Set();
        items.add("a");
        items.add("a");
        items.add("b");
        for (Iterator i = items.iterator(); i.hasNext(); ) {
            Object x = i.next(); // ERROR
            if (true) {
                items.remove(x);
            }
        }
    }
}
"#,
        },
        Benchmark {
            name: "app-cache",
            description: "application-like: cache refresh with iterator kept across refresh",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Main {
    static Set cache;
    static void main() {
        cache = new Set();
        fill();
        Iterator cursor = cache.iterator();
        cursor.next();
        refresh();
        cursor.next(); // ERROR
        cursor = cache.iterator();
        cursor.next();
    }
    static void fill() { cache.add("warm"); }
    static void refresh() { cache.add("new-entry"); }
}
"#,
        },
        Benchmark {
            name: "nested-iteration-safe",
            description: "nested iteration over two sets; inner loop mutates neither",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set outer = new Set();
        Set inner = new Set();
        outer.add("o");
        inner.add("i");
        for (Iterator a = outer.iterator(); a.hasNext(); ) {
            a.next();
            for (Iterator b = inner.iterator(); b.hasNext(); ) {
                b.next();
            }
        }
    }
}
"#,
        },
        Benchmark {
            name: "nested-iteration-cross",
            description: "inner loop mutates the outer set: outer iterator dies",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set outer = new Set();
        Set inner = new Set();
        outer.add("o");
        inner.add("i");
        for (Iterator a = outer.iterator(); a.hasNext(); ) {
            a.next(); // ERROR
            for (Iterator b = inner.iterator(); b.hasNext(); ) {
                b.next();
                outer.add("cross");
            }
        }
    }
}
"#,
        },
        Benchmark {
            name: "app-merge",
            description: "application-like: merge source into target while iterating the source",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set source = new Set();
        Set target = new Set();
        source.add("a");
        source.add("b");
        for (Iterator i = source.iterator(); i.hasNext(); ) {
            Object x = i.next();
            target.add(x);
        }
        for (Iterator j = target.iterator(); j.hasNext(); ) {
            j.next();
        }
    }
}
"#,
        },
        Benchmark {
            name: "app-snapshot",
            description: "application-like: snapshot-before-mutate pattern (safe)",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set live = new Set();
        live.add("x");
        Set snapshot = live;
        live = new Set();
        for (Iterator i = snapshot.iterator(); i.hasNext(); ) {
            Object o = i.next();
            live.add(o);
        }
    }
}
"#,
        },
        Benchmark {
            name: "swap-iterators",
            description: "aliasing stress: swap two iterator variables through a temp",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set s = new Set();
        Set t = new Set();
        Iterator a = s.iterator();
        Iterator b = t.iterator();
        Iterator tmp = a;
        a = b;
        b = tmp;
        s.add("x");
        a.next();
        b.next(); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "grp-two-graphs-safe",
            description: "independent graphs traversed concurrently (safe)",
            spec: SpecKind::Grp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Graph g = new Graph();
        Graph h = new Graph();
        Traversal tg = g.startTraversal();
        Traversal th = h.startTraversal();
        tg.next();
        th.next();
        tg.next();
        th.next();
    }
}
"#,
        },
        Benchmark {
            name: "imp-pass-through",
            description: "widgets routed through copies keep their factory identity",
            spec: SpecKind::Imp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Factory f1 = new Factory();
        Factory f2 = new Factory();
        Widget a = f1.makeWidget();
        Widget b = a;
        Widget c = f2.makeWidget();
        Factory g = f1;
        g.combine(a, b);
        g.combine(b, c); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "app-inventory",
            description: "application-like: restock/audit/report phases over shared inventory",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Inventory {
    static Set stock;
    static Set backorders;
    static void main() {
        stock = new Set();
        backorders = new Set();
        stock.add("widget");
        stock.add("gadget");
        restock();
        audit();
        report();
    }
    static void restock() {
        for (Iterator i = backorders.iterator(); i.hasNext(); ) {
            Object item = i.next();
            stock.add(item);
            i.remove();
        }
    }
    static void audit() {
        for (Iterator i = stock.iterator(); i.hasNext(); ) {
            Object item = i.next(); // ERROR
            if (true) {
                backorders.add(item);
                stock.remove(item);
            }
        }
    }
    static void report() {
        Iterator s = stock.iterator();
        Iterator b = backorders.iterator();
        s.next();
        b.next();
        s.next();
    }
}
"#,
        },
        Benchmark {
            name: "app-social",
            description: "application-like: follower/feed maintenance with several live iterators",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set followers = new Set();
        Set feed = new Set();
        Set spam = new Set();
        followers.add("alice");
        followers.add("bob");
        for (Iterator f = followers.iterator(); f.hasNext(); ) {
            Object who = f.next();
            feed.add(who);
        }
        Iterator reader = feed.iterator();
        reader.next();
        if (true) {
            spam.add("junk");
        } else {
            feed.remove("junk");
        }
        reader.next(); // ERROR
        reader = feed.iterator();
        Iterator curator = feed.iterator();
        curator.next();
        curator.remove();
        reader.next(); // ERROR
        curator.next();
        Iterator cleaner = spam.iterator();
        cleaner.next();
        cleaner.remove();
        cleaner.next();
    }
}
"#,
        },
        Benchmark {
            name: "app-two-phase",
            description: "application-like: collect-then-apply two-phase mutation (the safe idiom)",
            spec: SpecKind::Cmp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Set config = new Set();
        Set pending = new Set();
        config.add("k1");
        config.add("k2");
        for (Iterator scan = config.iterator(); scan.hasNext(); ) {
            Object k = scan.next();
            if (true) { pending.add(k); }
        }
        for (Iterator apply = pending.iterator(); apply.hasNext(); ) {
            Object k2 = apply.next();
            config.remove(k2);
        }
        Iterator check = config.iterator();
        check.next();
    }
}
"#,
        },
        Benchmark {
            name: "grp-traversals",
            description: "grabbed resource: resumed traversal after a new one started",
            spec: SpecKind::Grp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Graph g = new Graph();
        Traversal t1 = g.startTraversal();
        t1.next();
        Traversal t2 = g.startTraversal();
        t2.next();
        t1.next(); // ERROR
        Graph h = new Graph();
        Traversal t3 = h.startTraversal();
        t3.next();
        t2.next();
    }
}
"#,
        },
        Benchmark {
            name: "grp-interproc",
            description:
                "a helper restarts the traversal of the passed graph (GRP, interprocedural)",
            spec: SpecKind::Grp,
            scmp: true,
            interprocedural: true,
            source: r#"
class Main {
    static void main() {
        Graph g = new Graph();
        Traversal t = g.startTraversal();
        t.next();
        restart(g);
        t.next(); // ERROR
    }
    static void restart(Graph x) {
        Traversal fresh = x.startTraversal();
        fresh.next();
    }
}
"#,
        },
        Benchmark {
            name: "imp-factories",
            description: "factory mismatch: widgets from different factories combined",
            spec: SpecKind::Imp,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Factory f1 = new Factory();
        Factory f2 = new Factory();
        Widget a = f1.makeWidget();
        Widget b = f1.makeWidget();
        Widget c = f2.makeWidget();
        f1.combine(a, b);
        f1.combine(a, c); // ERROR
    }
}
"#,
        },
        Benchmark {
            name: "aop-vertices",
            description: "alien object: vertex of one graph added to another",
            spec: SpecKind::Aop,
            scmp: true,
            interprocedural: false,
            source: r#"
class Main {
    static void main() {
        Graph g = new Graph();
        Graph h = new Graph();
        Vertex v1 = g.addVertex();
        Vertex v2 = g.addVertex();
        Vertex w = h.addVertex();
        g.addEdge(v1, v2);
        g.addEdge(v1, w); // ERROR
    }
}
"#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_truth_extracted() {
        for b in corpus() {
            let spec = b.spec.spec();
            let program = canvas_minijava::Program::parse(b.source, &spec)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(program.main_method().is_some(), "{}", b.name);
            assert_eq!(program.is_scmp_shaped(), b.scmp, "{}", b.name);
            assert!(b.loc() > 5, "{}", b.name);
        }
    }

    #[test]
    fn truth_markers() {
        let by_name = |n: &str| corpus().into_iter().find(|b| b.name == n).unwrap();
        assert_eq!(by_name("fig3").truth().len(), 2);
        assert_eq!(by_name("version-loop").truth().len(), 0);
        assert_eq!(by_name("make-worklist").truth().len(), 1);
        assert_eq!(by_name("imp-factories").truth().len(), 1);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = corpus().iter().map(|b| b.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
