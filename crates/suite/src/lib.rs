//! The evaluation corpus (paper §7) and workload generators.
//!
//! The paper evaluates its prototype CMP certifier on "a suite of test
//! cases, including both real-world programs that use JCF and contrived
//! test cases representing difficult instances of CMP". We cannot run
//! 2002-era Java sources (no Java frontend — see DESIGN.md); instead the
//! corpus contains:
//!
//! * the paper's own programs (Fig. 1 `Make`, Fig. 3, the §3 version loop),
//! * contrived hard instances (aliasing chains, conditional staleness,
//!   loops, heap-stored iterators, interprocedural mutation),
//! * *application-like* clients mirroring common JCF usage patterns at
//!   realistic method sizes, and
//! * clients for the other FOS problems (GRP, IMP, AOP).
//!
//! Ground truth is embedded in the sources: every line where a violation is
//! genuinely possible carries an `// ERROR` marker; [`Benchmark::truth`]
//! recovers the line numbers, and the evaluation counts reported versus
//! real errors and false alarms per engine.

mod corpus;
pub mod generators;
pub mod oracle;
pub mod threads;

pub use corpus::{corpus, Benchmark, SpecKind};
pub use threads::worker_count;
