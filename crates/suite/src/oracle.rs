//! A concrete-execution oracle for differential testing.
//!
//! The oracle runs a mini-Java client *concretely* against the EASL
//! semantics of the component, exploring every nondeterministic branch
//! choice up to a path/step budget, and records every `requires` violation
//! it actually reaches. Certifier soundness then has a machine-checkable
//! form: on every explored program,
//!
//! > oracle violations ⊆ certifier violations (for every engine),
//!
//! and on loop-free clients the *precise* engines must match the oracle
//! exactly. `tests/prop_oracle.rs` runs this over thousands of generated
//! clients.

use std::collections::{BTreeSet, HashMap};

use canvas_easl::{ClassSpec, MethodSpec, Spec, SpecExpr, SpecStmt, SpecVar};
use canvas_logic::{Formula, Term};
use canvas_minijava::{Instr, MethodIr, NodeId, Program, VarId};

/// A concrete runtime value: null or an object id.
type Value = Option<usize>;

/// One concrete object (component or client): its fields.
#[derive(Clone, Debug, Default)]
struct Object {
    fields: HashMap<String, Value>,
}

/// The exploration result.
#[derive(Clone, Debug)]
pub struct OracleResult {
    /// Source lines where a `requires` concretely failed on some path.
    pub violation_lines: BTreeSet<u32>,
    /// Paths fully explored (to exit or to a path-ending event).
    pub paths: usize,
    /// Whether exploration hit a budget (the violation set is then a lower
    /// bound).
    pub truncated: bool,
}

/// Why the oracle could not produce a result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OracleError {
    /// The program has no static `main` entry point.
    NoMain,
    /// The dedicated interpreter thread could not be spawned.
    Spawn(String),
    /// The interpreter thread panicked; the panic was contained and its
    /// payload (when it was a string) is carried here.
    Panicked(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::NoMain => f.write_str("oracle needs a static main method"),
            OracleError::Spawn(e) => write!(f, "cannot spawn oracle thread: {e}"),
            OracleError::Panicked(m) => write!(f, "oracle thread panicked: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// Concrete interpreter budgets.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Maximum edges executed along one path.
    pub max_steps: usize,
    /// Maximum paths explored in total.
    pub max_paths: usize,
    /// Maximum client-call depth.
    pub max_depth: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { max_steps: 2_000, max_paths: 4_096, max_depth: 32 }
    }
}

/// Explores all branch choices of `main` and returns every line whose
/// `requires` concretely fails on some path.
///
/// The interpreter runs on a dedicated thread; a panic there (including the
/// injected `oracle-death` fault) is contained and surfaced as
/// [`OracleError::Panicked`] rather than tearing down the caller.
pub fn explore(
    program: &Program,
    spec: &Spec,
    config: OracleConfig,
) -> Result<OracleResult, OracleError> {
    // the exhaustive DFS can recurse up to `max_steps` frames; run it on a
    // dedicated thread with a generous stack so callers need no special
    // configuration
    let program = program.clone();
    let spec = spec.clone();
    std::thread::Builder::new()
        .name("oracle".to_string())
        .stack_size(256 << 20)
        .spawn(move || explore_on_this_stack(&program, &spec, config))
        .map_err(|e| OracleError::Spawn(e.to_string()))?
        .join()
        .map_err(|payload| OracleError::Panicked(panic_payload(payload.as_ref())))?
}

fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn explore_on_this_stack(
    program: &Program,
    spec: &Spec,
    config: OracleConfig,
) -> Result<OracleResult, OracleError> {
    static ORACLE_PATHS: canvas_telemetry::Counter =
        canvas_telemetry::Counter::new("oracle.paths_explored");
    canvas_faults::oracle_death();
    let main = program.main_method().ok_or(OracleError::NoMain)?;
    let mut o =
        Oracle { program, spec, config, violations: BTreeSet::new(), paths: 0, truncated: false };
    let entry = State { objects: Vec::new(), vars: HashMap::new() };
    let exits = o.run_from(main, main.cfg.entry(), entry, 0, 0);
    o.paths += exits.len();
    ORACLE_PATHS.add(o.paths as u64);
    Ok(OracleResult { violation_lines: o.violations, paths: o.paths, truncated: o.truncated })
}

#[derive(Clone, Debug)]
struct State {
    objects: Vec<Object>,
    /// program-wide variable environment (VarIds are globally unique, so
    /// statics and all methods' locals coexist; recursion is bounded by
    /// `max_depth`, and recursive frames sharing locals is conservative
    /// enough for the generated test programs, which are non-recursive)
    vars: HashMap<VarId, Value>,
}

impl State {
    fn get(&self, v: VarId) -> Value {
        self.vars.get(&v).copied().flatten()
    }

    fn alloc(&mut self) -> usize {
        self.objects.push(Object::default());
        self.objects.len() - 1
    }
}

struct Oracle<'a> {
    program: &'a Program,
    spec: &'a Spec,
    config: OracleConfig,
    violations: BTreeSet<u32>,
    paths: usize,
    truncated: bool,
}

impl Oracle<'_> {
    /// Runs from `node` to the method exit, forking at branch points;
    /// returns the (return value, state) of every completed path.
    fn run_from(
        &mut self,
        method: &MethodIr,
        node: NodeId,
        state: State,
        depth: usize,
        steps: usize,
    ) -> Vec<(Value, State)> {
        if self.paths >= self.config.max_paths {
            self.truncated = true;
            return Vec::new();
        }
        if steps >= self.config.max_steps {
            self.truncated = true;
            self.paths += 1;
            return Vec::new();
        }
        if node == method.cfg.exit() {
            let ret = method.ret_var.map(|r| state.get(r)).unwrap_or(None);
            return vec![(ret, state)];
        }
        let edges: Vec<_> = method.cfg.succs(node).cloned().collect();
        if edges.is_empty() {
            // disconnected continuation after a return
            return Vec::new();
        }
        let mut out = Vec::new();
        for e in &edges {
            let posts = self.step(&e.instr, state.clone(), depth, steps);
            for post in posts {
                out.extend(self.run_from(method, e.to, post, depth, steps + 1));
                if self.paths >= self.config.max_paths {
                    self.truncated = true;
                    return out;
                }
            }
        }
        out
    }

    /// Executes one instruction; returns the possible post-states (empty =
    /// the path ends here: NPE, violation, or budget).
    fn step(&mut self, instr: &Instr, mut state: State, depth: usize, steps: usize) -> Vec<State> {
        match instr {
            Instr::Nop => vec![state],
            Instr::Copy { dst, src } => {
                let v = state.get(*src);
                state.vars.insert(*dst, v);
                vec![state]
            }
            Instr::Nullify { dst } => {
                state.vars.insert(*dst, None);
                vec![state]
            }
            Instr::Load { dst, base, field } => match state.get(*base) {
                Some(o) => {
                    let v = state.objects[o].fields.get(field).copied().flatten();
                    state.vars.insert(*dst, v);
                    vec![state]
                }
                None => {
                    self.end_path();
                    vec![]
                }
            },
            Instr::Store { base, field, src } => match state.get(*base) {
                Some(o) => {
                    let v = state.get(*src);
                    state.objects[o].fields.insert(field.clone(), v);
                    vec![state]
                }
                None => {
                    self.end_path();
                    vec![]
                }
            },
            Instr::New { dst, ty, args, .. } => {
                let o = state.alloc();
                state.vars.insert(*dst, Some(o));
                if let Some(class) = self.spec.class(ty.as_str()) {
                    let class = class.clone();
                    let argv: Vec<Value> = args.iter().map(|a| state.get(*a)).collect();
                    if let Some(ctor) = class.ctor() {
                        if self.exec_spec_body(&class, ctor, o, &argv, &mut state).is_err() {
                            self.end_path();
                            return vec![];
                        }
                    }
                }
                vec![state]
            }
            Instr::CallComponent { dst, recv, method: m, args, known, at } => {
                let Some(robj) = state.get(*recv) else {
                    self.end_path();
                    return vec![];
                };
                if !known {
                    return vec![state];
                }
                let rty = self.program.var(*recv).ty;
                let class = self.spec.class(rty.as_str()).expect("known method").clone();
                let mspec = class.method(m).expect("known method").clone();
                let argv: Vec<Value> = args.iter().map(|a| state.get(*a)).collect();
                if let Some(req) = mspec.requires() {
                    match self.eval_formula(&class, &mspec, req, robj, &argv, &state) {
                        Ok(true) => {}
                        Ok(false) => {
                            self.violations.insert(at.line());
                            self.end_path(); // the thrown exception ends it
                            return vec![];
                        }
                        Err(()) => {
                            self.end_path();
                            return vec![];
                        }
                    }
                }
                if self.exec_spec_body(&class, &mspec, robj, &argv, &mut state).is_err() {
                    self.end_path();
                    return vec![];
                }
                if let Some(d) = dst {
                    match mspec.ret() {
                        Some(e) => {
                            match self.eval_spec_expr(&class, &mspec, e, robj, &argv, &mut state) {
                                Ok(v) => {
                                    state.vars.insert(*d, v);
                                }
                                Err(()) => {
                                    self.end_path();
                                    return vec![];
                                }
                            }
                        }
                        None => {
                            state.vars.insert(*d, None);
                        }
                    }
                }
                vec![state]
            }
            Instr::CallClient { dst, callee, args, .. } => {
                if depth >= self.config.max_depth {
                    self.truncated = true;
                    self.end_path();
                    return vec![];
                }
                let callee_ir = self.program.method(*callee).clone();
                let argv: Vec<Value> = args.iter().map(|a| state.get(*a)).collect();
                let mut entry = state;
                for (k, p) in callee_ir.params.iter().enumerate() {
                    entry.vars.insert(*p, argv.get(k).copied().flatten());
                }
                let exits =
                    self.run_from(&callee_ir, callee_ir.cfg.entry(), entry, depth + 1, steps + 1);
                exits
                    .into_iter()
                    .map(|(ret, mut s)| {
                        if let Some(d) = dst {
                            s.vars.insert(*d, ret);
                        }
                        s
                    })
                    .collect()
            }
        }
    }

    fn end_path(&mut self) {
        self.paths += 1;
    }

    /// Executes an EASL body concretely; `Err` = NPE inside the spec.
    fn exec_spec_body(
        &mut self,
        class: &ClassSpec,
        m: &MethodSpec,
        this: usize,
        args: &[Value],
        state: &mut State,
    ) -> Result<(), ()> {
        for stmt in m.body() {
            let SpecStmt::Assign { lhs, rhs } = stmt;
            let value = self.eval_spec_expr(class, m, rhs, this, args, state)?;
            // target object: evaluate the parent path
            let parent = canvas_easl::SpecPath::new(
                lhs.base(),
                lhs.fields()[..lhs.fields().len() - 1].to_vec(),
            );
            let target = self.eval_spec_path(&parent, this, args, state)?.ok_or(())?;
            let field = lhs.fields().last().expect("assignments target fields").clone();
            state.objects[target].fields.insert(field, value);
        }
        Ok(())
    }

    /// Evaluates an EASL path; `Err` = NPE while dereferencing.
    fn eval_spec_path(
        &self,
        p: &canvas_easl::SpecPath,
        this: usize,
        args: &[Value],
        state: &State,
    ) -> Result<Value, ()> {
        let mut cur: Value = match p.base() {
            SpecVar::This => Some(this),
            SpecVar::Param(k) => args.get(k).copied().flatten(),
        };
        for f in p.fields() {
            let o = cur.ok_or(())?;
            cur = state.objects[o].fields.get(f).copied().flatten();
        }
        Ok(cur)
    }

    #[allow(clippy::only_used_in_recursion)] // threaded for the recursive cases
    fn eval_spec_expr(
        &mut self,
        class: &ClassSpec,
        m: &MethodSpec,
        e: &SpecExpr,
        this: usize,
        args: &[Value],
        state: &mut State,
    ) -> Result<Value, ()> {
        match e {
            SpecExpr::Path(p) => self.eval_spec_path(p, this, args, state),
            SpecExpr::New { ty, args: ctor_args } => {
                let argv = ctor_args
                    .iter()
                    .map(|a| self.eval_spec_expr(class, m, a, this, args, state))
                    .collect::<Result<Vec<_>, _>>()?;
                let o = state.alloc();
                if let Some(c2) = self.spec.class(ty.as_str()) {
                    let c2 = c2.clone();
                    if let Some(ctor) = c2.ctor() {
                        self.exec_spec_body(&c2, ctor, o, &argv, state)?;
                    }
                }
                Ok(Some(o))
            }
        }
    }

    /// Evaluates a requires formula concretely; `Err` = NPE.
    fn eval_formula(
        &self,
        class: &ClassSpec,
        m: &MethodSpec,
        f: &Formula,
        this: usize,
        args: &[Value],
        state: &State,
    ) -> Result<bool, ()> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Eq(a, b) => {
                let (x, y) = (
                    self.eval_term(class, m, a, this, args, state)?,
                    self.eval_term(class, m, b, this, args, state)?,
                );
                Ok(x == y)
            }
            Formula::Ne(a, b) => {
                let (x, y) = (
                    self.eval_term(class, m, a, this, args, state)?,
                    self.eval_term(class, m, b, this, args, state)?,
                );
                Ok(x != y)
            }
            Formula::Not(g) => Ok(!self.eval_formula(class, m, g, this, args, state)?),
            Formula::And(gs) => {
                for g in gs {
                    if !self.eval_formula(class, m, g, this, args, state)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(gs) => {
                for g in gs {
                    if self.eval_formula(class, m, g, this, args, state)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    fn eval_term(
        &self,
        class: &ClassSpec,
        m: &MethodSpec,
        t: &Term,
        this: usize,
        args: &[Value],
        state: &State,
    ) -> Result<Value, ()> {
        let Term::Path(p) = t else { return Err(()) };
        let base = if p.base().name() == "this" && p.base().ty() == class.name() {
            SpecVar::This
        } else {
            let k = m.params().iter().position(|(n, _)| n == p.base().name()).ok_or(())?;
            SpecVar::Param(k)
        };
        let sp = canvas_easl::SpecPath::new(base, p.fields().to_vec());
        self.eval_spec_path(&sp, this, args, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explore_src(src: &str) -> OracleResult {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        explore(&program, &spec, OracleConfig::default()).expect("oracle runs")
    }

    #[test]
    fn concrete_cme_found() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add("x");
        i.next();
    }
}
"#,
        );
        assert_eq!(r.violation_lines, BTreeSet::from([7]));
        assert!(!r.truncated);
    }

    #[test]
    fn safe_program_clean() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("x");
        Iterator i = s.iterator();
        i.next();
        i.remove();
        i.next();
    }
}
"#,
        );
        assert!(r.violation_lines.is_empty());
        assert_eq!(r.paths, 1);
    }

    #[test]
    fn branches_are_both_explored() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) { s.add("x"); }
        i.next();
    }
}
"#,
        );
        // the mutating branch violates, the other does not
        assert_eq!(r.violation_lines, BTreeSet::from([7]));
        assert!(r.paths >= 2);
    }

    #[test]
    fn fig3_concrete_lines() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#,
        );
        assert_eq!(r.violation_lines, BTreeSet::from([10, 13]));
    }

    #[test]
    fn interprocedural_concrete() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        grow(s);
        i.next();
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
        );
        assert_eq!(r.violation_lines, BTreeSet::from([7]));
    }

    #[test]
    fn loops_truncate_but_find_violations() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        for (Iterator i = s.iterator(); i.hasNext(); ) {
            i.next();
            s.add("x");
        }
    }
}
"#,
        );
        assert!(r.violation_lines.contains(&6));
        // every path here terminates (the violation ends the second
        // iteration), so no truncation is needed
        assert!(!r.truncated);
    }

    #[test]
    fn unbounded_safe_loop_truncates_cleanly() {
        let r = explore_src(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) {
                i.next();
            }
        }
    }
}
"#,
        );
        assert!(r.violation_lines.is_empty(), "{:?}", r.violation_lines);
        assert!(r.truncated, "the outer loop is unbounded");
    }

    #[test]
    fn grp_oracle() {
        let spec = canvas_easl::builtin::grp();
        let program = Program::parse(
            r#"
class Main {
    static void main() {
        Graph g = new Graph();
        Traversal t1 = g.startTraversal();
        t1.next();
        Traversal t2 = g.startTraversal();
        t1.next();
    }
}
"#,
            &spec,
        )
        .unwrap();
        let r = explore(&program, &spec, OracleConfig::default()).expect("oracle runs");
        assert_eq!(r.violation_lines, BTreeSet::from([8]));
    }
}
