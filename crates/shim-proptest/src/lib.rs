//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the proptest 1.x API its property tests use: the
//! `proptest!`, `prop_compose!`, `prop_oneof!` and `prop_assert*!` macros,
//! the `Strategy` trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, `Just`, `any::<bool>()`, integer-range and
//! `&str`-pattern strategies, tuple strategies, and
//! `prop::collection::vec`.
//!
//! Differences from upstream, deliberate and test-visible only on failure:
//! no shrinking (the failing case is reported as-is), and deterministic
//! per-test seeding (each named test explores the same case sequence every
//! run, which doubles as reproducibility). The `PROPTEST_CASES`
//! environment variable overrides the case count of *every* config —
//! upstream honours it only for `default()` — so CI can deepen a suite
//! without code changes. Failure messages carry the failing case's rng
//! seed; `TestRng::new(seed)` replays exactly that case.

pub mod test_runner {
    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure (from `prop_assert*!` or `TestCaseError::fail`).
        Fail(String),
        /// Case rejected by a precondition; not counted as a failure.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is supported.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Unlike upstream, `PROPTEST_CASES` (a positive integer) overrides
        /// explicit counts too, so a nightly job can deepen every suite.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases: env_cases().unwrap_or(cases) }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: env_cases().unwrap_or(64) }
        }
    }

    /// `PROPTEST_CASES` when set to a positive integer, else `None`.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok().filter(|&n| n > 0)
    }

    /// SplitMix64 — deterministic case-generation randomness.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, n)`; modulo bias is irrelevant at
        /// test-case scale.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Drives `cases` deterministic executions of one property.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        // FNV-1a over the test name so distinct tests get distinct streams.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for i in 0..config.cases {
            let case_seed = seed ^ (u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::new(case_seed);
            match case(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    // the seed alone replays the case: TestRng::new(seed)
                    panic!(
                        "proptest `{test_name}` failed at case {i}/{} (rng seed {case_seed:#018x}): {reason}",
                        config.cases
                    )
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A value generator. Unlike upstream there is no shrinking tree; a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Builds a recursive strategy: at each of `depth` levels, either a
        /// leaf (`self`) or one application of `recurse` over the previous
        /// level. `_desired_size`/`_expected_branch_size` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let rec = recurse(strat).boxed();
                strat = Union::new(vec![leaf, rec.clone(), rec]).boxed();
            }
            strat
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union(alternatives)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    /// `&str` as a pattern strategy. Only the `.{lo,hi}` shape the
    /// workspace uses is interpreted (arbitrary chars, length in
    /// `[lo, hi]`); any other pattern falls back to length `0..=64`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = self
                .strip_prefix(".{")
                .and_then(|r| r.strip_suffix('}'))
                .and_then(|r| r.split_once(','))
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .unwrap_or((0usize, 64usize));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let roll = rng.below(100);
                let ch = if roll < 85 {
                    // printable ASCII
                    char::from(0x20 + rng.below(0x5F) as u8)
                } else if roll < 95 {
                    ['\n', '\t', '\r', '"', '\\', '{', '}', '\0'][rng.below(8) as usize]
                } else {
                    char::from_u32(0xA0 + rng.below(0x2F00) as u32).unwrap_or('\u{FFFD}')
                };
                out.push(ch);
            }
            out
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A 0);
    impl_tuple_strategy!(A 0, B 1);
    impl_tuple_strategy!(A 0, B 1, C 2);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.below(2) == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Accepted element-count specifications for `vec`.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_exclusive: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange { lo: r.start, hi_exclusive: r.end }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.size.hi_exclusive.saturating_sub(self.size.lo).max(1);
                let len = self.size.lo + rng.below(span as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: {:?}",
            lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: {:?}\n{}",
            lhs,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run(&config, stringify!($name), |prop_rng| {
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategy, prop_rng);
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_compose {
    // Two binding groups: the second group's strategies may reference the
    // first group's generated values (upstream's flat-map form).
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($fnargs:tt)*)
        ($($arg1:ident in $strategy1:expr),+ $(,)?)
        ($($arg2:ident in $strategy2:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($fnargs)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            use $crate::strategy::Strategy as _;
            ($($strategy1,)+)
                .prop_flat_map(move |($($arg1,)+)| ($($strategy2,)+))
                .prop_map(move |($($arg2,)+)| $body)
        }
    };
    // Single binding group.
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($fnargs:tt)*)
        ($($arg1:ident in $strategy1:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($fnargs)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            use $crate::strategy::Strategy as _;
            ($($strategy1,)+).prop_map(move |($($arg1,)+)| $body)
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::test_runner::TestRng::new(1);
        let s = (0usize..10, 5u64..6, any::<bool>());
        for _ in 0..100 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn proptest_cases_env_overrides_all_configs() {
        // safe: no other test in this crate reads the variable mid-run, and
        // the proptest-driven test below passes at any case count
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::default().cases, 7);
        assert_eq!(ProptestConfig::with_cases(32).cases, 7);
        std::env::set_var("PROPTEST_CASES", "not a number");
        assert_eq!(ProptestConfig::with_cases(32).cases, 32);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 64);
    }

    #[test]
    fn str_pattern_lengths() {
        let mut rng = crate::test_runner::TestRng::new(2);
        for _ in 0..50 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn self_hosted(v in prop::collection::vec(0i32..100, 0..8), flip in any::<bool>()) {
            prop_assert!(v.len() < 8);
            if flip {
                prop_assert_eq!(v.len(), v.len());
            }
        }
    }
}
