//! Terms: access paths and allocation tokens.

use std::fmt;

use crate::{AccessPath, TypeName};

/// A token denoting the value produced by one symbolic execution of a `new`
/// expression.
///
/// Freshness is the key semantic property: a token compares **unequal** to
/// every term that denotes a pre-existing value (any access path evaluated in
/// the pre-state of the allocation), and two distinct tokens compare unequal
/// to each other. The simplifier in [`crate::Formula`] exploits this.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AllocToken {
    id: u32,
    ty: TypeName,
}

impl AllocToken {
    /// Creates a token; ids must be unique within one symbolic computation.
    pub fn new(id: u32, ty: TypeName) -> Self {
        AllocToken { id, ty }
    }

    /// The unique id of this token.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The allocated type.
    pub fn ty(&self) -> &TypeName {
        &self.ty
    }
}

impl fmt::Display for AllocToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "new#{}<{}>", self.id, self.ty)
    }
}

/// A term of the logic: an access path or an allocation token.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A value denoted by an access path evaluated in the current state.
    Path(AccessPath),
    /// A freshly allocated value (see [`AllocToken`]).
    Alloc(AllocToken),
}

impl Term {
    /// The access path, if this term is one.
    pub fn as_path(&self) -> Option<&AccessPath> {
        match self {
            Term::Path(p) => Some(p),
            Term::Alloc(_) => None,
        }
    }

    /// Whether the term is an allocation token.
    pub fn is_alloc(&self) -> bool {
        matches!(self, Term::Alloc(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Path(p) => p.fmt(f),
            Term::Alloc(a) => a.fmt(f),
        }
    }
}

impl From<AccessPath> for Term {
    fn from(p: AccessPath) -> Self {
        Term::Path(p)
    }
}

impl From<AllocToken> for Term {
    fn from(a: AllocToken) -> Self {
        Term::Alloc(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn display() {
        let t: Term = AccessPath::of(Var::new("v", TypeName::new("Set"))).into();
        assert_eq!(t.to_string(), "v");
        let a: Term = AllocToken::new(3, TypeName::new("Version")).into();
        assert_eq!(a.to_string(), "new#3<Version>");
        assert!(a.is_alloc());
        assert!(t.as_path().is_some());
        assert!(a.as_path().is_none());
    }
}
