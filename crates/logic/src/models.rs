//! Small-model enumeration for the EUF fragment.
//!
//! The derivation procedure (paper §4.5) needs to decide whether two
//! candidate instrumentation predicates are equivalent, whether one implies
//! another, and whether a conjunct is satisfiable — all modulo the component
//! method's precondition taken as an assumption. The formulas involved are
//! quantifier-free boolean combinations of equalities over finitely many
//! ground access paths, i.e. a fragment of EUF with a *small model property*:
//! validity is determined by the finitely many congruence-closed equivalence
//! relations over the paths occurring in the formulas (plus their prefixes).
//!
//! [`ModelEnv`] enumerates exactly those relations once and then answers any
//! number of queries over the same vocabulary. This plays the role of the
//! "more powerful decision procedure" the paper notes can replace plain
//! syntactic comparison.

use std::collections::BTreeSet;

use crate::intern::FieldId;
use crate::{AccessPath, Formula, Term, TypeName};

/// Resolves field types so that the enumerator never equates terms of
/// provably different types.
///
/// An oracle returning `None` everywhere (such as the blanket `()` impl) is
/// always sound for equivalence checking — it only admits *more* models, so
/// checks become stricter, never unsound.
pub trait TypeOracle {
    /// The declared type of `field` in type `owner`, if known.
    fn field_type(&self, owner: &TypeName, field: &str) -> Option<TypeName>;
}

/// The trivial oracle: all field types unknown.
impl TypeOracle for () {
    fn field_type(&self, _owner: &TypeName, _field: &str) -> Option<TypeName> {
        None
    }
}

impl<F> TypeOracle for F
where
    F: Fn(&TypeName, &str) -> Option<TypeName>,
{
    fn field_type(&self, owner: &TypeName, field: &str) -> Option<TypeName> {
        self(owner, field)
    }
}

/// The type of an access path under an oracle, walking the field chain from
/// the base variable's type. `None` as soon as a field type is unknown.
pub fn path_type(path: &AccessPath, oracle: &dyn TypeOracle) -> Option<TypeName> {
    let mut ty = *path.base().ty();
    for f in path.fields() {
        ty = oracle.field_type(&ty, f)?;
    }
    Some(ty)
}

/// A set of candidate models (congruence-closed equivalence relations) over
/// the vocabulary of a fixed set of formulas.
#[derive(Debug)]
pub struct ModelEnv {
    universe: Vec<AccessPath>,
    /// For each universe index, `(field, index of extension)` pairs.
    extensions: Vec<Vec<(FieldId, usize)>>,
    /// For each model, the class id of each universe element.
    models: Vec<Vec<usize>>,
}

impl ModelEnv {
    /// Builds the model set for the vocabulary of `formulas`.
    ///
    /// Every query method must only be called with formulas whose paths all
    /// occur (or are prefixes of paths occurring) in `formulas`; this is
    /// checked with a debug assertion.
    pub fn new<'a>(
        formulas: impl IntoIterator<Item = &'a Formula>,
        oracle: &dyn TypeOracle,
    ) -> Self {
        let mut paths: BTreeSet<AccessPath> = BTreeSet::new();
        for f in formulas {
            f.visit_terms(&mut |t| {
                if let Term::Path(p) = t {
                    for q in p.prefixes() {
                        paths.insert(q);
                    }
                }
            });
        }
        let universe: Vec<AccessPath> = paths.into_iter().collect();
        let index = |p: &AccessPath| universe.binary_search(p).ok();
        let extensions: Vec<Vec<(FieldId, usize)>> = universe
            .iter()
            .map(|p| {
                universe
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.parent().as_ref() == Some(p))
                    .map(|(j, q)| (FieldId(*q.fields().last().expect("has parent")), j))
                    .collect()
            })
            .collect();
        let types: Vec<Option<TypeName>> = universe.iter().map(|p| path_type(p, oracle)).collect();

        // Enumerate set partitions via restricted-growth strings, pruning on
        // type compatibility, then filter by congruence closure.
        let n = universe.len();
        let mut models = Vec::new();
        let mut assignment = vec![0usize; n];
        enumerate(0, 0, &mut assignment, &types, &mut |assign| {
            if congruent(assign, &extensions) {
                models.push(assign.to_vec());
            }
        });
        let _ = index; // used only in debug_assert path lookups below
        ModelEnv { universe, extensions, models }
    }

    /// Number of candidate models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    fn eval_in(&self, model: &[usize], f: &Formula) -> bool {
        let class_of = |p: &AccessPath| -> usize {
            match self.universe.binary_search(p) {
                Ok(i) => model[i],
                Err(_) => {
                    debug_assert!(false, "path {p} outside model vocabulary");
                    usize::MAX
                }
            }
        };
        f.eval(&|a, b| match (a, b) {
            (Term::Path(p), Term::Path(q)) => class_of(p) == class_of(q),
            (Term::Alloc(x), Term::Alloc(y)) => x == y,
            _ => false,
        })
    }

    /// Whether `f` and `g` agree in every model satisfying `assumption`.
    pub fn equivalent_under(&self, assumption: &Formula, f: &Formula, g: &Formula) -> bool {
        self.models
            .iter()
            .all(|m| !self.eval_in(m, assumption) || (self.eval_in(m, f) == self.eval_in(m, g)))
    }

    /// Whether `f` implies `g` in every model satisfying `assumption`.
    pub fn implies_under(&self, assumption: &Formula, f: &Formula, g: &Formula) -> bool {
        self.models
            .iter()
            .all(|m| !self.eval_in(m, assumption) || !self.eval_in(m, f) || self.eval_in(m, g))
    }

    /// Whether some model satisfies both `assumption` and `f`.
    pub fn satisfiable_under(&self, assumption: &Formula, f: &Formula) -> bool {
        self.models.iter().any(|m| self.eval_in(m, assumption) && self.eval_in(m, f))
    }

    /// The vocabulary (all paths and prefixes).
    pub fn universe(&self) -> &[AccessPath] {
        &self.universe
    }

    /// The field-extension table, parallel to [`Self::universe`].
    pub fn extensions(&self) -> &[Vec<(FieldId, usize)>] {
        &self.extensions
    }
}

/// Restricted-growth-string enumeration of set partitions with a type-based
/// compatibility prune.
fn enumerate(
    k: usize,
    max_class: usize,
    assignment: &mut Vec<usize>,
    types: &[Option<TypeName>],
    emit: &mut impl FnMut(&[usize]),
) {
    let n = assignment.len();
    if k == n {
        emit(assignment);
        return;
    }
    for c in 0..=max_class {
        // type prune: element k may join class c only if compatible with
        // every element already in c
        let compatible = assignment[..k].iter().enumerate().all(|(j, &cj)| {
            cj != c
                || match (&types[j], &types[k]) {
                    (Some(a), Some(b)) => a == b,
                    _ => true,
                }
        });
        if !compatible {
            continue;
        }
        assignment[k] = c;
        let next_max = if c == max_class { max_class + 1 } else { max_class };
        enumerate(k + 1, next_max, assignment, types, emit);
    }
}

/// Checks the congruence condition: equal parents force equal extensions
/// along a common field. Field comparison is one `u32` compare thanks to
/// interning — this is the innermost loop of model enumeration.
fn congruent(assign: &[usize], extensions: &[Vec<(FieldId, usize)>]) -> bool {
    let n = assign.len();
    for a in 0..n {
        for b in (a + 1)..n {
            if assign[a] != assign[b] {
                continue;
            }
            for (fa, ia) in &extensions[a] {
                for (fb, ib) in &extensions[b] {
                    if fa == fb && assign[*ia] != assign[*ib] {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// One-shot equivalence check under an assumption.
pub fn equivalent(oracle: &dyn TypeOracle, assumption: &Formula, f: &Formula, g: &Formula) -> bool {
    ModelEnv::new([assumption, f, g], oracle).equivalent_under(assumption, f, g)
}

/// One-shot implication check under an assumption.
pub fn implies(oracle: &dyn TypeOracle, assumption: &Formula, f: &Formula, g: &Formula) -> bool {
    ModelEnv::new([assumption, f, g], oracle).implies_under(assumption, f, g)
}

/// One-shot satisfiability check under an assumption.
pub fn satisfiable(oracle: &dyn TypeOracle, assumption: &Formula, f: &Formula) -> bool {
    ModelEnv::new([assumption, f], oracle).satisfiable_under(assumption, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn v(n: &str, t: &str) -> Var {
        Var::new(n, TypeName::new(t))
    }

    fn p(n: &str, t: &str, fields: &[&str]) -> Term {
        let mut q = AccessPath::of(v(n, t));
        for f in fields {
            q = q.field(*f);
        }
        q.into()
    }

    /// Oracle matching the CMP spec's field types.
    fn cmp_oracle(owner: &TypeName, field: &str) -> Option<TypeName> {
        match (owner.as_str(), field) {
            ("Iterator", "set") => Some(TypeName::new("Set")),
            ("Iterator", "defVer") | ("Set", "ver") => Some(TypeName::new("Version")),
            _ => None,
        }
    }

    #[test]
    fn transitivity_detected() {
        // a == b && b == c  implies  a == c  (pure equality reasoning)
        let f = Formula::and([
            Formula::eq(p("a", "Set", &[]), p("b", "Set", &[])),
            Formula::eq(p("b", "Set", &[]), p("c", "Set", &[])),
        ]);
        let g = Formula::eq(p("a", "Set", &[]), p("c", "Set", &[]));
        assert!(implies(&(), &Formula::True, &f, &g));
        assert!(!implies(&(), &Formula::True, &g, &f));
    }

    #[test]
    fn congruence_detected() {
        // i.set == j.set  implies  i.set.ver == j.set.ver
        let f = Formula::eq(p("i", "Iterator", &["set"]), p("j", "Iterator", &["set"]));
        let g =
            Formula::eq(p("i", "Iterator", &["set", "ver"]), p("j", "Iterator", &["set", "ver"]));
        assert!(implies(&cmp_oracle, &Formula::True, &f, &g));
        assert!(!implies(&cmp_oracle, &Formula::True, &g, &f));
    }

    #[test]
    fn typing_prunes_models() {
        // with types, a Set can never equal a Version
        let f = Formula::eq(p("v", "Set", &[]), p("i", "Iterator", &["defVer"]));
        assert!(!satisfiable(&cmp_oracle, &Formula::True, &f));
        // without types it is satisfiable
        assert!(satisfiable(&(), &Formula::True, &f));
    }

    #[test]
    fn variable_identity_vs_value_equality() {
        // distinct variables may denote the same object
        let f = Formula::eq(p("v", "Set", &[]), p("w", "Set", &[]));
        assert!(satisfiable(&(), &Formula::True, &f));
        assert!(satisfiable(&(), &Formula::True, &Formula::not(f)));
    }

    #[test]
    fn assumption_restricts_models() {
        // the paper's remove() derivation step: under the precondition
        // ¬stale(j), i.e. j.defVer == j.set.ver, the exact WP
        //   (i != j && i.set == j.set) || (i != j && i.set != j.set && stale(i))
        // is equivalent to the simpler  stale(i) || mutx(i, j).
        let stale =
            |x: &str| Formula::ne(p(x, "Iterator", &["defVer"]), p(x, "Iterator", &["set", "ver"]));
        let iset = p("i", "Iterator", &["set"]);
        let jset = p("j", "Iterator", &["set"]);
        let ivar = p("i", "Iterator", &[]);
        let jvar = p("j", "Iterator", &[]);
        let mutx = Formula::and([
            Formula::eq(iset.clone(), jset.clone()),
            Formula::ne(ivar.clone(), jvar.clone()),
        ]);
        let exact_wp = Formula::or([
            Formula::and([
                Formula::ne(ivar.clone(), jvar.clone()),
                Formula::eq(iset.clone(), jset.clone()),
            ]),
            Formula::and([Formula::ne(ivar, jvar), Formula::ne(iset, jset), stale("i")]),
        ]);
        let simplified = Formula::or([stale("i"), mutx]);
        let assumption = Formula::not(stale("j"));
        assert!(equivalent(&cmp_oracle, &assumption, &exact_wp, &simplified));
        // ... but NOT equivalent unconditionally
        assert!(!equivalent(&cmp_oracle, &Formula::True, &exact_wp, &simplified));
    }

    #[test]
    fn model_env_reuse() {
        let f = Formula::eq(p("a", "Set", &[]), p("b", "Set", &[]));
        let g = Formula::eq(p("b", "Set", &[]), p("a", "Set", &[]));
        let env = ModelEnv::new([&f, &g], &());
        assert!(env.model_count() >= 2);
        assert!(env.equivalent_under(&Formula::True, &f, &g));
        assert!(env.satisfiable_under(&Formula::True, &f));
        assert!(env.implies_under(&f, &Formula::True, &g));
    }

    #[test]
    fn alloc_tokens_in_models() {
        use crate::AllocToken;
        let a: Term = AllocToken::new(0, TypeName::new("Version")).into();
        let f = Formula::Eq(a.clone(), a.clone());
        // t == t on tokens evaluates true in every model
        assert!(equivalent(&(), &Formula::True, &f, &Formula::True));
    }
}
