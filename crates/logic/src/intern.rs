//! Global string interning and the id-based vocabulary of the analysis core.
//!
//! Every name that flows through the pipeline — type names, variable names,
//! field names — is interned once into a global [`Interner`] and carried as
//! a copyable [`Symbol`] (a `u32`). Equality and hashing are id-based (one
//! integer compare), which is what the hot paths — congruence closure in
//! [`crate::models`], canonical-abstraction hashing in `canvas-tvla`,
//! predicate-instance keying in `canvas-abstraction` — actually spend their
//! time on. Ordering, by contrast, resolves to the underlying string, so
//! every `Ord`-derived canonical order (literal operand order, DNF conjunct
//! order, model-universe order) is byte-identical to what the string-based
//! representation produced; the golden eval tables depend on that.
//!
//! [`FieldId`], [`MethodId`], and [`PredId`] are thin newtypes over the same
//! machinery giving the distinct vocabularies distinct types: fields and
//! methods are interned names, while predicates (the derivation's predicate
//! families) are dense indices suitable for direct vector addressing.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// The global symbol table. Strings are leaked on first interning so that
/// resolution hands out `&'static str` without holding a lock.
#[derive(Default)]
pub struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::default()))
}

/// Number of distinct symbols interned so far. Dense tables (bitsets,
/// per-symbol caches) can be sized from this.
pub fn interner_len() -> usize {
    global().read().expect("interner lock").strings.len()
}

/// An interned string.
///
/// `Copy`, 4 bytes. `Eq`/`Hash` compare the id; `Ord` compares the resolved
/// strings (see the module docs for why). Dereferences to `str`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        if let Some(&id) = global().read().expect("interner lock").map.get(s) {
            return Symbol(id);
        }
        Symbol(global().write().expect("interner lock").intern(s))
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        global().read().expect("interner lock").strings[self.0 as usize]
    }

    /// The raw id; dense per-symbol tables index with this.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.as_str().to_owned()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.as_str()
    }
}

/// An interned field name (`set`, `ver`, `defVer`, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FieldId(pub Symbol);

impl FieldId {
    pub fn new(name: impl Into<Symbol>) -> FieldId {
        FieldId(name.into())
    }

    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// An interned component-method name (`next`, `remove`, `add`, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MethodId(pub Symbol);

impl MethodId {
    pub fn new(name: impl Into<Symbol>) -> MethodId {
        MethodId(name.into())
    }

    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl PartialEq<str> for MethodId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for MethodId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// A dense predicate-family index assigned by the derivation fixpoint.
///
/// Unlike [`Symbol`], ids are ordinal (discovery order), so `Ord` is the
/// numeric order — family 0 is the spec's first derived predicate, and the
/// boolean-program and dataflow layers address their dense tables with
/// [`PredId::index`] directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(u32);

impl PredId {
    pub const fn new(id: u32) -> PredId {
        PredId(id)
    }

    pub fn from_index(index: usize) -> PredId {
        PredId(u32::try_from(index).expect("predicate index overflow"))
    }

    /// The dense index for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips_and_dedups() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn ord_is_string_order() {
        let b = Symbol::intern("b-second");
        let a = Symbol::intern("a-first");
        // interning order (b before a) must not leak into the ordering
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn string_comparisons() {
        let s = Symbol::intern("set");
        assert_eq!(s, "set");
        assert_eq!("set", s);
        assert_eq!(s, String::from("set"));
        assert!(s.starts_with("se")); // via Deref<Target = str>
    }

    #[test]
    fn pred_ids_are_dense() {
        let p = PredId::from_index(3);
        assert_eq!(p.index(), 3);
        assert!(PredId::new(0) < PredId::new(1));
    }
}
