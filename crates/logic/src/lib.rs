//! Quantifier-free first-order logic over *access paths*.
//!
//! This crate is the logical substrate shared by the whole `canvas`
//! workspace. It provides:
//!
//! * [`TypeName`], [`Var`], [`AccessPath`], [`Term`] — the term language used
//!   by EASL specifications and by the weakest-precondition engine. Terms are
//!   either access paths (`i.set.ver`) rooted at typed logical variables, or
//!   *allocation tokens* denoting values produced by `new` during a symbolic
//!   computation.
//! * [`Formula`] — quantifier-free boolean combinations of term equalities,
//!   with negation-normal-form and disjunctive-normal-form conversion
//!   ([`Dnf`]) plus aggressive simplification.
//! * [`Kleene`] — three-valued truth values with Kleene semantics, used by the
//!   TVLA-style engine in `canvas-tvla`.
//! * [`models`] — a small-model enumerator for the EUF fragment the paper's
//!   derivation procedure lives in, giving decidable equivalence, implication
//!   and satisfiability checks (used to recognise when a newly generated
//!   instrumentation predicate is equivalent to an existing one, §4.5 of the
//!   paper).
//!
//! # Example
//!
//! ```
//! use canvas_logic::{AccessPath, Formula, TypeName, Var};
//!
//! let iter = TypeName::new("Iterator");
//! let i = Var::new("i", iter);
//! // stale(i)  ≡  i.defVer != i.set.ver
//! let stale = Formula::ne(
//!     AccessPath::of(i.clone()).field("defVer"),
//!     AccessPath::of(i).field("set").field("ver"),
//! );
//! assert_eq!(stale.to_string(), "i.defVer != i.set.ver");
//! ```

mod formula;
pub mod intern;
mod kleene;
pub mod models;
mod path;
mod term;

pub use formula::{Dnf, Formula, Literal};
pub use intern::{interner_len, FieldId, Interner, MethodId, PredId, Symbol};
pub use kleene::Kleene;
pub use models::{ModelEnv, TypeOracle};
pub use path::{AccessPath, TypeName, Var};
pub use term::{AllocToken, Term};
