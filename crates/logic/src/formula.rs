//! Quantifier-free formulas over term equalities, with DNF normalization.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Term, Var};

/// A quantifier-free formula over equalities of [`Term`]s.
///
/// This is the assertion language of EASL `requires` clauses and the working
/// representation of the weakest-precondition engine. Conjunction and
/// disjunction are n-ary to keep normalization cheap and displays readable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// Term equality `t1 == t2`.
    Eq(Term, Term),
    /// Term disequality `t1 != t2`.
    Ne(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction; `And(vec![])` is `true`.
    And(Vec<Formula>),
    /// N-ary disjunction; `Or(vec![])` is `false`.
    Or(Vec<Formula>),
}

impl Formula {
    /// Builds `lhs == rhs`.
    pub fn eq(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Formula {
        Formula::Eq(lhs.into(), rhs.into())
    }

    /// Builds `lhs != rhs`.
    pub fn ne(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Formula {
        Formula::Ne(lhs.into(), rhs.into())
    }

    /// Builds the conjunction of `fs`, flattening nested conjunctions and
    /// folding constants.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Builds the disjunction of `fs`, flattening nested disjunctions and
    /// folding constants.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Builds the negation of `f`, folding constants and double negation.
    #[allow(clippy::should_implement_trait)] // constructor-style, like `and`/`or`
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Eq(a, b) => Formula::Ne(a, b),
            Formula::Ne(a, b) => Formula::Eq(a, b),
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// `cond ? then : els` encoded as `(cond ∧ then) ∨ (¬cond ∧ els)`.
    ///
    /// This is the shape weakest preconditions of conditional heap effects
    /// take ("if the receiver aliases the path, the value is the new one").
    pub fn ite(cond: Formula, then: Formula, els: Formula) -> Formula {
        Formula::or([Formula::and([cond.clone(), then]), Formula::and([Formula::not(cond), els])])
    }

    /// All free variables (base variables of every path occurring anywhere).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit_terms(&mut |t| {
            if let Term::Path(p) = t {
                out.insert(*p.base());
            }
        });
        out
    }

    /// Visits every term in the formula.
    pub fn visit_terms(&self, f: &mut impl FnMut(&Term)) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Eq(a, b) | Formula::Ne(a, b) => {
                f(a);
                f(b);
            }
            Formula::Not(inner) => inner.visit_terms(f),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    g.visit_terms(f);
                }
            }
        }
    }

    /// Rewrites every term in the formula.
    #[must_use]
    pub fn map_terms(&self, f: &mut impl FnMut(&Term) -> Term) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Eq(a, b) => Formula::Eq(f(a), f(b)),
            Formula::Ne(a, b) => Formula::Ne(f(a), f(b)),
            Formula::Not(inner) => Formula::not(inner.map_terms(f)),
            Formula::And(fs) => Formula::and(fs.iter().map(|g| g.map_terms(f))),
            Formula::Or(fs) => Formula::or(fs.iter().map(|g| g.map_terms(f))),
        }
    }

    /// Renames free variables according to `f` (applied to path bases).
    #[must_use]
    pub fn rename_vars(&self, f: &impl Fn(&Var) -> Var) -> Formula {
        self.map_terms(&mut |t| match t {
            Term::Path(p) => {
                let mut q = p.clone();
                let new_base = f(p.base());
                if &new_base != p.base() {
                    q = crate::AccessPath::of(new_base);
                    for fld in p.fields() {
                        q = q.field(*fld);
                    }
                }
                Term::Path(q)
            }
            Term::Alloc(a) => Term::Alloc(a.clone()),
        })
    }

    /// Evaluates the formula under an equality oracle for terms.
    ///
    /// The oracle must be an equivalence relation for the result to be
    /// meaningful; this is used by the model enumerator and by tests.
    pub fn eval(&self, eq: &impl Fn(&Term, &Term) -> bool) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Eq(a, b) => eq(a, b),
            Formula::Ne(a, b) => !eq(a, b),
            Formula::Not(inner) => !inner.eval(eq),
            Formula::And(fs) => fs.iter().all(|f| f.eval(eq)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(eq)),
        }
    }

    /// Converts to disjunctive normal form with literal-level simplification.
    pub fn to_dnf(&self) -> Dnf {
        Dnf::from_formula(self)
    }

    /// [`Formula::to_dnf`] through a thread-local memo table.
    ///
    /// The derivation fixpoint canonicalises the same weakest-precondition
    /// formulas over and over (once per candidate binding per worklist
    /// round); the distribution step is exponential in the worst case, so
    /// the repeat conversions dominate. The cache is bounded: it is cleared
    /// wholesale when it exceeds a few thousand entries, which no single
    /// derivation comes near.
    pub fn to_dnf_cached(&self) -> Dnf {
        use std::cell::RefCell;
        use std::collections::HashMap;
        const CACHE_CAP: usize = 8192;
        // thread-local cache ⇒ hit ratios depend on which thread ran which
        // job, so the counters are recorded but never baseline-gated
        static DNF_CACHE_HITS: canvas_telemetry::Counter =
            canvas_telemetry::Counter::non_deterministic("logic.dnf_cache_hits");
        static DNF_CACHE_MISSES: canvas_telemetry::Counter =
            canvas_telemetry::Counter::non_deterministic("logic.dnf_cache_misses");
        thread_local! {
            static CACHE: RefCell<HashMap<Formula, Dnf>> = RefCell::new(HashMap::new());
        }
        CACHE.with(|cache| {
            if let Some(d) = cache.borrow().get(self) {
                DNF_CACHE_HITS.incr();
                return d.clone();
            }
            DNF_CACHE_MISSES.incr();
            let d = Dnf::from_formula(self);
            let mut cache = cache.borrow_mut();
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(self.clone(), d.clone());
            d
        })
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(g: &Formula) -> u8 {
            match g {
                Formula::Or(_) => 0,
                Formula::And(_) => 1,
                _ => 2,
            }
        }
        fn show(g: &Formula, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let p = prec(g);
            let paren = p < parent;
            if paren {
                f.write_str("(")?;
            }
            match g {
                Formula::True => f.write_str("true")?,
                Formula::False => f.write_str("false")?,
                Formula::Eq(a, b) => write!(f, "{a} == {b}")?,
                Formula::Ne(a, b) => write!(f, "{a} != {b}")?,
                Formula::Not(inner) => {
                    f.write_str("!")?;
                    show(inner, 2, f)?;
                }
                Formula::And(fs) => {
                    for (k, g2) in fs.iter().enumerate() {
                        if k > 0 {
                            f.write_str(" && ")?;
                        }
                        show(g2, 2, f)?;
                    }
                }
                Formula::Or(fs) => {
                    for (k, g2) in fs.iter().enumerate() {
                        if k > 0 {
                            f.write_str(" || ")?;
                        }
                        show(g2, 1, f)?;
                    }
                }
            }
            if paren {
                f.write_str(")")?;
            }
            Ok(())
        }
        show(self, 0, f)
    }
}

/// A literal: a possibly negated equality with canonically ordered operands.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Literal {
    positive: bool,
    lhs: Term,
    rhs: Term,
}

impl Literal {
    /// Creates a literal, normalizing operand order. Returns `Ok(lit)` or the
    /// constant value if the literal folds (e.g. `t == t`, freshness).
    ///
    /// Folding rules (see [`crate::AllocToken`] for the freshness semantics):
    /// `t == t → true`; `alloc(a) == alloc(b) → a == b`; an allocation token
    /// never equals a path.
    pub fn new(positive: bool, lhs: Term, rhs: Term) -> Result<Literal, bool> {
        let truth = match (&lhs, &rhs) {
            _ if lhs == rhs => Some(true),
            (Term::Alloc(a), Term::Alloc(b)) => Some(a == b),
            (Term::Alloc(_), Term::Path(_)) | (Term::Path(_), Term::Alloc(_)) => Some(false),
            _ => None,
        };
        if let Some(t) = truth {
            return Err(if positive { t } else { !t });
        }
        let (lhs, rhs) = if lhs <= rhs { (lhs, rhs) } else { (rhs, lhs) };
        Ok(Literal { positive, lhs, rhs })
    }

    /// Whether the literal is an equality (not a disequality).
    pub fn is_positive(&self) -> bool {
        self.positive
    }

    /// Left operand (canonically the smaller term).
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }

    /// Right operand.
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(&self) -> Literal {
        Literal { positive: !self.positive, lhs: self.lhs.clone(), rhs: self.rhs.clone() }
    }

    /// Converts back to a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        if self.positive {
            Formula::Eq(self.lhs.clone(), self.rhs.clone())
        } else {
            Formula::Ne(self.lhs.clone(), self.rhs.clone())
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.positive { "==" } else { "!=" };
        write!(f, "{} {op} {}", self.lhs, self.rhs)
    }
}

/// A formula in disjunctive normal form: a set of conjunctions of literals.
///
/// The empty disjunction is `false`; an empty conjunction is `true`.
/// Syntactic simplifications applied: literal folding, duplicate and
/// complementary literal elimination within a conjunct, duplicate and
/// subsumed conjunct elimination.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    conjuncts: Vec<BTreeSet<Literal>>,
}

impl Dnf {
    /// The constant `false`.
    pub fn fals() -> Dnf {
        Dnf { conjuncts: Vec::new() }
    }

    /// The constant `true`.
    pub fn tru() -> Dnf {
        Dnf { conjuncts: vec![BTreeSet::new()] }
    }

    /// Converts an arbitrary formula.
    pub fn from_formula(f: &Formula) -> Dnf {
        let nnf = nnf(f, false);
        let raw = distribute(&nnf);
        let mut out = Dnf { conjuncts: Vec::new() };
        'conj: for c in raw {
            let mut set: BTreeSet<Literal> = BTreeSet::new();
            for (pos, a, b) in c {
                match Literal::new(pos, a, b) {
                    Ok(l) => {
                        if set.contains(&l.negated()) {
                            continue 'conj; // contradictory conjunct
                        }
                        set.insert(l);
                    }
                    Err(true) => {}
                    Err(false) => continue 'conj,
                }
            }
            out.push_conjunct(set);
        }
        out
    }

    /// Adds a conjunct, maintaining subsumption-freedom
    /// (a conjunct with a subset of literals implies supersets are redundant).
    pub fn push_conjunct(&mut self, c: BTreeSet<Literal>) {
        if self.conjuncts.iter().any(|existing| existing.is_subset(&c)) {
            return;
        }
        self.conjuncts.retain(|existing| !c.is_subset(existing));
        self.conjuncts.push(c);
    }

    /// The conjuncts of the DNF.
    pub fn conjuncts(&self) -> &[BTreeSet<Literal>] {
        &self.conjuncts
    }

    /// Whether the DNF is the constant `false`.
    pub fn is_false(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Whether the DNF is the constant `true`.
    pub fn is_true(&self) -> bool {
        self.conjuncts.iter().any(BTreeSet::is_empty)
    }

    /// Converts back to a formula (canonically ordered).
    pub fn to_formula(&self) -> Formula {
        let mut cs: Vec<Vec<&Literal>> =
            self.conjuncts.iter().map(|c| c.iter().collect()).collect();
        cs.sort();
        Formula::or(cs.into_iter().map(|c| Formula::and(c.into_iter().map(Literal::to_formula))))
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_formula().fmt(f)
    }
}

/// Negation normal form, with polarity pushed onto atoms.
fn nnf(f: &Formula, negate: bool) -> Formula {
    match f {
        Formula::True => {
            if negate {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if negate {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Eq(a, b) => {
            if negate {
                Formula::Ne(a.clone(), b.clone())
            } else {
                Formula::Eq(a.clone(), b.clone())
            }
        }
        Formula::Ne(a, b) => {
            if negate {
                Formula::Eq(a.clone(), b.clone())
            } else {
                Formula::Ne(a.clone(), b.clone())
            }
        }
        Formula::Not(inner) => nnf(inner, !negate),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf(g, negate));
            if negate {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf(g, negate));
            if negate {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
    }
}

type RawConj = Vec<(bool, Term, Term)>;

/// Distributes an NNF formula into a list of raw conjuncts.
fn distribute(f: &Formula) -> Vec<RawConj> {
    match f {
        Formula::True => vec![Vec::new()],
        Formula::False => Vec::new(),
        Formula::Eq(a, b) => vec![vec![(true, a.clone(), b.clone())]],
        Formula::Ne(a, b) => vec![vec![(false, a.clone(), b.clone())]],
        Formula::Not(_) => unreachable!("input is in NNF"),
        Formula::Or(fs) => fs.iter().flat_map(distribute).collect(),
        Formula::And(fs) => {
            let mut acc: Vec<RawConj> = vec![Vec::new()];
            for g in fs {
                let gs = distribute(g);
                let mut next = Vec::with_capacity(acc.len() * gs.len());
                for a in &acc {
                    for b in &gs {
                        let mut c = a.clone();
                        c.extend(b.iter().cloned());
                        next.push(c);
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPath, AllocToken, TypeName, Var};

    fn set(n: &str) -> Term {
        AccessPath::of(Var::new(n, TypeName::new("Set"))).into()
    }

    fn ver(base: &str) -> Term {
        AccessPath::of(Var::new(base, TypeName::new("Iterator"))).field("set").field("ver").into()
    }

    #[test]
    fn constructors_fold_constants() {
        assert_eq!(Formula::and([Formula::True, Formula::True]), Formula::True);
        assert_eq!(Formula::and([Formula::False, Formula::eq(set("v"), set("w"))]), Formula::False);
        assert_eq!(Formula::or([Formula::False, Formula::False]), Formula::False);
        assert_eq!(Formula::or([Formula::True, Formula::eq(set("v"), set("w"))]), Formula::True);
        assert_eq!(
            Formula::not(Formula::not(Formula::eq(set("v"), set("w")))),
            Formula::eq(set("v"), set("w"))
        );
    }

    #[test]
    fn literal_folding() {
        assert_eq!(Literal::new(true, set("v"), set("v")), Err(true));
        assert_eq!(Literal::new(false, set("v"), set("v")), Err(false));
        let a: Term = AllocToken::new(0, TypeName::new("Version")).into();
        let b: Term = AllocToken::new(1, TypeName::new("Version")).into();
        assert_eq!(Literal::new(true, a.clone(), b.clone()), Err(false));
        assert_eq!(Literal::new(false, a.clone(), b), Err(true));
        // freshness: a token never equals a pre-existing path value
        assert_eq!(Literal::new(true, a.clone(), ver("i")), Err(false));
        assert_eq!(Literal::new(false, ver("i"), a), Err(true));
    }

    #[test]
    fn literal_orders_operands() {
        let l1 = Literal::new(true, set("w"), set("v")).unwrap();
        let l2 = Literal::new(true, set("v"), set("w")).unwrap();
        assert_eq!(l1, l2);
    }

    #[test]
    fn dnf_basic() {
        // (a == b) && (c == d || a != b)
        let f = Formula::and([
            Formula::eq(set("a"), set("b")),
            Formula::or([Formula::eq(set("c"), set("d")), Formula::ne(set("a"), set("b"))]),
        ]);
        let d = f.to_dnf();
        // the contradictory conjunct a==b && a!=b is dropped
        assert_eq!(d.conjuncts().len(), 1);
        assert_eq!(d.to_formula().to_string(), "a == b && c == d");
    }

    #[test]
    fn dnf_subsumption() {
        // (a == b) || (a == b && c == d)  →  a == b
        let f = Formula::or([
            Formula::eq(set("a"), set("b")),
            Formula::and([Formula::eq(set("a"), set("b")), Formula::eq(set("c"), set("d"))]),
        ]);
        let d = f.to_dnf();
        assert_eq!(d.conjuncts().len(), 1);
        assert_eq!(d.to_formula().to_string(), "a == b");
    }

    #[test]
    fn dnf_constants() {
        assert!(Formula::True.to_dnf().is_true());
        assert!(Formula::False.to_dnf().is_false());
        assert!(Formula::ne(set("v"), set("v")).to_dnf().is_false());
        assert!(Formula::eq(set("v"), set("v")).to_dnf().is_true());
    }

    #[test]
    fn ite_shape() {
        let c = Formula::eq(set("v"), set("w"));
        let f = Formula::ite(c, Formula::True, Formula::False);
        let d = f.to_dnf();
        assert_eq!(d.to_formula().to_string(), "v == w");
    }

    #[test]
    fn negation_through_dnf() {
        let f = Formula::not(Formula::and([
            Formula::eq(set("a"), set("b")),
            Formula::eq(set("c"), set("d")),
        ]));
        let d = f.to_dnf();
        assert_eq!(d.conjuncts().len(), 2);
    }

    #[test]
    fn free_vars_and_rename() {
        let f = Formula::ne(ver("i"), ver("j"));
        let vars: Vec<String> = f.free_vars().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(vars, ["i", "j"]);
        let i = Var::new("i", TypeName::new("Iterator"));
        let k = Var::new("k", TypeName::new("Iterator"));
        let g = f.rename_vars(&|v| if *v == i { k } else { *v });
        assert_eq!(g.to_string(), "k.set.ver != j.set.ver");
    }

    #[test]
    fn display_precedence() {
        let f = Formula::or([
            Formula::and([Formula::eq(set("a"), set("b")), Formula::eq(set("c"), set("d"))]),
            Formula::eq(set("e"), set("f")),
        ]);
        assert_eq!(f.to_string(), "a == b && c == d || e == f");
        let g = Formula::and([
            Formula::or([Formula::eq(set("a"), set("b")), Formula::eq(set("c"), set("d"))]),
            Formula::eq(set("e"), set("f")),
        ]);
        assert_eq!(g.to_string(), "(a == b || c == d) && e == f");
    }
}
