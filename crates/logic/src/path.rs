//! Typed logical variables and access paths, interned.
//!
//! All names are [`Symbol`]s: equality/hashing is id-based, ordering is the
//! underlying string order (so canonical orders match the historical
//! string-keyed representation byte-for-byte — see [`crate::intern`]).

use std::fmt;

use crate::intern::Symbol;

/// The name of a component (or client) type, e.g. `Set` or `Iterator`.
///
/// `TypeName` is a cheap, comparable identifier; the structure of a type
/// (its fields and methods) lives in the EASL specification, not here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TypeName(Symbol);

impl TypeName {
    /// Creates a type name.
    pub fn new(name: impl Into<Symbol>) -> Self {
        TypeName(name.into())
    }

    /// The textual name.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The interned name.
    pub fn symbol(&self) -> Symbol {
        self.0
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for TypeName {
    fn from(s: &str) -> Self {
        TypeName::new(s)
    }
}

/// A typed logical variable.
///
/// During abstraction derivation these stand both for the free variables of
/// candidate instrumentation predicates (the paper's `i`, `j`, `v`, `w`) and
/// for the operands of a component method call (`receiver`, parameters,
/// result). During client analysis they are instantiated with actual client
/// program variables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var {
    name: Symbol,
    ty: TypeName,
}

impl Var {
    /// Creates a variable with the given name and type.
    pub fn new(name: impl Into<Symbol>, ty: TypeName) -> Self {
        Var { name: name.into(), ty }
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The variable's interned name.
    pub fn symbol(&self) -> Symbol {
        self.name
    }

    /// The variable's declared type.
    pub fn ty(&self) -> &TypeName {
        &self.ty
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An access path: a variable followed by zero or more field selections,
/// e.g. `i.set.ver`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AccessPath {
    base: Var,
    fields: Vec<Symbol>,
}

impl AccessPath {
    /// The path consisting of just a variable.
    pub fn of(base: Var) -> Self {
        AccessPath { base, fields: Vec::new() }
    }

    /// Extends the path with a field selection (builder style).
    #[must_use]
    pub fn field(mut self, name: impl Into<Symbol>) -> Self {
        self.fields.push(name.into());
        self
    }

    /// The root variable of the path.
    pub fn base(&self) -> &Var {
        &self.base
    }

    /// The field selections, outermost last.
    pub fn fields(&self) -> &[Symbol] {
        &self.fields
    }

    /// Number of field selections.
    pub fn depth(&self) -> usize {
        self.fields.len()
    }

    /// Whether this path is exactly a variable (no field selections).
    pub fn is_var(&self) -> bool {
        self.fields.is_empty()
    }

    /// The immediate prefix of this path (`i.set` for `i.set.ver`), or
    /// `None` if the path is a bare variable.
    pub fn parent(&self) -> Option<AccessPath> {
        if self.fields.is_empty() {
            None
        } else {
            Some(AccessPath {
                base: self.base,
                fields: self.fields[..self.fields.len() - 1].to_vec(),
            })
        }
    }

    /// The last field of the path, if any.
    pub fn last_field(&self) -> Option<&'static str> {
        self.fields.last().map(|s| s.as_str())
    }

    /// All prefixes of the path, from the bare variable up to and including
    /// the path itself.
    pub fn prefixes(&self) -> Vec<AccessPath> {
        let mut out = Vec::with_capacity(self.fields.len() + 1);
        for k in 0..=self.fields.len() {
            out.push(AccessPath { base: self.base, fields: self.fields[..k].to_vec() });
        }
        out
    }

    /// Whether `prefix` is a (non-strict) prefix of this path.
    pub fn has_prefix(&self, prefix: &AccessPath) -> bool {
        self.base == prefix.base
            && self.fields.len() >= prefix.fields.len()
            && self.fields[..prefix.fields.len()] == prefix.fields[..]
    }

    /// Replaces the prefix `from` of this path by appending the remaining
    /// fields onto `to`. Returns `None` if `from` is not a prefix.
    pub fn rebase(&self, from: &AccessPath, to: &AccessPath) -> Option<AccessPath> {
        if !self.has_prefix(from) {
            return None;
        }
        let mut out = to.clone();
        out.fields.extend(self.fields[from.fields.len()..].iter().copied());
        Some(out)
    }

    /// Renames the base variable if it equals `from`.
    pub fn rename_base(&self, from: &Var, to: &Var) -> AccessPath {
        if &self.base == from {
            AccessPath { base: *to, fields: self.fields.clone() }
        } else {
            self.clone()
        }
    }
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for fld in &self.fields {
            write!(f, ".{fld}")?;
        }
        Ok(())
    }
}

impl From<Var> for AccessPath {
    fn from(v: Var) -> Self {
        AccessPath::of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv() -> Var {
        Var::new("i", TypeName::new("Iterator"))
    }

    #[test]
    fn display_path() {
        let p = AccessPath::of(iv()).field("set").field("ver");
        assert_eq!(p.to_string(), "i.set.ver");
        assert_eq!(p.depth(), 2);
        assert!(!p.is_var());
    }

    #[test]
    fn parent_and_prefixes() {
        let p = AccessPath::of(iv()).field("set").field("ver");
        assert_eq!(p.parent().unwrap().to_string(), "i.set");
        let pre: Vec<String> = p.prefixes().iter().map(|q| q.to_string()).collect();
        assert_eq!(pre, ["i", "i.set", "i.set.ver"]);
        assert!(AccessPath::of(iv()).parent().is_none());
    }

    #[test]
    fn prefix_and_rebase() {
        let p = AccessPath::of(iv()).field("set").field("ver");
        let pre = AccessPath::of(iv()).field("set");
        assert!(p.has_prefix(&pre));
        assert!(p.has_prefix(&AccessPath::of(iv())));
        assert!(!pre.has_prefix(&p));
        let w = AccessPath::of(Var::new("w", TypeName::new("Set")));
        assert_eq!(p.rebase(&pre, &w).unwrap().to_string(), "w.ver");
        let other = AccessPath::of(Var::new("j", TypeName::new("Iterator")));
        assert!(p.rebase(&other, &w).is_none());
    }

    #[test]
    fn rename_base() {
        let p = AccessPath::of(iv()).field("set");
        let j = Var::new("j", TypeName::new("Iterator"));
        assert_eq!(p.rename_base(&iv(), &j).to_string(), "j.set");
        assert_eq!(p.rename_base(&j, &iv()).to_string(), "i.set");
    }

    #[test]
    fn ordering_matches_string_order() {
        // Var order is (name, ty) by string; AccessPath extends with fields.
        let a = Var::new("a", TypeName::new("Z"));
        let b = Var::new("b", TypeName::new("A"));
        assert!(a < b);
        let p1 = AccessPath::of(iv()).field("defVer");
        let p2 = AccessPath::of(iv()).field("set");
        let p3 = AccessPath::of(iv()).field("set").field("ver");
        assert!(p1 < p2 && p2 < p3);
    }
}
