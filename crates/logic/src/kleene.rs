//! Kleene three-valued truth values.

use std::fmt;

/// A truth value in Kleene's strong three-valued logic.
///
/// `Unknown` (written `1/2` in the paper) means "may be either". The
/// *information order* has `True ⊑ Unknown` and `False ⊑ Unknown`; the join
/// of `True` and `False` is `Unknown`. Used throughout the TVLA-style engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub enum Kleene {
    /// Definitely false (`0`).
    #[default]
    False,
    /// May be true or false (`1/2`).
    Unknown,
    /// Definitely true (`1`).
    True,
}

impl Kleene {
    /// Converts a two-valued boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Kleene::True
        } else {
            Kleene::False
        }
    }

    /// Logical conjunction (minimum in the truth order F < U < T).
    #[must_use]
    pub fn and(self, other: Kleene) -> Kleene {
        self.min(other)
    }

    /// Logical disjunction (maximum in the truth order F < U < T).
    #[must_use]
    pub fn or(self, other: Kleene) -> Kleene {
        self.max(other)
    }

    /// Logical negation; `Unknown` is its own negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // named like the other connectives
    pub fn not(self) -> Kleene {
        match self {
            Kleene::False => Kleene::True,
            Kleene::Unknown => Kleene::Unknown,
            Kleene::True => Kleene::False,
        }
    }

    /// Join in the *information order*: definite values joined with a
    /// conflicting definite value become `Unknown`.
    #[must_use]
    pub fn join(self, other: Kleene) -> Kleene {
        if self == other {
            self
        } else {
            Kleene::Unknown
        }
    }

    /// Whether `self` is at least as precise as `other` in the information
    /// order (i.e. `other = Unknown` or the values agree).
    pub fn refines(self, other: Kleene) -> bool {
        self == other || other == Kleene::Unknown
    }

    /// Whether the value is definite (not `Unknown`).
    pub fn is_definite(self) -> bool {
        self != Kleene::Unknown
    }

    /// `Some(b)` for a definite value, `None` for `Unknown`.
    pub fn definite(self) -> Option<bool> {
        match self {
            Kleene::False => Some(false),
            Kleene::Unknown => None,
            Kleene::True => Some(true),
        }
    }

    /// Whether the value may be true (`True` or `Unknown`).
    pub fn may_be_true(self) -> bool {
        self != Kleene::False
    }

    /// Whether the value may be false (`False` or `Unknown`).
    pub fn may_be_false(self) -> bool {
        self != Kleene::True
    }
}

impl fmt::Display for Kleene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kleene::False => f.write_str("0"),
            Kleene::Unknown => f.write_str("1/2"),
            Kleene::True => f.write_str("1"),
        }
    }
}

impl From<bool> for Kleene {
    fn from(b: bool) -> Self {
        Kleene::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::Kleene::{self, False, True, Unknown};

    const ALL: [Kleene; 3] = [False, Unknown, True];

    #[test]
    fn truth_tables() {
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn join_and_refines() {
        assert_eq!(True.join(False), Unknown);
        assert_eq!(True.join(True), True);
        for v in ALL {
            assert!(v.refines(Unknown));
            assert!(v.refines(v));
        }
        assert!(!True.refines(False));
        assert!(!Unknown.refines(True));
    }

    #[test]
    fn de_morgan() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn definiteness() {
        assert_eq!(True.definite(), Some(true));
        assert_eq!(Unknown.definite(), None);
        assert!(Unknown.may_be_true());
        assert!(Unknown.may_be_false());
        assert!(!False.may_be_true());
        assert!(!True.may_be_false());
    }

    #[test]
    fn kleene_and_or_are_monotone_in_information_order() {
        // if a' refines a and b' refines b then (a' op b') refines (a op b)
        for a in ALL {
            for b in ALL {
                for ap in ALL {
                    for bp in ALL {
                        if ap.refines(a) && bp.refines(b) {
                            assert!(ap.and(bp).refines(a.and(b)));
                            assert!(ap.or(bp).refines(a.or(b)));
                        }
                    }
                }
            }
        }
    }
}
