//! Property-based tests for formula normalization and the model enumerator.

use canvas_logic::{models, AccessPath, Formula, Term, TypeName, Var};
use proptest::prelude::*;

/// A small pool of terms over two types with one field each, so that
/// congruence constraints actually bite.
fn term_pool() -> Vec<Term> {
    let set = TypeName::new("S");
    let iter = TypeName::new("I");
    let mut out: Vec<Term> = Vec::new();
    for n in ["a", "b"] {
        let v = Var::new(n, set);
        out.push(AccessPath::of(v).into());
        out.push(AccessPath::of(v).field("f").into());
    }
    for n in ["i", "j"] {
        let v = Var::new(n, iter);
        out.push(AccessPath::of(v).into());
        out.push(AccessPath::of(v).field("g").into());
    }
    out
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    let pool = term_pool();
    let n = pool.len();
    (0..n, 0..n, any::<bool>()).prop_map(move |(a, b, pos)| {
        if pos {
            Formula::Eq(pool[a].clone(), pool[b].clone())
        } else {
            Formula::Ne(pool[a].clone(), pool[b].clone())
        }
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![Just(Formula::True), Just(Formula::False), arb_atom(),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::and),
            prop::collection::vec(inner, 1..3).prop_map(Formula::or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DNF conversion preserves semantics in every candidate model.
    #[test]
    fn dnf_preserves_semantics(f in arb_formula()) {
        let d = f.to_dnf().to_formula();
        prop_assert!(models::equivalent(&(), &Formula::True, &f, &d),
            "formula {f} not equivalent to its DNF {d}");
    }

    /// DNF conversion is idempotent on the canonical form.
    #[test]
    fn dnf_idempotent(f in arb_formula()) {
        let once = f.to_dnf().to_formula();
        let twice = once.to_dnf().to_formula();
        prop_assert_eq!(once, twice);
    }

    /// Double negation is semantically invisible.
    #[test]
    fn double_negation(f in arb_formula()) {
        let g = Formula::not(Formula::not(f.clone()));
        prop_assert!(models::equivalent(&(), &Formula::True, &f, &g));
    }

    /// De Morgan: ¬(f ∧ g) ≡ ¬f ∨ ¬g in all models.
    #[test]
    fn de_morgan(f in arb_formula(), g in arb_formula()) {
        let lhs = Formula::not(Formula::and([f.clone(), g.clone()]));
        let rhs = Formula::or([Formula::not(f), Formula::not(g)]);
        prop_assert!(models::equivalent(&(), &Formula::True, &lhs, &rhs));
    }

    /// Implication is reflexive and respects conjunction-weakening.
    #[test]
    fn implication_sanity(f in arb_formula(), g in arb_formula()) {
        prop_assert!(models::implies(&(), &Formula::True, &f, &f));
        let conj = Formula::and([f.clone(), g.clone()]);
        prop_assert!(models::implies(&(), &Formula::True, &conj, &f));
        prop_assert!(models::implies(&(), &Formula::True, &f, &Formula::or([f.clone(), g])));
    }

    /// An unsatisfiable formula implies everything; DNF of it is false or
    /// at least evaluates false in all models.
    #[test]
    fn contradiction_implies_all(f in arb_formula(), g in arb_formula()) {
        let contra = Formula::and([f.clone(), Formula::not(f)]);
        prop_assert!(models::implies(&(), &Formula::True, &contra, &g));
        prop_assert!(!models::satisfiable(&(), &Formula::True, &contra));
    }
}
