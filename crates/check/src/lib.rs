//! Independent certificate checker (the Abstraction-Carrying Code half of
//! the pipeline).
//!
//! The certifier ships its *fixpoint solution* inside a
//! [`Certificate`]; this crate revalidates
//! it without trusting — or even linking — any engine code. The trusted
//! base is exactly:
//!
//! * `canvas-easl` — the component specification,
//! * `canvas-minijava` — the client front-end,
//! * `canvas-abstraction` — the spec-to-boolean-program transform and the
//!   certificate format itself.
//!
//! [`check`] re-transforms every method of the client, verifies the claimed
//! solution is a **post-fixpoint** of the boolean program's transfer
//! functions in a single pass over the edges (no fixpoint iteration), and
//! verifies the claimed violation set is *exactly* the set the solution
//! implies at the `requires` check sites. Anything mutated, truncated, or
//! inconsistent is rejected with a typed [`CheckError`].
//!
//! Soundness argument (DESIGN.md §9): the replayed containment checks plus
//! the entry-seeding checks establish that the claimed solution is a
//! post-fixpoint covering the analysis' entry states, hence a superset of
//! the least fixpoint the engine computes. A superset can only *add*
//! may-be-1 bits, i.e. add potential violations — so a certificate that
//! passes the checker can never hide a violation the engine would report.
//! The violation-set equality check then pins the claim to be exactly the
//! solution's own consequences.

// the checker is the trusted base: code reachable from external input must
// return typed errors, never panic
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashSet;
use std::fmt;

use canvas_abstraction::{
    bp_digest, derived_digest, digest_str, transform_method, BoolProgram, CellSolution,
    CertFormatError, CertViolation, Certificate, Derived, EntryAssumption, Operand, Rhs,
};
use canvas_easl::Spec;
use canvas_minijava::Program;

/// Hard cap on the states materialized while replaying one relational
/// transfer (havoc forking is exponential in the havoc count). Genuine
/// certificates stay far below this — the emitting engine ran under a much
/// smaller state budget — so the cap only stops adversarial certificates
/// from turning the checker into a resource sink.
const REPLAY_STATE_CAP: usize = 1 << 20;

/// Why a certificate was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError {
    /// The serialized form failed to parse or its digest does not match.
    Format(CertFormatError),
    /// The certificate names a different specification.
    WrongSpec {
        /// Specification named by the certificate.
        cert: String,
        /// Specification the checker was given.
        actual: String,
    },
    /// The certificate binds a different derived abstraction.
    WrongDerived,
    /// The certificate binds different client source text.
    WrongSource,
    /// The client source does not parse (with the front-end's message).
    Client(String),
    /// The client has no `main` entry point.
    NoMain,
    /// A `(method, entry)` cell the certifier must produce is absent.
    MissingCell {
        /// Qualified method name.
        method: String,
        /// Entry assumption of the missing cell.
        entry: EntryAssumption,
    },
    /// A duplicate cell, or one for a method the client does not declare.
    ExtraCell {
        /// Qualified method name.
        method: String,
    },
    /// A cell carries no replayable solution (TVLA/heap/interproc engines,
    /// or an inconclusive run) — the verdict cannot be independently
    /// revalidated.
    Uncheckable {
        /// Qualified method name (or `<whole-program>`).
        method: String,
        /// The emitter's stated reason.
        reason: String,
    },
    /// The claimed solution does not fit the re-transformed boolean program
    /// (predicate count, node count, or program digest differ).
    ShapeMismatch {
        /// Qualified method name.
        method: String,
        /// What differed.
        detail: String,
    },
    /// The claimed solution does not cover the analysis' entry states.
    EntryNotCovered {
        /// Qualified method name.
        method: String,
    },
    /// The claimed solution is not a post-fixpoint: some transfer along
    /// `from → to` produces a state the solution does not claim at `to`.
    NotPostFixpoint {
        /// Qualified method name.
        method: String,
        /// Source node of the failing edge.
        from: usize,
        /// Target node of the failing edge.
        to: usize,
    },
    /// The claimed violation list is not exactly what the solution implies.
    ViolationMismatch {
        /// Violations the certificate claims.
        claimed: usize,
        /// Violations the replay implies.
        implied: usize,
    },
    /// Replaying a transfer exceeded the checker's hard state cap.
    ReplayBudget {
        /// Qualified method name.
        method: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Format(e) => write!(f, "{e}"),
            CheckError::WrongSpec { cert, actual } => {
                write!(f, "certificate is for spec {cert:?}, not {actual:?}")
            }
            CheckError::WrongDerived => {
                f.write_str("certificate binds a different derived abstraction")
            }
            CheckError::WrongSource => f.write_str("certificate binds different client source"),
            CheckError::Client(m) => write!(f, "client does not parse: {m}"),
            CheckError::NoMain => f.write_str("client has no main method"),
            CheckError::MissingCell { method, entry } => {
                write!(f, "missing certificate cell for {method} ({entry:?} entry)")
            }
            CheckError::ExtraCell { method } => {
                write!(f, "unexpected or duplicate certificate cell for {method}")
            }
            CheckError::Uncheckable { method, reason } => {
                write!(f, "cell {method} is not replayable: {reason}")
            }
            CheckError::ShapeMismatch { method, detail } => {
                write!(f, "solution for {method} does not fit the boolean program: {detail}")
            }
            CheckError::EntryNotCovered { method } => {
                write!(f, "solution for {method} does not cover the entry states")
            }
            CheckError::NotPostFixpoint { method, from, to } => {
                write!(f, "solution for {method} is not a post-fixpoint at edge {from} -> {to}")
            }
            CheckError::ViolationMismatch { claimed, implied } => write!(
                f,
                "certificate claims {claimed} violation(s) but the solution implies {implied}"
            ),
            CheckError::ReplayBudget { method } => {
                write!(f, "replaying {method} exceeded the checker's state cap")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl From<CertFormatError> for CheckError {
    fn from(e: CertFormatError) -> CheckError {
        CheckError::Format(e)
    }
}

/// Work counters from one successful replay.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CheckStats {
    /// Certificate cells replayed.
    pub cells: usize,
    /// Edges whose containment was verified.
    pub edges_replayed: usize,
    /// Transfer-function applications.
    pub transfers: usize,
}

/// The verdict of a successful revalidation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckOutcome {
    /// `true` iff the replay confirms conformance (no implied violations).
    pub certified: bool,
    /// The confirmed violations (equal to the certificate's claim).
    pub violations: Vec<CertViolation>,
    /// Work counters.
    pub stats: CheckStats,
}

// ---------------------------------------------------------------------------
// Valuations: a minimal word-packed bitset. The checker must not depend on
// canvas-dataflow, so these helpers are local.
// ---------------------------------------------------------------------------

type Val = Vec<u64>;

fn val_new(width: usize) -> Val {
    vec![0; width.div_ceil(64)]
}

fn val_get(v: &Val, i: usize) -> bool {
    v[i / 64] >> (i % 64) & 1 == 1
}

fn val_set(v: &mut Val, i: usize, b: bool) {
    let mask = 1u64 << (i % 64);
    if b {
        v[i / 64] |= mask;
    } else {
        v[i / 64] &= !mask;
    }
}

fn val_subset(a: &Val, b: &Val) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

fn val_from(bits: &[u32], width: usize) -> Option<Val> {
    let mut v = val_new(width);
    for &b in bits {
        if b as usize >= width {
            return None;
        }
        val_set(&mut v, b as usize, true);
    }
    Some(v)
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Replays an independent-attribute (FDS) solution: per-node may-be-1 sets.
///
/// The engine seeds the entry node with the entry-unknown bits and then
/// joins `transfer(S[from])` into `S[to]` along every edge reachable from
/// the entry. The replay verifies exactly that: seeding, then one
/// containment check per reachable edge. Edges whose source the graph
/// cannot reach are skipped — the FDS transfer can *create* bits from an
/// empty state (havoc, constant-true operands), so demanding containment
/// there would reject genuine certificates.
fn replay_may_one(
    bp: &BoolProgram,
    nodes: &[Vec<u32>],
    method: &str,
    stats: &mut CheckStats,
) -> Result<Vec<Val>, CheckError> {
    let width = bp.preds.len();
    let shape = |detail: String| CheckError::ShapeMismatch { method: method.to_string(), detail };
    if nodes.len() != bp.node_count {
        return Err(shape(format!("{} solution rows for {} nodes", nodes.len(), bp.node_count)));
    }
    let states: Vec<Val> = nodes
        .iter()
        .map(|bits| val_from(bits, width))
        .collect::<Option<_>>()
        .ok_or_else(|| shape("predicate index out of range".to_string()))?;

    for &k in &bp.entry_unknown {
        if !val_get(&states[bp.entry], k) {
            return Err(CheckError::EntryNotCovered { method: method.to_string() });
        }
    }

    let mut reached = vec![false; bp.node_count];
    reached[bp.entry] = true;
    let mut work = vec![bp.entry];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); bp.node_count];
    for e in &bp.edges {
        succs[e.from].push(e.to);
    }
    while let Some(n) = work.pop() {
        for &s in &succs[n] {
            if !reached[s] {
                reached[s] = true;
                work.push(s);
            }
        }
    }

    let mut out = val_new(width); // reused across edges: one allocation total
    for e in &bp.edges {
        if !reached[e.from] {
            continue;
        }
        stats.edges_replayed += 1;
        stats.transfers += 1;
        // parallel assignment: operands read the pre-state, strong update
        out.clone_from(&states[e.from]);
        for (dst, rhs) in &e.assigns {
            let bit = match rhs {
                Rhs::Havoc => true,
                Rhs::Disj(ops) => ops.iter().any(|op| match op {
                    Operand::Const(c) => *c,
                    Operand::Var(v) => val_get(&states[e.from], *v),
                }),
            };
            val_set(&mut out, *dst, bit);
        }
        if !val_subset(&out, &states[e.to]) {
            return Err(CheckError::NotPostFixpoint {
                method: method.to_string(),
                from: e.from,
                to: e.to,
            });
        }
    }
    Ok(states)
}

/// Replays a relational solution: per-node sets of full valuations.
///
/// Entry coverage means every assignment of the entry-unknown bits is
/// claimed at the entry node. The transfer forks on havoc assignments
/// exactly like the engine; since the relational transfer maps an empty
/// state set to an empty set, every edge can be checked unconditionally —
/// no reachability gating is needed, and an empty claimed set at a
/// reachable node contradicts its (non-empty) predecessor and is caught by
/// the containment check.
fn replay_relational(
    bp: &BoolProgram,
    nodes: &[Vec<Vec<u32>>],
    method: &str,
    stats: &mut CheckStats,
) -> Result<Vec<HashSet<Val>>, CheckError> {
    let width = bp.preds.len();
    let shape = |detail: String| CheckError::ShapeMismatch { method: method.to_string(), detail };
    if nodes.len() != bp.node_count {
        return Err(shape(format!("{} solution rows for {} nodes", nodes.len(), bp.node_count)));
    }
    let mut states: Vec<HashSet<Val>> = Vec::with_capacity(nodes.len());
    for vals in nodes {
        let mut set = HashSet::with_capacity(vals.len());
        for bits in vals {
            let v = val_from(bits, width)
                .ok_or_else(|| shape("predicate index out of range".to_string()))?;
            set.insert(v);
        }
        states.push(set);
    }

    let k = bp.entry_unknown.len();
    if k >= usize::BITS as usize - 1 || (1usize << k) > states[bp.entry].len() {
        return Err(CheckError::EntryNotCovered { method: method.to_string() });
    }
    for mask in 0..(1usize << k) {
        let mut v = val_new(width);
        for (j, &bit) in bp.entry_unknown.iter().enumerate() {
            if mask >> j & 1 == 1 {
                val_set(&mut v, bit, true);
            }
        }
        if !states[bp.entry].contains(&v) {
            return Err(CheckError::EntryNotCovered { method: method.to_string() });
        }
    }

    for e in &bp.edges {
        if states[e.from].is_empty() {
            continue;
        }
        stats.edges_replayed += 1;
        for s in &states[e.from] {
            stats.transfers += 1;
            let mut outs = vec![s.clone()];
            for (dst, rhs) in &e.assigns {
                match rhs {
                    Rhs::Disj(ops) => {
                        let bit = ops.iter().any(|op| match op {
                            Operand::Const(c) => *c,
                            Operand::Var(v) => val_get(s, *v),
                        });
                        for o in &mut outs {
                            val_set(o, *dst, bit);
                        }
                    }
                    Rhs::Havoc => {
                        let mut forked = Vec::with_capacity(outs.len() * 2);
                        for mut o in outs {
                            let mut one = o.clone();
                            val_set(&mut o, *dst, false);
                            val_set(&mut one, *dst, true);
                            forked.push(o);
                            forked.push(one);
                        }
                        outs = forked;
                        if outs.len() > REPLAY_STATE_CAP {
                            return Err(CheckError::ReplayBudget { method: method.to_string() });
                        }
                    }
                }
            }
            for o in &outs {
                if !states[e.to].contains(o) {
                    return Err(CheckError::NotPostFixpoint {
                        method: method.to_string(),
                        from: e.from,
                        to: e.to,
                    });
                }
            }
        }
    }
    Ok(states)
}

/// Evaluates every `requires` check site against the replayed solution,
/// mirroring the engines' violation semantics: a site fires when any of its
/// guarding operands may be 1 (constant-true fires unconditionally).
fn implied_violations(
    program: &Program,
    bp: &BoolProgram,
    may: impl Fn(usize, usize) -> bool,
) -> Vec<CertViolation> {
    let mut out = Vec::new();
    for c in &bp.checks {
        let fires = c.preds.iter().any(|op| match op {
            Operand::Const(b) => *b,
            Operand::Var(v) => may(c.node, *v),
        });
        if fires {
            out.push(CertViolation {
                method: program.method(c.site.method).qualified_name(),
                line: c.site.span.line,
                col: c.site.span.col,
                what: c.site.what.clone(),
            });
        }
    }
    out
}

/// Parses and revalidates a serialized certificate. See [`check`].
///
/// # Errors
///
/// [`CheckError::Format`] if the text fails to parse or its digest does not
/// match, otherwise whatever [`check`] reports.
pub fn check_text(
    source: &str,
    spec: &Spec,
    derived: &Derived,
    cert_text: &str,
) -> Result<CheckOutcome, CheckError> {
    let cert = Certificate::parse(cert_text)?;
    check(source, spec, derived, &cert)
}

/// Revalidates a certificate against the exact client source, specification
/// and derived abstraction it claims to certify.
///
/// An `Ok` outcome means the claimed solution is a genuine post-fixpoint
/// and the claimed violation list is exactly what the solution implies —
/// [`CheckOutcome::certified`] then reports whether that list is empty. Any
/// inconsistency is an `Err`: a rejected certificate proves nothing.
///
/// # Errors
///
/// [`CheckError`] describing the first inconsistency found (binding digests,
/// cell coverage, solution shape, post-fixpoint replay, or violation set).
pub fn check(
    source: &str,
    spec: &Spec,
    derived: &Derived,
    cert: &Certificate,
) -> Result<CheckOutcome, CheckError> {
    if cert.spec != spec.name() {
        return Err(CheckError::WrongSpec {
            cert: cert.spec.clone(),
            actual: spec.name().to_string(),
        });
    }
    if cert.derived != derived_digest(derived) {
        return Err(CheckError::WrongDerived);
    }
    if cert.source != digest_str(source) {
        return Err(CheckError::WrongSource);
    }
    let program = Program::parse(source, spec).map_err(|e| CheckError::Client(e.to_string()))?;
    let main = program.main_method().ok_or(CheckError::NoMain)?.qualified_name();

    // the certifier produces exactly one cell per method: main under the
    // clean entry, every other method under the unknown entry — demand
    // exactly that set, nothing missing, nothing extra, no duplicates
    let mut expected: Vec<(String, EntryAssumption)> = vec![(main.clone(), EntryAssumption::Clean)];
    for m in program.methods() {
        if m.qualified_name() != main {
            expected.push((m.qualified_name(), EntryAssumption::Unknown));
        }
    }
    for (method, entry) in &expected {
        if !cert.cells.iter().any(|c| &c.method == method && c.entry == *entry) {
            return Err(CheckError::MissingCell { method: method.clone(), entry: *entry });
        }
    }
    for c in &cert.cells {
        let dup =
            cert.cells.iter().filter(|d| d.method == c.method && d.entry == c.entry).count() > 1;
        if dup || !expected.iter().any(|(m, e)| m == &c.method && *e == c.entry) {
            return Err(CheckError::ExtraCell { method: c.method.clone() });
        }
    }

    let mut stats = CheckStats::default();
    let mut implied: Vec<CertViolation> = Vec::new();
    for cell in &cert.cells {
        stats.cells += 1;
        let method = program
            .method_named(&cell.method)
            .ok_or_else(|| CheckError::ExtraCell { method: cell.method.clone() })?;
        let bp = transform_method(&program, method, spec, derived, cell.entry);
        if bp.preds.len() != cell.preds as usize {
            return Err(CheckError::ShapeMismatch {
                method: cell.method.clone(),
                detail: format!(
                    "{} predicate instances claimed, transform has {}",
                    cell.preds,
                    bp.preds.len()
                ),
            });
        }
        if bp_digest(&bp) != cell.bp_digest {
            return Err(CheckError::ShapeMismatch {
                method: cell.method.clone(),
                detail: "boolean-program digest mismatch".to_string(),
            });
        }
        match &cell.solution {
            CellSolution::Unavailable { reason } => {
                return Err(CheckError::Uncheckable {
                    method: cell.method.clone(),
                    reason: reason.clone(),
                });
            }
            CellSolution::MayOne { nodes } => {
                let states = replay_may_one(&bp, nodes, &cell.method, &mut stats)?;
                implied.extend(implied_violations(&program, &bp, |n, v| val_get(&states[n], v)));
            }
            CellSolution::Relational { nodes } => {
                let states = replay_relational(&bp, nodes, &cell.method, &mut stats)?;
                implied.extend(implied_violations(&program, &bp, |n, v| {
                    states[n].iter().any(|s| val_get(s, v))
                }));
            }
        }
    }

    // mirror Report::normalize: sort by (method, line, col, what) and drop
    // duplicates, then the claim must match exactly
    implied.sort();
    implied.dedup();
    if implied != cert.violations {
        return Err(CheckError::ViolationMismatch {
            claimed: cert.violations.len(),
            implied: implied.len(),
        });
    }
    Ok(CheckOutcome { certified: implied.is_empty(), violations: implied, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_helpers_pack_and_compare() {
        let mut v = val_new(130);
        assert_eq!(v.len(), 3);
        val_set(&mut v, 0, true);
        val_set(&mut v, 64, true);
        val_set(&mut v, 129, true);
        assert!(val_get(&v, 0) && val_get(&v, 64) && val_get(&v, 129));
        assert!(!val_get(&v, 1));
        val_set(&mut v, 64, false);
        assert!(!val_get(&v, 64));

        let a = val_from(&[1, 3], 8).unwrap();
        let b = val_from(&[1, 3, 5], 8).unwrap();
        assert!(val_subset(&a, &b));
        assert!(!val_subset(&b, &a));
        assert!(val_from(&[8], 8).is_none(), "out-of-range index must be rejected");
    }
}
