//! Canonical abstraction and structure join (§5.5).

use canvas_logic::Kleene;

use crate::structure::Structure;
use crate::tvp::PredDecl;

/// The abstraction signature of an individual: the vector of its values for
/// all unary abstraction predicates.
pub fn signature(s: &Structure, preds: &[PredDecl], u: usize) -> Vec<Kleene> {
    preds
        .iter()
        .enumerate()
        .filter(|(_, p)| p.arity == 1 && p.abstraction)
        .map(|(k, _)| s.get1(k, u))
        .collect()
}

/// Canonical abstraction: merges all individuals with equal signatures,
/// joining predicate values; the result's individuals are ordered by
/// signature, so equal canonical structures compare equal structurally.
pub fn canonicalize(s: &Structure, preds: &[PredDecl]) -> Structure {
    static CANONICALIZATIONS: canvas_telemetry::Counter =
        canvas_telemetry::Counter::new("tvla.canonicalizations");
    static CANON_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("tvla.canon");
    CANONICALIZATIONS.incr();
    let _span = CANON_TIME.span();
    let n = s.universe_len();
    // group indices by signature
    let mut groups: Vec<(Vec<Kleene>, Vec<usize>)> = Vec::new();
    for u in 0..n {
        let sig = signature(s, preds, u);
        match groups.iter_mut().find(|(g, _)| *g == sig) {
            Some((_, members)) => members.push(u),
            None => groups.push((sig, vec![u])),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Structure::empty(preds);
    for (_, members) in &groups {
        let v = out.add_individual();
        let summary = members.len() > 1 || members.iter().any(|&u| s.is_summary(u));
        out.set_summary(v, summary);
    }
    // nullary predicates
    for (k, p) in preds.iter().enumerate() {
        match p.arity {
            0 => out.set0(k, s.get0(k)),
            1 => {
                for (gi, (_, members)) in groups.iter().enumerate() {
                    let mut val: Option<Kleene> = None;
                    for &u in members {
                        let x = s.get1(k, u);
                        val = Some(match val {
                            None => x,
                            Some(y) => y.join(x),
                        });
                    }
                    out.set1(k, gi, val.unwrap_or(Kleene::False));
                }
            }
            2 => {
                for (gi, (_, mi)) in groups.iter().enumerate() {
                    for (gj, (_, mj)) in groups.iter().enumerate() {
                        let mut val: Option<Kleene> = None;
                        for &a in mi {
                            for &b in mj {
                                let x = s.get2(k, a, b);
                                val = Some(match val {
                                    None => x,
                                    Some(y) => y.join(x),
                                });
                            }
                        }
                        out.set2(k, gi, gj, val.unwrap_or(Kleene::False));
                    }
                }
            }
            a => unreachable!("unsupported arity {a}"),
        }
    }
    out
}

/// Joins two *canonical* structures into one (independent-attribute mode).
///
/// Individuals are matched by signature; values are joined pointwise.
/// Individuals present on one side only are kept, marked summary, and all
/// their definite values demoted to `1/2` — a conservative weakening (the
/// other side has no such individual), sound for the negation-light formula
/// class the translations emit; see DESIGN.md.
pub fn join(a: &Structure, b: &Structure, preds: &[PredDecl]) -> Structure {
    let mut out = Structure::empty(preds);
    // collect signatures
    let sa: Vec<Vec<Kleene>> = (0..a.universe_len()).map(|u| signature(a, preds, u)).collect();
    let sb: Vec<Vec<Kleene>> = (0..b.universe_len()).map(|u| signature(b, preds, u)).collect();

    // (source-in-a, source-in-b) per output node
    let mut origin: Vec<(Option<usize>, Option<usize>)> = Vec::new();
    for (u, sig) in sa.iter().enumerate() {
        let m = sb.iter().position(|t| t == sig);
        origin.push((Some(u), m));
    }
    for (v, sig) in sb.iter().enumerate() {
        if !sa.iter().any(|t| t == sig) {
            origin.push((None, Some(v)));
        }
    }
    for &(ou, ov) in &origin {
        let w = out.add_individual();
        let summary = match (ou, ov) {
            (Some(u), Some(v)) => a.is_summary(u) || b.is_summary(v),
            (Some(u), None) => {
                let _ = u;
                true
            }
            (None, Some(v)) => {
                let _ = v;
                true
            }
            (None, None) => unreachable!("every node has an origin"),
        };
        out.set_summary(w, summary);
    }

    let val1 = |k: usize, o: (Option<usize>, Option<usize>)| -> Kleene {
        match o {
            (Some(u), Some(v)) => a.get1(k, u).join(b.get1(k, v)),
            (Some(u), None) => demote(a.get1(k, u)),
            (None, Some(v)) => demote(b.get1(k, v)),
            (None, None) => unreachable!(),
        }
    };
    for (k, p) in preds.iter().enumerate() {
        match p.arity {
            0 => out.set0(k, a.get0(k).join(b.get0(k))),
            1 => {
                for (w, &o) in origin.iter().enumerate() {
                    out.set1(k, w, val1(k, o));
                }
            }
            2 => {
                for (w1, &o1) in origin.iter().enumerate() {
                    for (w2, &o2) in origin.iter().enumerate() {
                        let v = match (o1, o2) {
                            ((Some(u1), Some(v1)), (Some(u2), Some(v2))) => {
                                a.get2(k, u1, u2).join(b.get2(k, v1, v2))
                            }
                            ((Some(u1), _), (Some(u2), _)) => demote(a.get2(k, u1, u2)),
                            ((_, Some(v1)), (_, Some(v2))) => demote(b.get2(k, v1, v2)),
                            _ => Kleene::Unknown, // nodes from different sides
                        };
                        out.set2(k, w1, w2, v);
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    canonicalize(&out, preds)
}

fn demote(v: Kleene) -> Kleene {
    if v == Kleene::False {
        Kleene::False
    } else {
        Kleene::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvp::PredDecl;

    fn preds() -> Vec<PredDecl> {
        vec![PredDecl::pt("pt_x"), PredDecl::pt("pt_y"), PredDecl::field("rv_f")]
    }

    #[test]
    fn merge_same_signature() {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        let a = s.add_individual();
        let b = s.add_individual();
        let c = s.add_individual();
        s.set1(0, a, Kleene::True); // pt_x(a)
        s.set2(2, a, b, Kleene::True);
        s.set2(2, a, c, Kleene::False);
        // b and c share the all-0 signature and merge into one summary node
        let out = canonicalize(&s, &ps);
        assert_eq!(out.universe_len(), 2);
        let merged = (0..2).find(|&u| out.is_summary(u)).expect("summary node");
        let kept = 1 - merged;
        assert!(!out.is_summary(kept));
        assert_eq!(out.get1(0, kept), Kleene::True);
        // rv_f(a, ·) joined True and False → Unknown
        assert_eq!(out.get2(2, kept, merged), Kleene::Unknown);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        for _ in 0..4 {
            s.add_individual();
        }
        s.set1(0, 0, Kleene::True);
        s.set1(1, 1, Kleene::Unknown);
        s.set2(2, 0, 2, Kleene::True);
        let once = canonicalize(&s, &ps);
        let twice = canonicalize(&once, &ps);
        assert_eq!(once, twice);
    }

    #[test]
    fn canonical_order_is_deterministic() {
        let ps = preds();
        let mut s1 = Structure::empty(&ps);
        let a = s1.add_individual();
        let b = s1.add_individual();
        s1.set1(0, a, Kleene::True);
        s1.set1(1, b, Kleene::True);
        // same structure built in the opposite order
        let mut s2 = Structure::empty(&ps);
        let b2 = s2.add_individual();
        let a2 = s2.add_individual();
        s2.set1(1, b2, Kleene::True);
        s2.set1(0, a2, Kleene::True);
        assert_eq!(canonicalize(&s1, &ps), canonicalize(&s2, &ps));
    }

    #[test]
    fn join_matched_nodes() {
        let ps = preds();
        let mut s1 = Structure::empty(&ps);
        let a1 = s1.add_individual();
        s1.set1(0, a1, Kleene::True);
        let mut s2 = Structure::empty(&ps);
        let a2 = s2.add_individual();
        s2.set1(0, a2, Kleene::True);
        s2.set1(1, a2, Kleene::False);
        let j = join(&canonicalize(&s1, &ps), &canonicalize(&s2, &ps), &ps);
        assert_eq!(j.universe_len(), 1);
        assert_eq!(j.get1(0, 0), Kleene::True);
    }

    #[test]
    fn join_one_sided_node_is_demoted() {
        let ps = preds();
        let mut s1 = Structure::empty(&ps);
        let a1 = s1.add_individual();
        s1.set1(0, a1, Kleene::True);
        let s2 = Structure::empty(&ps); // empty universe
        let j = join(&canonicalize(&s1, &ps), &canonicalize(&s2, &ps), &ps);
        assert_eq!(j.universe_len(), 1);
        assert!(j.is_summary(0));
        // pt_x demoted from 1 to 1/2 — the node may not exist
        assert_eq!(j.get1(0, 0), Kleene::Unknown);
    }
}
