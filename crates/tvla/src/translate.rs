//! Client translation into TVP.
//!
//! * [`translate_specialized`] — the paper's specialized translation
//!   (§5.3/§5.4, Figs. 10–11): component internals are *not* modelled;
//!   instead the derived instrumentation-predicate families become unary /
//!   binary predicates over component individuals, and component calls
//!   update them using the derived method abstractions. Families whose
//!   defining formula mentions only bare variables (`same(v,w) ≡ v == w`)
//!   are *equality-definable* and compile to individual equality rather
//!   than stored predicates.
//! * [`translate_generic`] — the composite-program translation of §3
//!   (Fig. 9): EASL method bodies are inlined as ordinary heap mutations
//!   over core `rv` field predicates (version objects become individuals).
//!   Run with only the `pt_x` abstraction predicates this is the
//!   storage-shape-graph baseline the paper compares against in §4.4.
//!
//! A multi-statement EASL body becomes a *sequence* of TVP actions (the
//! updates of one action are simultaneous); allocation results referenced by
//! later actions in the sequence are carried in transient unary *register*
//! predicates, cleared at the end of the sequence.
//!
//! Both translations are intraprocedural. Client-to-client calls are
//! translated conservatively: every mutable-dependent instrumentation value
//! (resp. every component-internal field value in the generic mode) is set
//! to `1/2`, statics are havocked, and a bound result points to a fresh
//! *summary* individual with unknown properties.

use std::collections::HashMap;

use canvas_easl::{ClassSpec, MethodSpec, Spec, SpecExpr, SpecStmt, SpecVar};
use canvas_logic::{Formula as LFormula, Symbol, Term, TypeName};
use canvas_minijava::{Instr, MethodIr, Program, VarId};
use canvas_wp::{Derived, FamilyId, RuleRhs, RuleVar, StmtAbstraction};

use crate::tvp::{Action, Formula3, Functional, PredDecl, PredId, PredKind, TvpProgram, Update};

/// Translates a client method using the derived first-order predicate
/// abstraction (HCMP-style certification).
pub fn translate_specialized(
    program: &Program,
    method: &MethodIr,
    spec: &Spec,
    derived: &Derived,
) -> TvpProgram {
    Tx::new(program, method, spec, Some(derived)).run()
}

/// Translates a client method *together with the inlined EASL bodies* into
/// core-predicate TVP (the generic certification baseline of §3).
pub fn translate_generic(program: &Program, method: &MethodIr, spec: &Spec) -> TvpProgram {
    Tx::new(program, method, spec, None).run()
}

/// How a family instance compiles.
#[derive(Clone, Copy, Debug)]
enum FamilyRepr {
    /// A stored predicate.
    Stored(PredId),
    /// Definable as individual (in)equality of its two arguments.
    Equality { positive: bool },
}

/// A reference to an object an EASL `this` or value is bound to.
#[derive(Clone, Copy, Debug)]
enum Root {
    /// The object pointed to by a client variable.
    Var(VarId),
    /// The object held in a transient register predicate.
    Reg(PredId),
}

struct Tx<'a> {
    program: &'a Program,
    method: &'a MethodIr,
    spec: &'a Spec,
    derived: Option<&'a Derived>,
    preds: Vec<PredDecl>,
    pt: HashMap<VarId, PredId>,
    rv_client: HashMap<(Symbol, Symbol), PredId>,
    rv_comp: HashMap<(Symbol, Symbol), PredId>,
    tags: HashMap<Symbol, PredId>,
    fam_repr: Vec<FamilyRepr>,
    nodes: usize,
    edges: Vec<(usize, Action, usize)>,
    fresh_counter: usize,
}

impl<'a> Tx<'a> {
    fn new(
        program: &'a Program,
        method: &'a MethodIr,
        spec: &'a Spec,
        derived: Option<&'a Derived>,
    ) -> Self {
        let mut tx = Tx {
            program,
            method,
            spec,
            derived,
            preds: Vec::new(),
            pt: HashMap::new(),
            rv_client: HashMap::new(),
            rv_comp: HashMap::new(),
            tags: HashMap::new(),
            fam_repr: Vec::new(),
            nodes: method.cfg.node_count(),
            edges: Vec::new(),
            fresh_counter: 0,
        };
        tx.declare_preds();
        tx
    }

    fn is_tracked_ty(&self, ty: &TypeName) -> bool {
        self.spec.is_component_type(ty) || self.program.classes().iter().any(|c| c.name == *ty)
    }

    fn declare_preds(&mut self) {
        for v in self.program.vars() {
            let in_scope = v.owner == Some(self.method.id) || v.owner.is_none();
            if in_scope && self.is_tracked_ty(&v.ty) {
                let id = self.preds.len();
                self.preds.push(PredDecl::pt(format!("pt_{}", v.name)));
                self.pt.insert(v.id, id);
            }
        }
        let declare_tag =
            |name: &str, preds: &mut Vec<PredDecl>, tags: &mut HashMap<Symbol, PredId>| {
                let id = preds.len();
                preds.push(PredDecl::type_tag(format!("is_{name}")));
                tags.insert(Symbol::from(name), id);
            };
        for c in self.spec.classes() {
            declare_tag(c.name().as_str(), &mut self.preds, &mut self.tags);
        }
        for c in self.program.classes() {
            declare_tag(c.name.as_str(), &mut self.preds, &mut self.tags);
        }
        for c in self.program.classes() {
            for f in &c.fields {
                if self.is_tracked_ty(&f.ty) {
                    let id = self.preds.len();
                    self.preds.push(PredDecl::field(format!("rv_{}_{}", c.name, f.name)));
                    self.rv_client.insert((c.name.symbol(), Symbol::from(f.name.as_str())), id);
                }
            }
        }
        match self.derived {
            Some(derived) => {
                for fam in derived.families() {
                    if let Some(positive) = family_equality_definable(fam) {
                        self.fam_repr.push(FamilyRepr::Equality { positive });
                        continue;
                    }
                    let arity = fam.params().len().min(2);
                    let functional =
                        if arity == 2 { family_functional(fam) } else { Functional::No };
                    let id = self.preds.len();
                    self.preds.push(PredDecl {
                        name: fam.name().to_string(),
                        arity,
                        kind: PredKind::Instrumentation,
                        abstraction: arity == 1,
                        unique: false,
                        functional,
                    });
                    self.fam_repr.push(FamilyRepr::Stored(id));
                }
            }
            None => {
                for c in self.spec.classes() {
                    for f in c.fields() {
                        let id = self.preds.len();
                        self.preds.push(PredDecl::field(format!("rv_{}_{}", c.name(), f.name())));
                        self.rv_comp.insert((c.name().symbol(), Symbol::from(f.name())), id);
                    }
                }
            }
        }
    }

    fn fresh(&mut self, base: &str) -> String {
        let k = self.fresh_counter;
        self.fresh_counter += 1;
        format!("${base}{k}")
    }

    fn fresh_node(&mut self) -> usize {
        let n = self.nodes;
        self.nodes += 1;
        n
    }

    /// Declares a transient register predicate.
    fn fresh_reg(&mut self) -> PredId {
        let id = self.preds.len();
        self.preds.push(PredDecl {
            name: format!("$reg{id}"),
            arity: 1,
            kind: PredKind::Core,
            abstraction: true,
            unique: true,
            functional: Functional::No,
        });
        id
    }

    fn run(mut self) -> TvpProgram {
        let cfg_edges: Vec<_> = self.method.cfg.edges().to_vec();
        for e in &cfg_edges {
            let actions = self.translate_instr(&e.instr);
            self.chain(e.from.0, e.to.0, actions);
        }
        TvpProgram {
            preds: self.preds,
            nodes: self.nodes,
            entry: self.method.cfg.entry().0,
            edges: self.edges,
        }
    }

    fn chain(&mut self, from: usize, to: usize, mut actions: Vec<Action>) {
        if actions.is_empty() {
            actions.push(Action::nop());
        }
        let mut cur = from;
        let last = actions.len() - 1;
        for (k, a) in actions.into_iter().enumerate() {
            let next = if k == last { to } else { self.fresh_node() };
            self.edges.push((cur, a, next));
            cur = next;
        }
    }

    fn act(&self, name: impl Into<String>) -> Action {
        Action {
            name: name.into(),
            focus: vec![],
            check: None,
            allocs: vec![],
            summary_allocs: vec![],
            updates: vec![],
        }
    }

    fn pt_of(&self, v: VarId) -> Option<PredId> {
        self.pt.get(&v).copied()
    }

    /// Clears a set of registers (appended as the final action of a chain).
    fn clear_regs(&self, regs: &[PredId]) -> Option<Action> {
        if regs.is_empty() {
            return None;
        }
        let mut a = self.act("clear registers");
        for &r in regs {
            a.updates.push(Update { pred: r, formals: vec!["o".into()], rhs: Formula3::False });
        }
        Some(a)
    }

    // -- instruction dispatch ----------------------------------------------

    fn translate_instr(&mut self, instr: &Instr) -> Vec<Action> {
        match instr {
            Instr::Nop => vec![],
            Instr::Copy { dst, src } => {
                let (Some(pd), Some(ps)) = (self.pt_of(*dst), self.pt_of(*src)) else {
                    return vec![];
                };
                let mut a = self.act("copy");
                a.updates.push(Update {
                    pred: pd,
                    formals: vec!["o".into()],
                    rhs: Formula3::App(ps, vec!["o".into()]),
                });
                vec![a]
            }
            Instr::Nullify { dst } => {
                let Some(pd) = self.pt_of(*dst) else { return vec![] };
                let mut a = self.act("nullify");
                a.updates.push(Update {
                    pred: pd,
                    formals: vec!["o".into()],
                    rhs: Formula3::False,
                });
                vec![a]
            }
            Instr::Load { dst, base, field } => {
                let (Some(pd), Some(pb)) = (self.pt_of(*dst), self.pt_of(*base)) else {
                    return vec![];
                };
                let bty = self.program.var(*base).ty.symbol();
                let rhs = match self.rv_client.get(&(bty, Symbol::from(field.as_str()))) {
                    Some(&rv) => Formula3::exists(
                        "b",
                        Formula3::and([
                            Formula3::App(pb, vec!["b".into()]),
                            Formula3::App(rv, vec!["b".into(), "o".into()]),
                        ]),
                    ),
                    None => Formula3::False, // untracked field
                };
                let mut a = self.act("load");
                a.focus.push(pb);
                a.updates.push(Update { pred: pd, formals: vec!["o".into()], rhs });
                vec![a]
            }
            Instr::Store { base, field, src } => {
                let Some(pb) = self.pt_of(*base) else { return vec![] };
                let bty = self.program.var(*base).ty.symbol();
                let Some(&rv) = self.rv_client.get(&(bty, Symbol::from(field.as_str()))) else {
                    return vec![];
                };
                let src_f = match self.pt_of(*src) {
                    Some(ps) => Formula3::App(ps, vec!["o2".into()]),
                    None => Formula3::False,
                };
                let mut a = self.act("store");
                a.focus.push(pb);
                a.updates.push(Update {
                    pred: rv,
                    formals: vec!["o1".into(), "o2".into()],
                    rhs: Formula3::or([
                        Formula3::and([Formula3::App(pb, vec!["o1".into()]), src_f]),
                        Formula3::and([
                            Formula3::not(Formula3::App(pb, vec!["o1".into()])),
                            Formula3::App(rv, vec!["o1".into(), "o2".into()]),
                        ]),
                    ]),
                });
                vec![a]
            }
            Instr::New { dst, ty, args, at, .. } => self.translate_new(*dst, ty, args, at),
            Instr::CallComponent { dst, recv, method, args, known, at } => {
                if !*known {
                    return vec![];
                }
                self.translate_component_call(*dst, *recv, method, args, at)
            }
            Instr::CallClient { dst, .. } => vec![self.translate_client_call(*dst)],
        }
    }

    /// Emits `alloc n; pt_dst(o) := o == n; tag(o) |= o == n` into `a`.
    fn alloc_updates(&mut self, dst: Option<VarId>, ty: &TypeName, n: &str, a: &mut Action) {
        a.allocs.push(n.to_string());
        if let Some(&tag) = self.tags.get(&ty.symbol()) {
            a.updates.push(Update {
                pred: tag,
                formals: vec!["o".into()],
                rhs: Formula3::or([
                    Formula3::App(tag, vec!["o".into()]),
                    Formula3::Eq("o".into(), n.to_string()),
                ]),
            });
        }
        if let Some(pd) = dst.and_then(|d| self.pt_of(d)) {
            a.updates.push(Update {
                pred: pd,
                formals: vec!["o".into()],
                rhs: Formula3::Eq("o".into(), n.to_string()),
            });
        }
    }

    fn translate_new(
        &mut self,
        dst: VarId,
        ty: &TypeName,
        args: &[VarId],
        at: &canvas_minijava::Site,
    ) -> Vec<Action> {
        let n = self.fresh("new");
        let mut a = self.act(format!("new {ty}"));
        self.alloc_updates(Some(dst), &ty.clone(), &n, &mut a);
        if !self.spec.is_component_type(ty) {
            return vec![a];
        }
        match self.derived {
            Some(derived) => {
                if let Some(sa) = derived.for_new(ty) {
                    let sa = sa.clone();
                    self.compile_rules(&sa, None, args, Some(&n), &mut a);
                    if !sa.checks.is_empty() {
                        a.check = Some((self.compile_checks(&sa.checks, None, args), at.clone()));
                    }
                }
                vec![a]
            }
            None => {
                // generic: inline the constructor body, carrying the fresh
                // object in a register across the action sequence
                let Some(class) = self.spec.class(ty.as_str()) else { return vec![a] };
                let class = class.clone();
                let Some(ctor) = class.ctor().filter(|c| !c.body().is_empty()).cloned() else {
                    return vec![a];
                };
                let reg = self.fresh_reg();
                a.updates.push(Update {
                    pred: reg,
                    formals: vec!["o".into()],
                    rhs: Formula3::Eq("o".into(), n.clone()),
                });
                let mut actions = vec![a];
                let arg_roots: Vec<Option<Root>> =
                    args.iter().map(|&v| Some(Root::Var(v))).collect();
                self.compile_spec_body(&class, &ctor, Root::Reg(reg), &arg_roots, &mut actions);
                if let Some(c) = self.clear_regs(&[reg]) {
                    actions.push(c);
                }
                actions
            }
        }
    }

    fn translate_component_call(
        &mut self,
        dst: Option<VarId>,
        recv: VarId,
        method: &str,
        args: &[VarId],
        at: &canvas_minijava::Site,
    ) -> Vec<Action> {
        let rty = self.program.var(recv).ty;
        let Some(class) = self.spec.class(rty.as_str()) else { return vec![] };
        let Some(m) = class.method(method) else { return vec![] };
        let m = m.clone();
        let class = class.clone();

        let mut focus = Vec::new();
        if let Some(p) = self.pt_of(recv) {
            focus.push(p);
        }
        for &av in args {
            if self.spec.is_component_type(&self.program.var(av).ty) {
                if let Some(p) = self.pt_of(av) {
                    focus.push(p);
                }
            }
        }

        match self.derived {
            Some(derived) => {
                let Some(sa) = derived.for_call(&rty, method) else { return vec![] };
                let sa = sa.clone();
                let mut a = self.act(format!("{rty}.{method}"));
                a.focus = focus;
                if !sa.checks.is_empty() {
                    a.check = Some((self.compile_checks(&sa.checks, Some(recv), args), at.clone()));
                }
                let alloc_name = match (dst, m.ret()) {
                    (Some(d), Some(SpecExpr::New { ty: rt, .. })) => {
                        let rt = *rt;
                        let n = self.fresh("ret");
                        self.alloc_updates(Some(d), &rt, &n, &mut a);
                        Some(n)
                    }
                    (Some(d), _) => {
                        if let Some(pd) = self.pt_of(d) {
                            a.updates.push(Update {
                                pred: pd,
                                formals: vec!["o".into()],
                                rhs: Formula3::Unknown,
                            });
                        }
                        None
                    }
                    (None, _) => None,
                };
                self.compile_rules(&sa, Some(recv), args, alloc_name.as_deref(), &mut a);
                vec![a]
            }
            None => self.translate_generic_call(dst, recv, &class, &m, args, focus, at),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn translate_generic_call(
        &mut self,
        dst: Option<VarId>,
        recv: VarId,
        class: &ClassSpec,
        m: &MethodSpec,
        args: &[VarId],
        focus: Vec<PredId>,
        at: &canvas_minijava::Site,
    ) -> Vec<Action> {
        let mut head = self.act(format!("{}.{} requires", class.name(), m.name()));
        head.focus = focus;
        if let Some(req) = m.requires() {
            let neg = LFormula::not(req.clone());
            let f = self.logic_formula_to_tvp(&neg, class, m, Root::Var(recv), args);
            head.check = Some((f, at.clone()));
        }
        let mut actions = vec![head];
        let mut regs = Vec::new();
        let arg_roots: Vec<Option<Root>> = args.iter().map(|&v| Some(Root::Var(v))).collect();
        self.compile_spec_body(class, m, Root::Var(recv), &arg_roots, &mut actions);
        if let Some(d) = dst {
            match m.ret().cloned() {
                Some(SpecExpr::New { ty: rt, args: ctor_args }) => {
                    let n = self.fresh("ret");
                    let mut a = self.act("bind fresh result");
                    self.alloc_updates(Some(d), &rt, &n, &mut a);
                    // register for the ctor body
                    let reg = self.fresh_reg();
                    regs.push(reg);
                    a.updates.push(Update {
                        pred: reg,
                        formals: vec!["o".into()],
                        rhs: Formula3::Eq("o".into(), n),
                    });
                    actions.push(a);
                    if let Some(rc) = self.spec.class(rt.as_str()) {
                        let rc = rc.clone();
                        if let Some(ctor) = rc.ctor().cloned() {
                            // resolve ctor args (paths in the outer frame)
                            let mut roots = Vec::new();
                            for ca in &ctor_args {
                                roots.push(self.eval_spec_expr_to_root(
                                    ca,
                                    class,
                                    m,
                                    Root::Var(recv),
                                    args,
                                    &mut actions,
                                    &mut regs,
                                ));
                            }
                            self.compile_spec_body(
                                &rc,
                                &ctor,
                                Root::Reg(reg),
                                &roots,
                                &mut actions,
                            );
                        }
                    }
                }
                Some(SpecExpr::Path(p)) => {
                    let mut a = self.act("bind result path");
                    if let Some(pd) = self.pt_of(d) {
                        let f = self.spec_path_formula(&p, class, m, Root::Var(recv), args, "o");
                        a.updates.push(Update { pred: pd, formals: vec!["o".into()], rhs: f });
                    }
                    actions.push(a);
                }
                None => {}
            }
        }
        if let Some(c) = self.clear_regs(&regs) {
            actions.push(c);
        }
        actions
    }

    /// Evaluates a spec expression used as a constructor argument into a
    /// register-backed root (snapshotting the value at this point).
    #[allow(clippy::too_many_arguments)]
    fn eval_spec_expr_to_root(
        &mut self,
        e: &SpecExpr,
        class: &ClassSpec,
        m: &MethodSpec,
        this_root: Root,
        args: &[VarId],
        actions: &mut Vec<Action>,
        regs: &mut Vec<PredId>,
    ) -> Option<Root> {
        match e {
            SpecExpr::Path(p) => {
                if p.fields().is_empty() {
                    // a bare this/param: resolvable directly
                    match p.base() {
                        SpecVar::This => Some(this_root),
                        SpecVar::Param(k) => args.get(k).map(|&v| Root::Var(v)),
                    }
                } else {
                    // snapshot the path value into a register
                    let reg = self.fresh_reg();
                    regs.push(reg);
                    let f = self.spec_path_formula(p, class, m, this_root, args, "o");
                    let mut a = self.act("snapshot ctor arg");
                    a.updates.push(Update { pred: reg, formals: vec!["o".into()], rhs: f });
                    actions.push(a);
                    Some(Root::Reg(reg))
                }
            }
            SpecExpr::New { .. } => None, // not used by the built-in specs
        }
    }

    fn translate_client_call(&mut self, dst: Option<VarId>) -> Action {
        let mut a = self.act("client call (conservative)");
        match self.derived {
            Some(derived) => {
                for (fid, fam) in derived.families().iter().enumerate() {
                    if !fam.mutable_dep() {
                        continue;
                    }
                    if let FamilyRepr::Stored(pred) = self.fam_repr[fid] {
                        let formals: Vec<String> =
                            (0..self.preds[pred].arity).map(|k| format!("w{k}")).collect();
                        a.updates.push(Update { pred, formals, rhs: Formula3::Unknown });
                    }
                }
            }
            None => {
                let rvs: Vec<PredId> = self.rv_comp.values().copied().collect();
                for rv in rvs {
                    a.updates.push(Update {
                        pred: rv,
                        formals: vec!["o1".into(), "o2".into()],
                        rhs: Formula3::Unknown,
                    });
                }
            }
        }
        let statics: Vec<PredId> = self
            .program
            .vars()
            .iter()
            .filter(|v| v.owner.is_none())
            .filter_map(|v| self.pt_of(v.id))
            .collect();
        for p in statics {
            a.updates.push(Update { pred: p, formals: vec!["o".into()], rhs: Formula3::Unknown });
        }
        if let Some(pd) = dst.and_then(|d| self.pt_of(d)) {
            let n = self.fresh("unk");
            a.summary_allocs.push(n);
            a.updates.push(Update { pred: pd, formals: vec!["o".into()], rhs: Formula3::Unknown });
        }
        a
    }

    // -- specialized-mode rule compilation ---------------------------------

    fn rule_var_binding(
        &self,
        rv: RuleVar,
        recv: Option<VarId>,
        args: &[VarId],
        alloc: Option<&str>,
        binds: &mut Vec<(String, PredId)>,
        counter: &mut usize,
    ) -> Option<String> {
        match rv {
            RuleVar::Univ(k) => Some(format!("w{k}")),
            RuleVar::Lhs => alloc.map(str::to_string),
            RuleVar::Recv => {
                let p = self.pt_of(recv?)?;
                Some(bind_individual(p, binds, counter))
            }
            RuleVar::Arg(i) => {
                let p = self.pt_of(*args.get(i)?)?;
                Some(bind_individual(p, binds, counter))
            }
        }
    }

    fn wrap_binds(&self, binds: Vec<(String, PredId)>, body: Formula3) -> Formula3 {
        let mut f = body;
        for (v, p) in binds.into_iter().rev() {
            f = Formula3::exists(v.clone(), Formula3::and([Formula3::App(p, vec![v]), f]));
        }
        f
    }

    /// Application of a family instance to bound individual variables.
    fn family_app(&self, fid: FamilyId, vars: Vec<String>) -> Formula3 {
        match self.fam_repr[fid.index()] {
            FamilyRepr::Stored(pred) => Formula3::App(pred, vars),
            FamilyRepr::Equality { positive } => {
                let eq = Formula3::Eq(vars[0].clone(), vars[1].clone());
                if positive {
                    eq
                } else {
                    Formula3::not(eq)
                }
            }
        }
    }

    fn compile_rules(
        &mut self,
        sa: &StmtAbstraction,
        recv: Option<VarId>,
        args: &[VarId],
        alloc: Option<&str>,
        a: &mut Action,
    ) {
        let derived = self.derived.expect("specialized mode");
        for fam in derived.families() {
            let fid = fam.id();
            let FamilyRepr::Stored(pred) = self.fam_repr[fid.index()] else {
                continue; // equality-definable families need no updates
            };
            let rules: Vec<_> = sa.rules.iter().filter(|r| r.family == fid).collect();
            if rules.is_empty() {
                continue;
            }
            let arity = self.preds[pred].arity;
            let formals: Vec<String> = (0..arity).map(|k| format!("w{k}")).collect();
            let mut terms = Vec::new();
            let mut neg_conds = Vec::new();
            for rule in &rules {
                let mut cond_parts = Vec::new();
                let mut applicable = true;
                for (k, ta) in rule.target_args.iter().enumerate() {
                    match ta {
                        RuleVar::Lhs => match alloc {
                            Some(n) => {
                                cond_parts.push(Formula3::Eq(format!("w{k}"), n.to_string()))
                            }
                            None => applicable = false,
                        },
                        RuleVar::Univ(_) => {
                            if let Some(n) = alloc {
                                cond_parts.push(Formula3::not(Formula3::Eq(
                                    format!("w{k}"),
                                    n.to_string(),
                                )));
                            }
                        }
                        other => unreachable!("target args are Lhs/Univ, got {other:?}"),
                    }
                }
                if !applicable {
                    continue;
                }
                let cond = Formula3::and(cond_parts.clone());
                let mut rhs_terms = Vec::new();
                for r in &rule.rhs {
                    match r {
                        RuleRhs::Const(true) => rhs_terms.push(Formula3::True),
                        RuleRhs::Const(false) => {}
                        RuleRhs::Unknown => rhs_terms.push(Formula3::Unknown),
                        RuleRhs::Inst(g, rvs) => {
                            let mut binds = Vec::new();
                            let mut counter = 0;
                            let mut vars = Vec::new();
                            let mut ok = true;
                            for &rv in rvs {
                                match self.rule_var_binding(
                                    rv,
                                    recv,
                                    args,
                                    alloc,
                                    &mut binds,
                                    &mut counter,
                                ) {
                                    Some(v) => vars.push(v),
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                            if ok {
                                let app = self.family_app(*g, vars);
                                rhs_terms.push(self.wrap_binds(binds, app));
                            }
                        }
                    }
                }
                let rhs = Formula3::or(rhs_terms);
                terms.push(Formula3::and([cond.clone(), rhs]));
                neg_conds.push(Formula3::not(cond));
            }
            let old = Formula3::App(pred, formals.clone());
            neg_conds.push(old);
            terms.push(Formula3::and(neg_conds));
            a.updates.push(Update { pred, formals, rhs: Formula3::or(terms) });
        }
    }

    fn compile_checks(&self, checks: &[RuleRhs], recv: Option<VarId>, args: &[VarId]) -> Formula3 {
        let mut terms = Vec::new();
        for c in checks {
            match c {
                RuleRhs::Const(true) | RuleRhs::Unknown => terms.push(Formula3::True),
                RuleRhs::Const(false) => {}
                RuleRhs::Inst(g, rvs) => {
                    let mut binds = Vec::new();
                    let mut counter = 0;
                    let mut vars = Vec::new();
                    let mut ok = true;
                    for &rv in rvs {
                        match self.rule_var_binding(rv, recv, args, None, &mut binds, &mut counter)
                        {
                            Some(v) => vars.push(v),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        let app = self.family_app(*g, vars);
                        terms.push(self.wrap_binds(binds, app));
                    }
                }
            }
        }
        Formula3::or(terms)
    }

    // -- generic-mode spec-body compilation --------------------------------

    /// Compiles an EASL method body as a sequence of heap-mutation actions.
    /// `arg_roots[k]` is the binding of parameter `k` (None = untracked).
    fn compile_spec_body(
        &mut self,
        class: &ClassSpec,
        m: &MethodSpec,
        this: Root,
        arg_roots: &[Option<Root>],
        actions: &mut Vec<Action>,
    ) {
        for stmt in m.body().to_vec() {
            let SpecStmt::Assign { lhs, rhs } = stmt;
            let mut a = self.act(format!("{}.{} body", class.name(), m.name()));
            let field =
                Symbol::from(lhs.fields().last().expect("assignments target fields").as_str());
            let owner_ty = self.spec_path_owner_ty(&lhs, class, m);
            let Some(&rv) = self.rv_comp.get(&(owner_ty, field)) else {
                continue;
            };
            let parent = parent_spec_path(&lhs);
            let target_f = self.spec_path_formula_roots(&parent, class, m, this, arg_roots, "o1");
            let value_f = match &rhs {
                SpecExpr::Path(p) => {
                    self.spec_path_formula_roots(p, class, m, this, arg_roots, "o2")
                }
                SpecExpr::New { ty, .. } => {
                    // allocate within this very action (token classes have
                    // empty constructors)
                    let ty = *ty;
                    let n = self.fresh("v");
                    self.alloc_updates(None, &ty, &n, &mut a);
                    Formula3::Eq("o2".into(), n)
                }
            };
            a.updates.push(Update {
                pred: rv,
                formals: vec!["o1".into(), "o2".into()],
                rhs: Formula3::or([
                    Formula3::and([target_f.clone(), value_f]),
                    Formula3::and([
                        Formula3::not(target_f),
                        Formula3::App(rv, vec!["o1".into(), "o2".into()]),
                    ]),
                ]),
            });
            actions.push(a);
        }
    }

    fn spec_path_owner_ty(
        &self,
        p: &canvas_easl::SpecPath,
        class: &ClassSpec,
        m: &MethodSpec,
    ) -> Symbol {
        let mut ty = match p.base() {
            SpecVar::This => *class.name(),
            SpecVar::Param(k) => m.params()[k].1,
        };
        for f in &p.fields()[..p.fields().len() - 1] {
            if let Some(next) = self.spec.field_type(&ty, f) {
                ty = next;
            }
        }
        ty.symbol()
    }

    /// `spec_path_formula_roots` with client-var parameter bindings.
    fn spec_path_formula(
        &mut self,
        p: &canvas_easl::SpecPath,
        class: &ClassSpec,
        m: &MethodSpec,
        this_root: Root,
        args: &[VarId],
        out: &str,
    ) -> Formula3 {
        let roots: Vec<Option<Root>> = args.iter().map(|&v| Some(Root::Var(v))).collect();
        self.spec_path_formula_roots(p, class, m, this_root, &roots, out)
    }

    /// Builds the formula binding `out` to the value of a spec path.
    fn spec_path_formula_roots(
        &mut self,
        p: &canvas_easl::SpecPath,
        class: &ClassSpec,
        m: &MethodSpec,
        this_root: Root,
        arg_roots: &[Option<Root>],
        out: &str,
    ) -> Formula3 {
        let root = match p.base() {
            SpecVar::This => Some(this_root),
            SpecVar::Param(k) => arg_roots.get(k).copied().flatten(),
        };
        let Some(root) = root else { return Formula3::Unknown };
        let root_pred = match root {
            Root::Var(v) => match self.pt_of(v) {
                Some(pt) => pt,
                None => return Formula3::Unknown,
            },
            Root::Reg(r) => r,
        };
        let mut ty = match p.base() {
            SpecVar::This => *class.name(),
            SpecVar::Param(k) => m.params()[k].1,
        };
        // ∃b0: root(b0) ∧ rv_f1(b0,b1) ∧ … ∧ rv_fk(b_{k-1}, out)
        let b0 = self.fresh("b");
        let mut conj = vec![Formula3::App(root_pred, vec![b0.clone()])];
        let mut quantified = vec![b0.clone()];
        let mut cur = b0;
        let fields = p.fields().to_vec();
        for (i, f) in fields.iter().enumerate() {
            let Some(&rv) = self.rv_comp.get(&(ty.symbol(), Symbol::from(f.as_str()))) else {
                return Formula3::Unknown;
            };
            let next = if i + 1 == fields.len() { out.to_string() } else { self.fresh("b") };
            conj.push(Formula3::App(rv, vec![cur.clone(), next.clone()]));
            if i + 1 != fields.len() {
                quantified.push(next.clone());
            }
            cur = next;
            if let Some(t) = self.spec.field_type(&ty, f) {
                ty = t;
            }
        }
        if fields.is_empty() {
            conj.push(Formula3::Eq(out.to_string(), cur));
        }
        let mut f = Formula3::and(conj);
        for q in quantified.into_iter().rev() {
            f = Formula3::Exists(q, Box::new(f));
        }
        f
    }

    /// Translates a requires-violation formula into TVP (generic mode).
    fn logic_formula_to_tvp(
        &mut self,
        f: &LFormula,
        class: &ClassSpec,
        m: &MethodSpec,
        this_root: Root,
        args: &[VarId],
    ) -> Formula3 {
        match f {
            LFormula::True => Formula3::True,
            LFormula::False => Formula3::False,
            LFormula::Eq(a, b) => self.atom_to_tvp(a, b, true, class, m, this_root, args),
            LFormula::Ne(a, b) => self.atom_to_tvp(a, b, false, class, m, this_root, args),
            LFormula::Not(g) => {
                Formula3::not(self.logic_formula_to_tvp(g, class, m, this_root, args))
            }
            LFormula::And(gs) => Formula3::and(
                gs.iter()
                    .map(|g| self.logic_formula_to_tvp(g, class, m, this_root, args))
                    .collect::<Vec<_>>(),
            ),
            LFormula::Or(gs) => Formula3::or(
                gs.iter()
                    .map(|g| self.logic_formula_to_tvp(g, class, m, this_root, args))
                    .collect::<Vec<_>>(),
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn atom_to_tvp(
        &mut self,
        a: &Term,
        b: &Term,
        positive: bool,
        class: &ClassSpec,
        m: &MethodSpec,
        this_root: Root,
        args: &[VarId],
    ) -> Formula3 {
        let (Term::Path(pa), Term::Path(pb)) = (a, b) else {
            return Formula3::Unknown;
        };
        let (Some(spa), Some(spb)) =
            (access_to_spec_path(pa, class, m), access_to_spec_path(pb, class, m))
        else {
            return Formula3::Unknown;
        };
        let fa = self.spec_path_formula(&spa, class, m, this_root, args, "oa");
        let fb = self.spec_path_formula(&spb, class, m, this_root, args, "ob");
        let eq = Formula3::Eq("oa".into(), "ob".into());
        let cmp = if positive { eq } else { Formula3::not(eq) };
        Formula3::exists("oa", Formula3::exists("ob", Formula3::and([fa, fb, cmp])))
    }
}

fn bind_individual(p: PredId, binds: &mut Vec<(String, PredId)>, counter: &mut usize) -> String {
    if let Some((v, _)) = binds.iter().find(|(_, q)| *q == p) {
        return v.clone();
    }
    let v = format!("b{}", *counter);
    *counter += 1;
    binds.push((v.clone(), p));
    v
}

/// `Some(positive)` when the family formula is a boolean combination of bare
/// variable (in)equalities only — then instances are definable as individual
/// equality. Only the single-literal shapes occur in practice.
fn family_equality_definable(fam: &canvas_wp::Family) -> Option<bool> {
    if fam.params().len() != 2 {
        return None;
    }
    match fam.formula() {
        LFormula::Eq(Term::Path(a), Term::Path(b)) if a.is_var() && b.is_var() => Some(true),
        LFormula::Ne(Term::Path(a), Term::Path(b)) if a.is_var() && b.is_var() => Some(false),
        _ => None,
    }
}

/// The functional direction of a binary family: the shape `x0.path == x1`
/// determines the bare side from the path side (CMP's `iterof(i, v)` maps
/// each iterator to one set; GRP's flipped `iterof(g, t)` maps each
/// traversal to one graph).
fn family_functional(fam: &canvas_wp::Family) -> Functional {
    let params = fam.params();
    match fam.formula() {
        LFormula::Eq(Term::Path(a), Term::Path(b)) => {
            let bare_pos = |p: &canvas_logic::AccessPath| {
                p.is_var().then(|| params.iter().position(|q| q == p.base())).flatten()
            };
            match (bare_pos(a), bare_pos(b)) {
                // exactly one side is a bare parameter: that side is the
                // determined value
                (Some(1), None) | (None, Some(1)) => Functional::SecondByFirst,
                (Some(0), None) | (None, Some(0)) => Functional::FirstBySecond,
                _ => Functional::No,
            }
        }
        _ => Functional::No,
    }
}

/// Converts a logic access path (rooted at `this` or a parameter) back into
/// a spec path relative to the method frame.
fn access_to_spec_path(
    p: &canvas_logic::AccessPath,
    class: &ClassSpec,
    m: &MethodSpec,
) -> Option<canvas_easl::SpecPath> {
    let base = if p.base().name() == "this" && p.base().ty() == class.name() {
        SpecVar::This
    } else {
        let k = m.params().iter().position(|(n, _)| n == p.base().name())?;
        SpecVar::Param(k)
    };
    Some(canvas_easl::SpecPath::new(base, p.fields().to_vec()))
}

/// The parent path (written object) of an assignment target.
fn parent_spec_path(p: &canvas_easl::SpecPath) -> canvas_easl::SpecPath {
    canvas_easl::SpecPath::new(p.base(), p.fields()[..p.fields().len() - 1].to_vec())
}
