//! The TVLA-style fixpoint engines (§5.5, §7).

use std::collections::HashSet;

use canvas_faults::{Exhaustion, Meter};
use canvas_minijava::Site;

use crate::canon::{canonicalize, join};
use crate::structure::Structure;
use crate::transfer::apply;
use crate::tvp::TvpProgram;

static TVLA_WORKLIST_POPS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("tvla.worklist_pops");
static TVLA_APPLICATIONS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("tvla.applications");
static TVLA_STRUCTURES_CREATED: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("tvla.structures_created");
static TVLA_DEDUP_HITS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("tvla.dedup_hits");
static TVLA_JOINS: canvas_telemetry::Counter = canvas_telemetry::Counter::new("tvla.joins");
static TVLA_SOLVE_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("tvla.solve");

/// Which abstract-state representation to use per CFG node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineMode {
    /// A set of canonical structures per node (exponential worst case,
    /// maximally precise).
    Relational,
    /// A single joined structure per node (the paper's faster mode; §7
    /// reports it loses no precision on the benchmarks).
    IndependentAttribute,
}

/// A potential `requires` violation found by the engine.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TvlaViolation {
    /// Where.
    pub site: Site,
}

/// Result of a TVLA run.
#[derive(Clone, Debug)]
pub struct TvlaResult {
    /// Potential violations (deduplicated, ordered by site).
    pub violations: Vec<TvlaViolation>,
    /// Total structure-transformer applications (work measure).
    pub applications: usize,
    /// Largest per-node structure-set size encountered.
    pub max_states: usize,
    /// Whether the structure budget was exhausted (result still sound: the
    /// engine reports every check site reachable at bail-out time as a
    /// potential violation).
    pub exhausted: bool,
}

/// Runs the abstract interpreter over a TVP program from the empty heap.
pub fn run(p: &TvpProgram, mode: EngineMode, max_structs_per_node: usize) -> TvlaResult {
    let entry = vec![Structure::empty(&p.preds)];
    run_from(p, mode, max_structs_per_node, entry)
}

/// Like [`run`], but also returns the final per-node structure sets (used
/// by the shape-graph renderings of the evaluation and by tests).
pub fn run_collect(
    p: &TvpProgram,
    mode: EngineMode,
    max_structs_per_node: usize,
) -> (TvlaResult, Vec<Vec<Structure>>) {
    // re-run the fixpoint while keeping the states: the engine is
    // deterministic, so running it once with collection is equivalent
    let disarmed = Meter::disarmed();
    match collect_states(p, mode, max_structs_per_node, vec![Structure::empty(&p.preds)], &disarmed)
    {
        Ok(pair) => pair,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Runs the abstract interpreter from explicit entry structures (used to
/// certify methods out of context, with unknown parameter state).
pub fn run_from(
    p: &TvpProgram,
    mode: EngineMode,
    max_structs_per_node: usize,
    entry: Vec<Structure>,
) -> TvlaResult {
    let disarmed = Meter::disarmed();
    match collect_states(p, mode, max_structs_per_node, entry, &disarmed) {
        Ok((res, _)) => res,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Governed variant of [`run_from`]: one meter tick per structure-transformer
/// application, plus governor state checks on every target set.
///
/// The engine's own `max_structs_per_node` budget keeps its legacy meaning
/// (conservative bail-out with `exhausted = true`); only the shared governor
/// produces an [`Exhaustion`], which the caller degrades to an inconclusive
/// verdict.
///
/// # Errors
///
/// Returns the [`Exhaustion`] when the governor budget trips.
pub fn run_from_with(
    p: &TvpProgram,
    mode: EngineMode,
    max_structs_per_node: usize,
    entry: Vec<Structure>,
    gov: &Meter,
) -> Result<TvlaResult, Exhaustion> {
    canvas_faults::solver_abort();
    collect_states(p, mode, max_structs_per_node, entry, gov).map(|(res, _)| res)
}

fn collect_states(
    p: &TvpProgram,
    mode: EngineMode,
    max_structs_per_node: usize,
    entry: Vec<Structure>,
    gov: &Meter,
) -> Result<(TvlaResult, Vec<Vec<Structure>>), Exhaustion> {
    let _span = TVLA_SOLVE_TIME.span();
    // Publishes on drop so governor-tripped early exits are counted too.
    struct Tally {
        pops: u64,
        applications: u64,
        structs_created: u64,
        dedup_hits: u64,
        joins: u64,
    }
    impl Drop for Tally {
        fn drop(&mut self) {
            TVLA_WORKLIST_POPS.add(self.pops);
            TVLA_APPLICATIONS.add(self.applications);
            TVLA_STRUCTURES_CREATED.add(self.structs_created);
            TVLA_DEDUP_HITS.add(self.dedup_hits);
            TVLA_JOINS.add(self.joins);
        }
    }
    let mut tally = Tally { pops: 0, applications: 0, structs_created: 0, dedup_hits: 0, joins: 0 };
    let mut states: Vec<Vec<Structure>> = vec![Vec::new(); p.nodes];
    // Hash-set mirror of `states` for O(1) membership in relational mode
    // (structures are canonicalized, so hashing sees the isomorphism-
    // canonical form); the Vec keeps deterministic insertion order.
    let mut seen: Vec<HashSet<Structure>> = vec![HashSet::new(); p.nodes];
    for s in entry {
        let s = canonicalize(&s, &p.preds);
        match mode {
            EngineMode::Relational => {
                if seen[p.entry].insert(s.clone()) {
                    tally.structs_created += 1;
                    states[p.entry].push(s);
                } else {
                    tally.dedup_hits += 1;
                }
            }
            EngineMode::IndependentAttribute => {
                let acc = match states[p.entry].pop() {
                    None => s,
                    Some(t) => {
                        tally.joins += 1;
                        crate::canon::join(&t, &s, &p.preds)
                    }
                };
                states[p.entry] = vec![acc];
            }
        }
    }

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); p.nodes];
    for (k, (from, _, _)) in p.edges.iter().enumerate() {
        out_edges[*from].push(k);
    }

    let mut work = vec![p.entry];
    let mut on_work = vec![false; p.nodes];
    on_work[p.entry] = true;
    let mut violations: HashSet<Site> = HashSet::new();
    let mut max_states = 1;
    let mut exhausted = false;

    while let Some(node) = work.pop() {
        tally.pops += 1;
        on_work[node] = false;
        let cur = states[node].clone();
        for &ek in &out_edges[node] {
            let (_, action, to) = &p.edges[ek];
            let mut new_structs = Vec::new();
            for s in &cur {
                tally.applications += 1;
                gov.tick()?;
                let r = apply(action, s, &p.preds);
                if r.check_fired {
                    if let Some((_, site)) = &action.check {
                        violations.insert(site.clone());
                    }
                }
                new_structs.extend(r.posts);
            }
            let target = &mut states[*to];
            let mut changed = false;
            match mode {
                EngineMode::Relational => {
                    for s in new_structs {
                        if seen[*to].insert(s.clone()) {
                            tally.structs_created += 1;
                            target.push(s);
                            changed = true;
                        } else {
                            tally.dedup_hits += 1;
                        }
                    }
                }
                EngineMode::IndependentAttribute => {
                    let mut acc = target.first().cloned();
                    for s in new_structs {
                        acc = Some(match acc {
                            None => s,
                            Some(t) => {
                                tally.joins += 1;
                                join(&t, &s, &p.preds)
                            }
                        });
                    }
                    if let Some(s) = acc {
                        if target.first() != Some(&s) {
                            *target = vec![s];
                            changed = true;
                        }
                    }
                }
            }
            max_states = max_states.max(target.len());
            gov.check_states(target.len())?;
            if target.len() > max_structs_per_node {
                exhausted = true;
            }
            if changed && !on_work[*to] {
                on_work[*to] = true;
                work.push(*to);
            }
        }
        if exhausted {
            break;
        }
    }

    if exhausted {
        // bail out conservatively: flag every check site
        for (_, action, _) in &p.edges {
            if let Some((_, site)) = &action.check {
                violations.insert(site.clone());
            }
        }
    }

    let mut violations: Vec<TvlaViolation> =
        violations.into_iter().map(|site| TvlaViolation { site }).collect();
    violations.sort_by_key(|v| (v.site.method, v.site.span, v.site.what.clone()));
    let applications = tally.applications as usize;
    Ok((TvlaResult { violations, applications, max_states, exhausted }, states))
}

/// Renders a structure as a Graphviz DOT digraph (for visual inspection of
/// the paper's Fig. 7-style shape graphs): individuals become nodes (doubly
/// circled when summary), unary properties become labels, binary predicates
/// become edges (dashed for 1/2 values).
pub fn to_dot(s: &Structure, preds: &[crate::tvp::PredDecl]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph shape {\n  rankdir=LR;\n");
    for u in 0..s.universe_len() {
        let mut props = Vec::new();
        for (k, p) in preds.iter().enumerate() {
            if p.arity == 1 {
                match s.get1(k, u) {
                    canvas_logic::Kleene::True => props.push(p.name.clone()),
                    canvas_logic::Kleene::Unknown => props.push(format!("{}?", p.name)),
                    canvas_logic::Kleene::False => {}
                }
            }
        }
        let _ = writeln!(
            out,
            "  o{u} [label=\"o{u}\\n{}\"{}];",
            props.join("\\n"),
            if s.is_summary(u) { " peripheries=2" } else { "" }
        );
    }
    for (k, p) in preds.iter().enumerate() {
        if p.arity != 2 {
            continue;
        }
        for a in 0..s.universe_len() {
            for b in 0..s.universe_len() {
                match s.get2(k, a, b) {
                    canvas_logic::Kleene::True => {
                        let _ = writeln!(out, "  o{a} -> o{b} [label=\"{}\"];", p.name);
                    }
                    canvas_logic::Kleene::Unknown => {
                        let _ =
                            writeln!(out, "  o{a} -> o{b} [label=\"{}\" style=dashed];", p.name);
                    }
                    canvas_logic::Kleene::False => {}
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a structure as a textual shape graph (the paper's Fig. 7):
/// individuals with their unary properties, then the binary edges.
pub fn render_structure(s: &Structure, preds: &[crate::tvp::PredDecl]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for u in 0..s.universe_len() {
        let mut props = Vec::new();
        for (k, p) in preds.iter().enumerate() {
            if p.arity == 1 {
                let v = s.get1(k, u);
                if v != canvas_logic::Kleene::False {
                    props.push(if v == canvas_logic::Kleene::True {
                        p.name.clone()
                    } else {
                        format!("{}?", p.name)
                    });
                }
            }
        }
        let _ = writeln!(
            out,
            "  o{u}{}: {}",
            if s.is_summary(u) { "*" } else { "" },
            if props.is_empty() { "(unlabelled)".to_string() } else { props.join(", ") }
        );
    }
    for (k, p) in preds.iter().enumerate() {
        if p.arity != 2 {
            continue;
        }
        for a in 0..s.universe_len() {
            for b in 0..s.universe_len() {
                let v = s.get2(k, a, b);
                if v != canvas_logic::Kleene::False {
                    let _ = writeln!(
                        out,
                        "  {}: o{a} -> o{b}{}",
                        p.name,
                        if v == canvas_logic::Kleene::Unknown { "  (maybe)" } else { "" }
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvp::{Action, Formula3, PredDecl, Update};
    use canvas_minijava::MethodId;

    fn site(line: u32) -> Site {
        Site {
            method: MethodId(0),
            span: canvas_minijava::Span::new(line, 1),
            what: format!("check@{line}"),
        }
    }

    /// x = new; maybe (x = new); check x-pointed-thing is p1
    fn tiny_program() -> TvpProgram {
        let preds = vec![PredDecl::pt("pt_x"), PredDecl::type_tag("mark")];
        let alloc = |name: &str| Action {
            name: name.into(),
            focus: vec![],
            check: None,
            allocs: vec!["n".into()],
            summary_allocs: vec![],
            updates: vec![Update {
                pred: 0,
                formals: vec!["o".into()],
                rhs: Formula3::Eq("o".into(), "n".into()),
            }],
        };
        let mark = Action {
            name: "mark x".into(),
            focus: vec![0],
            check: None,
            allocs: vec![],
            summary_allocs: vec![],
            updates: vec![Update {
                pred: 1,
                formals: vec!["o".into()],
                rhs: Formula3::or([
                    Formula3::App(1, vec!["o".into()]),
                    Formula3::App(0, vec!["o".into()]),
                ]),
            }],
        };
        let check = Action {
            name: "check".into(),
            focus: vec![0],
            check: Some((
                Formula3::exists(
                    "o",
                    Formula3::and([
                        Formula3::App(0, vec!["o".into()]),
                        Formula3::not(Formula3::App(1, vec!["o".into()])),
                    ]),
                ),
                site(9),
            )),
            allocs: vec![],
            summary_allocs: vec![],
            updates: vec![],
        };
        TvpProgram {
            preds,
            nodes: 4,
            entry: 0,
            edges: vec![(0, alloc("x=new"), 1), (1, mark, 2), (2, check, 3)],
        }
    }

    #[test]
    fn straightline_no_alarm_both_modes() {
        let p = tiny_program();
        for mode in [EngineMode::Relational, EngineMode::IndependentAttribute] {
            let r = run(&p, mode, 1000);
            assert!(r.violations.is_empty(), "{mode:?}: {:?}", r.violations);
            assert!(!r.exhausted);
        }
    }

    #[test]
    fn unmarked_path_raises_alarm() {
        // entry -> alloc -> (skip mark or mark) -> check
        let base = tiny_program();
        let (_, mark, _) = base.edges[1].clone();
        let (_, check, _) = base.edges[2].clone();
        let (_, alloc, _) = base.edges[0].clone();
        let p = TvpProgram {
            preds: base.preds,
            nodes: 4,
            entry: 0,
            edges: vec![
                (0, alloc, 1),
                (1, mark, 2),
                (1, Action::nop(), 2), // skip marking
                (2, check, 3),
            ],
        };
        for mode in [EngineMode::Relational, EngineMode::IndependentAttribute] {
            let r = run(&p, mode, 1000);
            assert_eq!(r.violations.len(), 1, "{mode:?}");
        }
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::tvp::PredDecl;
    use canvas_logic::Kleene;

    #[test]
    fn dot_output_shape() {
        let preds = vec![PredDecl::pt("pt_x"), PredDecl::field("rv_f")];
        let mut s = Structure::empty(&preds);
        let a = s.add_individual();
        let b = s.add_individual();
        s.set_summary(b, true);
        s.set1(0, a, Kleene::True);
        s.set2(1, a, b, Kleene::Unknown);
        let dot = to_dot(&s, &preds);
        assert!(dot.starts_with("digraph shape {"), "{dot}");
        assert!(dot.contains("peripheries=2"), "summary node double-circled: {dot}");
        assert!(dot.contains("style=dashed"), "maybe edge dashed: {dot}");
        assert!(dot.contains("pt_x"), "{dot}");
    }
}
