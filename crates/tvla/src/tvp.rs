//! The TVP intermediate language (paper §5.1).

use std::fmt;

use canvas_minijava::Site;

/// Index of a predicate in a [`TvpProgram`]'s declaration list.
pub type PredId = usize;

/// What a predicate is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredKind {
    /// Part of the standard translation (`pt_x`, `rv_f`, type tags).
    Core,
    /// A derived instrumentation predicate (first-order predicate
    /// abstraction, §5.3).
    Instrumentation,
}

/// A predicate declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PredDecl {
    /// Display name, e.g. `pt_i1`, `rv_next`, `stale`.
    pub name: String,
    /// Arity (0, 1 or 2).
    pub arity: usize,
    /// Core or instrumentation.
    pub kind: PredKind,
    /// Whether this (unary) predicate participates in canonical abstraction.
    pub abstraction: bool,
    /// Unary predicate with at most one individual set (e.g. `pt_x`):
    /// enforced by coerce.
    pub unique: bool,
    /// Functional dependency of a binary predicate (enforced by coerce).
    pub functional: Functional,
}

/// Which argument of a binary predicate is determined by the other.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Functional {
    /// No functional dependency.
    No,
    /// Each first argument has at most one second (e.g. `rv_f`: an object's
    /// field holds one reference).
    SecondByFirst,
    /// Each second argument has at most one first (e.g. GRP's
    /// `iterof(g, t) ≡ t.g == g`).
    FirstBySecond,
}

impl PredDecl {
    /// A core unary pointed-to-by-variable predicate.
    pub fn pt(name: impl Into<String>) -> Self {
        PredDecl {
            name: name.into(),
            arity: 1,
            kind: PredKind::Core,
            abstraction: true,
            unique: true,
            functional: Functional::No,
        }
    }

    /// A core binary field predicate.
    pub fn field(name: impl Into<String>) -> Self {
        PredDecl {
            name: name.into(),
            arity: 2,
            kind: PredKind::Core,
            abstraction: false,
            unique: false,
            functional: Functional::SecondByFirst,
        }
    }

    /// A unary type-tag predicate.
    pub fn type_tag(name: impl Into<String>) -> Self {
        PredDecl {
            name: name.into(),
            arity: 1,
            kind: PredKind::Core,
            abstraction: true,
            unique: false,
            functional: Functional::No,
        }
    }
}

/// A first-order formula over predicates and individual variables,
/// evaluated with Kleene three-valued semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula3 {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Constant 1/2 (used for conservative havoc effects).
    Unknown,
    /// Predicate application `p(v…)`.
    App(PredId, Vec<String>),
    /// Individual equality `v1 == v2`.
    Eq(String, String),
    /// Negation.
    Not(Box<Formula3>),
    /// N-ary conjunction.
    And(Vec<Formula3>),
    /// N-ary disjunction.
    Or(Vec<Formula3>),
    /// `∃v. f`.
    Exists(String, Box<Formula3>),
    /// `∀v. f`.
    Forall(String, Box<Formula3>),
}

impl Formula3 {
    /// Conjunction helper (flattens, folds constants).
    pub fn and(fs: impl IntoIterator<Item = Formula3>) -> Formula3 {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula3::True => {}
                Formula3::False => return Formula3::False,
                Formula3::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula3::True,
            1 => out.pop().expect("len checked"),
            _ => Formula3::And(out),
        }
    }

    /// Disjunction helper (flattens, folds constants).
    pub fn or(fs: impl IntoIterator<Item = Formula3>) -> Formula3 {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula3::False => {}
                Formula3::True => return Formula3::True,
                Formula3::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula3::False,
            1 => out.pop().expect("len checked"),
            _ => Formula3::Or(out),
        }
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)] // constructor-style, like `and`/`or`
    pub fn not(f: Formula3) -> Formula3 {
        match f {
            Formula3::True => Formula3::False,
            Formula3::False => Formula3::True,
            Formula3::Not(inner) => *inner,
            other => Formula3::Not(Box::new(other)),
        }
    }

    /// `∃v. f`.
    pub fn exists(v: impl Into<String>, f: Formula3) -> Formula3 {
        Formula3::Exists(v.into(), Box::new(f))
    }
}

impl fmt::Display for Formula3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula3::True => write!(f, "1"),
            Formula3::False => write!(f, "0"),
            Formula3::Unknown => write!(f, "1/2"),
            Formula3::App(p, vs) => write!(f, "p{}({})", p, vs.join(",")),
            Formula3::Eq(a, b) => write!(f, "{a} == {b}"),
            Formula3::Not(g) => write!(f, "!({g})"),
            Formula3::And(gs) => {
                let parts: Vec<String> = gs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" && "))
            }
            Formula3::Or(gs) => {
                let parts: Vec<String> = gs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" || "))
            }
            Formula3::Exists(v, g) => write!(f, "E {v}. ({g})"),
            Formula3::Forall(v, g) => write!(f, "A {v}. ({g})"),
        }
    }
}

/// A simultaneous predicate update: `p(formals…) := rhs` for all tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Update {
    /// The updated predicate.
    pub pred: PredId,
    /// Formal individual variables of the update.
    pub formals: Vec<String>,
    /// The right-hand side (may reference allocation bindings).
    pub rhs: Formula3,
}

/// One action on a TVP edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Action {
    /// Display name (for diagnostics).
    pub name: String,
    /// Variables to focus on before evaluating anything (unary `unique`
    /// predicates, e.g. the receiver's `pt`); structures where the focused
    /// predicate has no individual are dropped (null receiver ⇒ NPE, not a
    /// conformance violation).
    pub focus: Vec<PredId>,
    /// A violation check: report `site` if the formula is possibly true in
    /// the (focused) pre-state.
    pub check: Option<(Formula3, Site)>,
    /// Fresh individuals to allocate, bound to these names in updates.
    pub allocs: Vec<String>,
    /// Fresh *summary* individuals with every predicate value `1/2`,
    /// standing for unknown objects produced by unanalysed code (used for
    /// the conservative client-call treatment).
    pub summary_allocs: Vec<String>,
    /// Simultaneous updates (evaluated in the pre-state + allocations).
    pub updates: Vec<Update>,
}

impl Action {
    /// A no-op action.
    pub fn nop() -> Self {
        Action {
            name: "nop".to_string(),
            focus: Vec::new(),
            check: None,
            allocs: Vec::new(),
            summary_allocs: Vec::new(),
            updates: Vec::new(),
        }
    }
}

/// A TVP program: predicates plus a CFG with actions on edges.
#[derive(Clone, PartialEq, Debug)]
pub struct TvpProgram {
    /// Predicate declarations.
    pub preds: Vec<PredDecl>,
    /// Number of CFG nodes.
    pub nodes: usize,
    /// Entry node.
    pub entry: usize,
    /// Edges `(from, action, to)`.
    pub edges: Vec<(usize, Action, usize)>,
}

impl TvpProgram {
    /// Looks up a predicate id by name.
    pub fn pred_named(&self, name: &str) -> Option<PredId> {
        self.preds.iter().position(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_fold() {
        assert_eq!(Formula3::and([Formula3::True, Formula3::True]), Formula3::True);
        assert_eq!(Formula3::and([Formula3::False, Formula3::Unknown]), Formula3::False);
        assert_eq!(Formula3::or([Formula3::False, Formula3::False]), Formula3::False);
        assert_eq!(Formula3::or([Formula3::True, Formula3::Unknown]), Formula3::True);
        assert_eq!(Formula3::not(Formula3::not(Formula3::Unknown)), Formula3::Unknown);
    }

    #[test]
    fn display() {
        let f = Formula3::exists(
            "o",
            Formula3::and([Formula3::App(0, vec!["o".into()]), Formula3::App(1, vec!["o".into()])]),
        );
        assert_eq!(f.to_string(), "E o. ((p0(o)) && (p1(o)))");
    }

    #[test]
    fn decl_shorthands() {
        let pt = PredDecl::pt("pt_x");
        assert!(pt.unique && pt.abstraction && pt.arity == 1);
        let fld = PredDecl::field("rv_f");
        assert!(fld.functional == Functional::SecondByFirst && fld.arity == 2);
        let tag = PredDecl::type_tag("isSet");
        assert!(tag.abstraction && !tag.unique);
    }
}
