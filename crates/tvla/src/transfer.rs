//! The abstract transformer: focus → check → allocate → update → coerce →
//! canonicalize (§5.5).

use canvas_logic::Kleene;

use crate::canon::canonicalize;
use crate::structure::Structure;
use crate::tvp::{Action, Functional, PredDecl, PredId};

/// The result of applying an action to one structure.
#[derive(Debug)]
pub struct ApplyResult {
    /// Post-states (canonicalized).
    pub posts: Vec<Structure>,
    /// Whether the action's check possibly fired in some focused pre-state.
    pub check_fired: bool,
}

/// Applies `action` to a structure.
pub fn apply(action: &Action, s: &Structure, preds: &[PredDecl]) -> ApplyResult {
    // 1. focus on the requested unary predicates
    let mut focused = vec![s.clone()];
    for &p in &action.focus {
        let mut next = Vec::new();
        for st in &focused {
            next.extend(focus_unary(st, p, preds));
        }
        focused = next;
        // prune infeasible intermediates early
        focused.retain_mut(|st| coerce(st, preds));
    }
    // 2. drop structures where a focused predicate has no individual
    //    (a null receiver raises NPE before any conformance check)
    focused.retain(|st| {
        action.focus.iter().all(|&p| (0..st.universe_len()).any(|u| st.get1(p, u) != Kleene::False))
    });

    // 3. violation check on the focused pre-states
    let mut check_fired = false;
    if let Some((f, _)) = &action.check {
        for st in &focused {
            if st.eval_closed(f).may_be_true() {
                check_fired = true;
                break;
            }
        }
    }

    // 4/5. allocate and update
    let mut posts = Vec::new();
    for st in &focused {
        let mut pre = st.clone();
        let mut env: Vec<(&str, usize)> = Vec::new();
        for name in &action.allocs {
            let u = pre.add_individual();
            env.push((name.as_str(), u));
        }
        for name in &action.summary_allocs {
            let u = pre.add_individual();
            pre.set_summary(u, true);
            for k in 0..pre.pred_count() {
                match pre.pred_arity(k) {
                    0 => {}
                    1 => pre.set1(k, u, Kleene::Unknown),
                    2 => {
                        for w in 0..pre.universe_len() {
                            pre.set2(k, u, w, Kleene::Unknown);
                            pre.set2(k, w, u, Kleene::Unknown);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            env.push((name.as_str(), u));
        }
        // evaluate all updates against the pre-state (with allocations)
        let mut post = pre.clone();
        for up in &action.updates {
            let arity = up.formals.len();
            match arity {
                0 => {
                    let v = pre.eval(&up.rhs, &mut env.clone());
                    post.set0(up.pred, v);
                }
                1 => {
                    for u in 0..pre.universe_len() {
                        env.push((up.formals[0].as_str(), u));
                        let v = pre.eval(&up.rhs, &mut env);
                        env.pop();
                        post.set1(up.pred, u, v);
                    }
                }
                2 => {
                    for a in 0..pre.universe_len() {
                        env.push((up.formals[0].as_str(), a));
                        for b in 0..pre.universe_len() {
                            env.push((up.formals[1].as_str(), b));
                            let v = pre.eval(&up.rhs, &mut env);
                            env.pop();
                            post.set2(up.pred, a, b, v);
                        }
                        env.pop();
                    }
                }
                a => unreachable!("unsupported update arity {a}"),
            }
        }
        // 6. coerce; 7. canonicalize
        if coerce(&mut post, preds) {
            posts.push(canonicalize(&post, preds));
        }
    }
    ApplyResult { posts, check_fired }
}

/// Focus: splits a structure until the unary predicate `p` is definite on
/// every individual, materialising a non-summary individual when `p` may
/// hold on a summary one (the three-way split of §5.5).
pub fn focus_unary(s: &Structure, p: PredId, preds: &[PredDecl]) -> Vec<Structure> {
    let target = (0..s.universe_len()).find(|&u| s.get1(p, u) == Kleene::Unknown);
    let Some(u) = target else {
        return vec![s.clone()];
    };
    let mut out = Vec::new();
    // case: p does not hold on u
    let mut zero = s.clone();
    zero.set1(p, u, Kleene::False);
    out.extend(focus_unary(&zero, p, preds));
    if !s.is_summary(u) {
        // case: p holds on u
        let mut one = s.clone();
        one.set1(p, u, Kleene::True);
        out.extend(focus_unary(&one, p, preds));
    } else {
        // case: the whole summary individual satisfies p (it then stands for
        // exactly the pointed individual for `unique` predicates; keep it
        // summary otherwise and let coerce sharpen)
        let mut all = s.clone();
        all.set1(p, u, Kleene::True);
        if preds[p].unique {
            all.set_summary(u, false);
        }
        out.extend(focus_unary(&all, p, preds));
        // case: split — one materialised individual satisfying p, the rest
        // of the summary individual not satisfying it
        let mut split = s.clone();
        let v = duplicate(&mut split, u);
        split.set_summary(v, false);
        split.set1(p, v, Kleene::True);
        split.set1(p, u, Kleene::False);
        out.extend(focus_unary(&split, p, preds));
    }
    out
}

/// Duplicates individual `u` (copying all predicate values) and returns the
/// copy's index.
fn duplicate(s: &mut Structure, u: usize) -> usize {
    let v = s.add_individual();
    s.set_summary(v, s.is_summary(u));
    let n = s.universe_len();
    // copy all unary and binary values; the caller adjusts p afterwards
    for k in 0..pred_count(s) {
        match pred_arity(s, k) {
            0 => {}
            1 => {
                let val = s.get1(k, u);
                s.set1(k, v, val);
            }
            2 => {
                for w in 0..n {
                    if w == v {
                        continue;
                    }
                    let val = s.get2(k, u, w);
                    s.set2(k, v, w, val);
                    let val = s.get2(k, w, u);
                    s.set2(k, w, v, val);
                }
                let diag = s.get2(k, u, u);
                s.set2(k, v, v, diag);
                s.set2(k, u, v, diag);
                s.set2(k, v, u, diag);
            }
            _ => unreachable!(),
        }
    }
    v
}

// Structure does not know its predicate declarations; recover shape checks
// through trial accessors. To keep the structure API small we track arity
// via these helpers (the stores panic on mismatch, so probe carefully).
fn pred_count(s: &Structure) -> usize {
    s.pred_count()
}

fn pred_arity(s: &Structure, k: usize) -> usize {
    s.pred_arity(k)
}

/// Coerce: repairs integrity constraints in place; returns `false` if the
/// structure is infeasible (to be discarded).
pub fn coerce(s: &mut Structure, preds: &[PredDecl]) -> bool {
    loop {
        let mut changed = false;
        for (k, p) in preds.iter().enumerate() {
            if p.arity == 1 && p.unique {
                // a unique predicate holds for at most one individual
                let definite: Vec<usize> =
                    (0..s.universe_len()).filter(|&u| s.get1(k, u) == Kleene::True).collect();
                if definite.len() > 1 {
                    return false;
                }
                if let Some(&u) = definite.first() {
                    if s.is_summary(u) {
                        // all individuals it stands for are pointed, and at
                        // most one can be: it stands for exactly one
                        s.set_summary(u, false);
                        changed = true;
                    }
                    for v in 0..s.universe_len() {
                        if v != u && s.get1(k, v) == Kleene::Unknown {
                            s.set1(k, v, Kleene::False);
                            changed = true;
                        }
                    }
                }
            }
            if p.arity == 2 && p.functional != Functional::No {
                // at most one definite partner per non-summary individual on
                // the determining side
                let get = |s: &Structure, a: usize, b: usize| match p.functional {
                    Functional::SecondByFirst => s.get2(k, a, b),
                    Functional::FirstBySecond => s.get2(k, b, a),
                    Functional::No => unreachable!(),
                };
                let set = |s: &mut Structure, a: usize, b: usize, v: Kleene| match p.functional {
                    Functional::SecondByFirst => s.set2(k, a, b, v),
                    Functional::FirstBySecond => s.set2(k, b, a, v),
                    Functional::No => unreachable!(),
                };
                for a in 0..s.universe_len() {
                    if s.is_summary(a) {
                        continue;
                    }
                    let ones: Vec<usize> = (0..s.universe_len())
                        .filter(|&b| get(s, a, b) == Kleene::True && !s.is_summary(b))
                        .collect();
                    if ones.len() > 1 {
                        return false;
                    }
                    if let Some(&b0) = ones.first() {
                        for b in 0..s.universe_len() {
                            if b != b0 && get(s, a, b) == Kleene::Unknown {
                                set(s, a, b, Kleene::False);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvp::{Formula3, PredDecl, Update};

    fn preds() -> Vec<PredDecl> {
        vec![
            PredDecl::pt("pt_x"),    // 0
            PredDecl::pt("pt_y"),    // 1
            PredDecl::field("rv_f"), // 2
        ]
    }

    #[test]
    fn focus_materializes_from_summary() {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        let u = s.add_individual();
        s.set_summary(u, true);
        s.set1(0, u, Kleene::Unknown);
        let outs = focus_unary(&s, 0, &ps);
        // three cases: no, all (sharpened to non-summary), split
        assert_eq!(outs.len(), 3);
        assert!(outs
            .iter()
            .all(|o| { (0..o.universe_len()).all(|u| o.get1(0, u) != Kleene::Unknown) }));
        // the split case has two individuals
        assert!(outs.iter().any(|o| o.universe_len() == 2));
    }

    #[test]
    fn coerce_unique() {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        let a = s.add_individual();
        let b = s.add_individual();
        s.set1(0, a, Kleene::True);
        s.set1(0, b, Kleene::Unknown);
        assert!(coerce(&mut s, &ps));
        assert_eq!(s.get1(0, b), Kleene::False, "unique pred sharpened");
        s.set1(0, b, Kleene::True);
        assert!(!coerce(&mut s, &ps), "two pointed individuals infeasible");
    }

    #[test]
    fn coerce_functional() {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        let a = s.add_individual();
        let b = s.add_individual();
        let c = s.add_individual();
        s.set2(2, a, b, Kleene::True);
        s.set2(2, a, c, Kleene::Unknown);
        assert!(coerce(&mut s, &ps));
        assert_eq!(s.get2(2, a, c), Kleene::False);
        s.set2(2, a, c, Kleene::True);
        assert!(!coerce(&mut s, &ps));
    }

    #[test]
    fn apply_alloc_and_update() {
        let ps = preds();
        let s = Structure::empty(&ps);
        // x = new: alloc n; pt_x(o) := o == n
        let action = Action {
            name: "x = new".into(),
            focus: vec![],
            check: None,
            allocs: vec!["n".into()],
            summary_allocs: vec![],
            updates: vec![Update {
                pred: 0,
                formals: vec!["o".into()],
                rhs: Formula3::Eq("o".into(), "n".into()),
            }],
        };
        let r = apply(&action, &s, &ps);
        assert_eq!(r.posts.len(), 1);
        let post = &r.posts[0];
        assert_eq!(post.universe_len(), 1);
        assert_eq!(post.get1(0, 0), Kleene::True);
        assert!(!r.check_fired);
    }

    #[test]
    fn apply_check_fires_on_unknown() {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        let u = s.add_individual();
        s.set1(1, u, Kleene::Unknown);
        let action = Action {
            name: "check".into(),
            focus: vec![],
            check: Some((
                Formula3::exists("o", Formula3::App(1, vec!["o".into()])),
                canvas_minijava::Site {
                    method: canvas_minijava::MethodId(0),
                    span: canvas_minijava::Span::new(1, 1),
                    what: "t".into(),
                },
            )),
            allocs: vec![],
            summary_allocs: vec![],
            updates: vec![],
        };
        let r = apply(&action, &s, &ps);
        assert!(r.check_fired);
    }

    #[test]
    fn apply_focus_drops_null_receiver() {
        let ps = preds();
        let s = Structure::empty(&ps); // nothing pointed by pt_x
        let action = Action {
            name: "recv".into(),
            focus: vec![0],
            check: Some((
                Formula3::True,
                canvas_minijava::Site {
                    method: canvas_minijava::MethodId(0),
                    span: canvas_minijava::Span::new(1, 1),
                    what: "t".into(),
                },
            )),
            allocs: vec![],
            summary_allocs: vec![],
            updates: vec![],
        };
        let r = apply(&action, &s, &ps);
        assert!(r.posts.is_empty());
        assert!(!r.check_fired, "no receiver, no conformance check");
    }
}
