//! TVLA-lite: the TVP intermediate language and a 3-valued-logic abstract
//! interpreter (paper §5).
//!
//! The paper analyses general (heap-storing) clients by translating them to
//! **TVP** — a CFG whose edges carry *actions*: first-order predicate-update
//! formulas with optional allocation bindings and `requires` checks — and
//! running the **TVLA** abstract interpreter over *3-valued logical
//! structures* under canonical abstraction. This crate implements:
//!
//! * [`tvp`] — the TVP IR: predicates, first-order formulas with Kleene
//!   semantics, actions, programs;
//! * [`structure`] — 3-valued structures and formula evaluation;
//! * [`canon`] — canonical abstraction (merge individuals with equal
//!   abstraction-predicate signatures), canonical ordering and hashing;
//! * [`transfer`] — the abstract transformer: focus (goal-directed
//!   materialisation on unary pointer predicates), precondition pruning,
//!   simultaneous predicate update with allocation, and coerce (integrity
//!   constraint repair: unary pointer and functional field predicates);
//! * [`engine`] — the two analysis modes the paper benchmarks: *relational*
//!   (a set of structures per CFG node) and *independent attribute* (one
//!   joined structure per node);
//! * [`translate`] — client translation: the *specialized* translation that
//!   attaches the derived first-order instrumentation predicates (Fig. 10 /
//!   Fig. 11), and the *generic* composite-program translation (§3) that
//!   inlines the EASL bodies as plain heap mutations — which, with only the
//!   `pt_x` predicates for abstraction, is exactly the storage-shape-graph
//!   baseline of §4.4.
//!
//! Transitive closure is not implemented: none of the paper's
//! specifications need it (see DESIGN.md).

pub mod canon;
pub mod engine;
pub mod structure;
pub mod transfer;
pub mod translate;
pub mod tvp;

pub use engine::{
    render_structure, run, run_collect, run_from, run_from_with, to_dot, EngineMode, TvlaResult,
    TvlaViolation,
};
pub use structure::Structure;
pub use translate::{translate_generic, translate_specialized};
pub use tvp::{Action, Formula3, Functional, PredDecl, PredId, PredKind, TvpProgram, Update};
