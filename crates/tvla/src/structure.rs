//! 3-valued logical structures and Kleene formula evaluation (§5.5).

use canvas_logic::Kleene;

use crate::tvp::{Formula3, PredDecl, PredId};

/// Per-predicate value storage.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Store {
    Nullary(Kleene),
    Unary(Vec<Kleene>),
    Binary(Vec<Kleene>), // row-major n×n
}

/// A 3-valued logical structure: a universe of individuals (each possibly a
/// *summary* individual standing for several concrete ones) plus a Kleene
/// interpretation of every predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Structure {
    n: usize,
    summary: Vec<bool>,
    stores: Vec<Store>,
}

impl Structure {
    /// The empty structure over the given predicates.
    pub fn empty(preds: &[PredDecl]) -> Self {
        let stores = preds
            .iter()
            .map(|p| match p.arity {
                0 => Store::Nullary(Kleene::False),
                1 => Store::Unary(Vec::new()),
                2 => Store::Binary(Vec::new()),
                a => unreachable!("unsupported arity {a}"),
            })
            .collect();
        Structure { n: 0, summary: Vec::new(), stores }
    }

    /// Number of individuals.
    pub fn universe_len(&self) -> usize {
        self.n
    }

    /// Whether individual `u` is a summary individual.
    pub fn is_summary(&self, u: usize) -> bool {
        self.summary[u]
    }

    /// Marks or unmarks `u` as summary.
    pub fn set_summary(&mut self, u: usize, s: bool) {
        self.summary[u] = s;
    }

    /// Adds a fresh individual (non-summary, all predicate values 0).
    pub fn add_individual(&mut self) -> usize {
        let u = self.n;
        self.n += 1;
        self.summary.push(false);
        for s in &mut self.stores {
            match s {
                Store::Nullary(_) => {}
                Store::Unary(v) => v.push(Kleene::False),
                Store::Binary(v) => {
                    // grow from (n-1)² to n² preserving row-major layout
                    let old = self.n - 1;
                    let mut next = vec![Kleene::False; self.n * self.n];
                    for r in 0..old {
                        for c in 0..old {
                            next[r * self.n + c] = v[r * old + c];
                        }
                    }
                    *v = next;
                }
            }
        }
        u
    }

    /// Removes individual `u`, compacting indices above it.
    pub fn remove_individual(&mut self, u: usize) {
        assert!(u < self.n, "individual {u} out of range");
        let old = self.n;
        self.n -= 1;
        self.summary.remove(u);
        for s in &mut self.stores {
            match s {
                Store::Nullary(_) => {}
                Store::Unary(v) => {
                    v.remove(u);
                }
                Store::Binary(v) => {
                    let mut next = vec![Kleene::False; self.n * self.n];
                    let mut nr = 0;
                    for r in 0..old {
                        if r == u {
                            continue;
                        }
                        let mut nc = 0;
                        for c in 0..old {
                            if c == u {
                                continue;
                            }
                            next[nr * self.n + nc] = v[r * old + c];
                            nc += 1;
                        }
                        nr += 1;
                    }
                    *v = next;
                }
            }
        }
    }

    /// The value of a nullary predicate.
    pub fn get0(&self, p: PredId) -> Kleene {
        match &self.stores[p] {
            Store::Nullary(k) => *k,
            _ => unreachable!("arity mismatch for p{p}"),
        }
    }

    /// Sets a nullary predicate.
    pub fn set0(&mut self, p: PredId, v: Kleene) {
        match &mut self.stores[p] {
            Store::Nullary(k) => *k = v,
            _ => unreachable!("arity mismatch for p{p}"),
        }
    }

    /// The value of a unary predicate at `u`.
    pub fn get1(&self, p: PredId, u: usize) -> Kleene {
        match &self.stores[p] {
            Store::Unary(v) => v[u],
            _ => unreachable!("arity mismatch for p{p}"),
        }
    }

    /// Sets a unary predicate at `u`.
    pub fn set1(&mut self, p: PredId, u: usize, v: Kleene) {
        match &mut self.stores[p] {
            Store::Unary(s) => s[u] = v,
            _ => unreachable!("arity mismatch for p{p}"),
        }
    }

    /// The value of a binary predicate at `(a, b)`.
    pub fn get2(&self, p: PredId, a: usize, b: usize) -> Kleene {
        match &self.stores[p] {
            Store::Binary(v) => v[a * self.n + b],
            _ => unreachable!("arity mismatch for p{p}"),
        }
    }

    /// Sets a binary predicate at `(a, b)`.
    pub fn set2(&mut self, p: PredId, a: usize, b: usize, v: Kleene) {
        let n = self.n;
        match &mut self.stores[p] {
            Store::Binary(s) => s[a * n + b] = v,
            _ => unreachable!("arity mismatch for p{p}"),
        }
    }

    /// Generic get by argument tuple.
    pub fn get(&self, p: PredId, args: &[usize]) -> Kleene {
        match args {
            [] => self.get0(p),
            [u] => self.get1(p, *u),
            [a, b] => self.get2(p, *a, *b),
            _ => unreachable!("unsupported arity"),
        }
    }

    /// Generic set by argument tuple.
    pub fn set(&mut self, p: PredId, args: &[usize], v: Kleene) {
        match args {
            [] => self.set0(p, v),
            [u] => self.set1(p, *u, v),
            [a, b] => self.set2(p, *a, *b, v),
            _ => unreachable!("unsupported arity"),
        }
    }

    /// Kleene equality of two individuals: distinct individuals are unequal;
    /// a summary individual is only *maybe* equal to itself.
    pub fn eq_kleene(&self, a: usize, b: usize) -> Kleene {
        if a != b {
            Kleene::False
        } else if self.summary[a] {
            Kleene::Unknown
        } else {
            Kleene::True
        }
    }

    /// Evaluates a formula under an environment binding variables to
    /// individuals (innermost binding wins; lookups scan from the back).
    pub fn eval<'f>(&self, f: &'f Formula3, env: &mut Vec<(&'f str, usize)>) -> Kleene {
        fn lookup(env: &[(&str, usize)], v: &str) -> usize {
            env.iter()
                .rev()
                .find(|(n, _)| *n == v)
                .unwrap_or_else(|| panic!("unbound variable {v}"))
                .1
        }
        match f {
            Formula3::True => Kleene::True,
            Formula3::False => Kleene::False,
            Formula3::Unknown => Kleene::Unknown,
            Formula3::App(p, vars) => match vars.as_slice() {
                [] => self.get0(*p),
                [a] => self.get1(*p, lookup(env, a)),
                [a, b] => self.get2(*p, lookup(env, a), lookup(env, b)),
                _ => unreachable!("unsupported arity"),
            },
            Formula3::Eq(a, b) => self.eq_kleene(lookup(env, a), lookup(env, b)),
            Formula3::Not(g) => self.eval(g, env).not(),
            Formula3::And(gs) => {
                let mut acc = Kleene::True;
                for g in gs {
                    acc = acc.and(self.eval(g, env));
                    if acc == Kleene::False {
                        break;
                    }
                }
                acc
            }
            Formula3::Or(gs) => {
                let mut acc = Kleene::False;
                for g in gs {
                    acc = acc.or(self.eval(g, env));
                    if acc == Kleene::True {
                        break;
                    }
                }
                acc
            }
            Formula3::Exists(v, g) => {
                let mut acc = Kleene::False;
                for u in 0..self.n {
                    env.push((v.as_str(), u));
                    acc = acc.or(self.eval(g, env));
                    env.pop();
                    if acc == Kleene::True {
                        break;
                    }
                }
                acc
            }
            Formula3::Forall(v, g) => {
                let mut acc = Kleene::True;
                for u in 0..self.n {
                    env.push((v.as_str(), u));
                    acc = acc.and(self.eval(g, env));
                    env.pop();
                    if acc == Kleene::False {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// Evaluates a closed formula.
    pub fn eval_closed(&self, f: &Formula3) -> Kleene {
        self.eval(f, &mut Vec::new())
    }

    /// Number of predicates.
    pub fn pred_count(&self) -> usize {
        self.stores.len()
    }

    /// Arity of predicate `k`.
    pub fn pred_arity(&self, k: PredId) -> usize {
        match &self.stores[k] {
            Store::Nullary(_) => 0,
            Store::Unary(_) => 1,
            Store::Binary(_) => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvp::PredDecl;

    fn preds() -> Vec<PredDecl> {
        vec![
            PredDecl::pt("pt_x"),    // 0
            PredDecl::pt("pt_y"),    // 1
            PredDecl::field("rv_f"), // 2
        ]
    }

    #[test]
    fn add_remove_individuals() {
        let mut s = Structure::empty(&preds());
        let a = s.add_individual();
        let b = s.add_individual();
        s.set1(0, a, Kleene::True);
        s.set2(2, a, b, Kleene::True);
        assert_eq!(s.get1(0, a), Kleene::True);
        assert_eq!(s.get2(2, a, b), Kleene::True);
        assert_eq!(s.get2(2, b, a), Kleene::False);
        let c = s.add_individual();
        assert_eq!(s.get2(2, a, b), Kleene::True, "binary survives growth");
        s.set2(2, b, c, Kleene::Unknown);
        s.remove_individual(a);
        // b,c shifted down to 0,1
        assert_eq!(s.get2(2, 0, 1), Kleene::Unknown, "binary survives removal");
        assert_eq!(s.universe_len(), 2);
    }

    #[test]
    fn eq_kleene_summary() {
        let mut s = Structure::empty(&preds());
        let a = s.add_individual();
        let b = s.add_individual();
        s.set_summary(b, true);
        assert_eq!(s.eq_kleene(a, a), Kleene::True);
        assert_eq!(s.eq_kleene(a, b), Kleene::False);
        assert_eq!(s.eq_kleene(b, b), Kleene::Unknown);
    }

    #[test]
    fn eval_quantifiers() {
        let mut s = Structure::empty(&preds());
        let a = s.add_individual();
        let b = s.add_individual();
        s.set1(0, a, Kleene::True);
        s.set1(1, b, Kleene::Unknown);
        // ∃o: pt_x(o) = 1
        let f = Formula3::exists("o", Formula3::App(0, vec!["o".into()]));
        assert_eq!(s.eval_closed(&f), Kleene::True);
        // ∃o: pt_y(o) = 1/2
        let f = Formula3::exists("o", Formula3::App(1, vec!["o".into()]));
        assert_eq!(s.eval_closed(&f), Kleene::Unknown);
        // ∀o: pt_x(o) = 0  (b has pt_x false)
        let f = Formula3::Forall("o".into(), Box::new(Formula3::App(0, vec!["o".into()])));
        assert_eq!(s.eval_closed(&f), Kleene::False);
        // ∃o1,o2: pt_x(o1) && rv_f(o1,o2): 0 (no field edges)
        let f = Formula3::exists(
            "o1",
            Formula3::exists(
                "o2",
                Formula3::and([
                    Formula3::App(0, vec!["o1".into()]),
                    Formula3::App(2, vec!["o1".into(), "o2".into()]),
                ]),
            ),
        );
        assert_eq!(s.eval_closed(&f), Kleene::False);
    }

    #[test]
    fn eval_on_empty_universe() {
        let s = Structure::empty(&preds());
        let f = Formula3::exists("o", Formula3::App(0, vec!["o".into()]));
        assert_eq!(s.eval_closed(&f), Kleene::False);
        let f = Formula3::Forall("o".into(), Box::new(Formula3::False));
        assert_eq!(s.eval_closed(&f), Kleene::True);
    }
}
