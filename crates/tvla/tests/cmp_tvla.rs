//! End-to-end TVLA certification tests on the paper's CMP examples:
//! the specialized first-order abstraction (§5) versus the generic
//! storage-shape-graph baseline (§3/§4.4).

use canvas_minijava::Program;
use canvas_tvla::{run, translate_generic, translate_specialized, EngineMode};
use canvas_wp::derive_abstraction;

const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#;

fn specialized_lines(src: &str, mode: EngineMode) -> Vec<u32> {
    let spec = canvas_easl::builtin::cmp();
    let program = Program::parse(src, &spec).unwrap();
    let derived = derive_abstraction(&spec).unwrap();
    let main = program.main_method().expect("main required");
    let tvp = translate_specialized(&program, main, &spec, &derived);
    let r = run(&tvp, mode, 20_000);
    assert!(!r.exhausted, "budget exhausted");
    r.violations.iter().map(|v| v.site.line()).collect()
}

fn generic_lines(src: &str, mode: EngineMode) -> Vec<u32> {
    let spec = canvas_easl::builtin::cmp();
    let program = Program::parse(src, &spec).unwrap();
    let main = program.main_method().expect("main required");
    let tvp = translate_generic(&program, main, &spec);
    let r = run(&tvp, mode, 20_000);
    assert!(!r.exhausted, "budget exhausted");
    r.violations.iter().map(|v| v.site.line()).collect()
}

#[test]
fn specialized_fig3_exact() {
    // errors at lines 10 (i2) and 13 (i1), and no false alarm at 11 (i3)
    let lines = specialized_lines(FIG3, EngineMode::Relational);
    assert_eq!(lines, vec![10, 13]);
}

#[test]
fn specialized_modes_agree_on_fig3() {
    // the paper's §7 observation: independent-attribute mode loses nothing
    let rel = specialized_lines(FIG3, EngineMode::Relational);
    let ind = specialized_lines(FIG3, EngineMode::IndependentAttribute);
    assert_eq!(rel, ind);
}

#[test]
fn generic_ssg_false_alarm_at_line_11() {
    // §4.4: merging the two unpointed version objects loses the validity of
    // i3, so the storage-shape-graph baseline raises a false alarm at 11
    let lines = generic_lines(FIG3, EngineMode::Relational);
    assert!(lines.contains(&10), "{lines:?}");
    assert!(lines.contains(&13), "{lines:?}");
    assert!(lines.contains(&11), "false alarm expected: {lines:?}");
}

#[test]
fn generic_ok_on_straightline_single_version() {
    // with a single version object nothing merges; the generic baseline is
    // exact here
    let src = r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
    }
}
"#;
    assert!(generic_lines(src, EngineMode::Relational).is_empty());
    // and it correctly reports a use after add
    let src = r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add("x");
        i.next();
    }
}
"#;
    let lines = generic_lines(src, EngineMode::Relational);
    assert_eq!(lines.len(), 1, "{lines:?}");
}

#[test]
fn specialized_handles_heap_stored_iterators() {
    // HCMP: the iterator lives in an object field; SCMP cannot track this,
    // the first-order abstraction can
    let src = r#"
class Box {
    Iterator it;
    Box() { }
}
class Main {
    static void main() {
        Set s = new Set();
        Box b = new Box();
        b.it = s.iterator();
        Iterator j = b.it;
        j.next();
        s.add("x");
        Iterator k = b.it;
        k.next();
    }
}
"#;
    let lines = specialized_lines(src, EngineMode::Relational);
    // only the post-add use may throw
    assert_eq!(lines.len(), 1, "{lines:?}");
}

#[test]
fn specialized_version_loop_is_precise() {
    // the §3 loop that defeats allocation-site-based analysis
    let src = r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) {
                i.next();
            }
        }
    }
}
"#;
    let lines = specialized_lines(src, EngineMode::Relational);
    assert!(lines.is_empty(), "{lines:?}");
}

#[test]
fn specialized_loop_mutation_is_flagged() {
    let src = r#"
class Main {
    static void main() {
        Set s = new Set();
        for (Iterator i = s.iterator(); i.hasNext(); ) {
            i.next();
            s.add("x");
        }
    }
}
"#;
    let lines = specialized_lines(src, EngineMode::Relational);
    assert_eq!(lines.len(), 1, "{lines:?}");
}

#[test]
fn grp_specialized_end_to_end() {
    let spec = canvas_easl::builtin::grp();
    let src = r#"
class Main {
    static void main() {
        Graph g = new Graph();
        Traversal t1 = g.startTraversal();
        t1.next();
        Traversal t2 = g.startTraversal();
        t2.next();
        t1.next();
    }
}
"#;
    let program = Program::parse(src, &spec).unwrap();
    let derived = derive_abstraction(&spec).unwrap();
    let main = program.main_method().unwrap();
    let tvp = translate_specialized(&program, main, &spec, &derived);
    let r = run(&tvp, EngineMode::Relational, 20_000);
    let lines: Vec<u32> = r.violations.iter().map(|v| v.site.line()).collect();
    // only the resumed t1 traversal (line 9) is invalid
    assert_eq!(lines, vec![9], "{:?}", r.violations);
}
