//! Property tests for the 3-valued abstraction domain: canonical
//! abstraction laws, join behaviour, and coerce invariants on random
//! structures.

use canvas_logic::Kleene;
use canvas_tvla::canon::{canonicalize, join, signature};
use canvas_tvla::structure::Structure;
use canvas_tvla::transfer::coerce;
use canvas_tvla::{Functional, PredDecl, PredKind};
use proptest::prelude::*;

fn preds() -> Vec<PredDecl> {
    vec![
        PredDecl::pt("pt_x"), // unique, abstraction
        PredDecl::pt("pt_y"), // unique, abstraction
        PredDecl::type_tag("tag"),
        PredDecl::field("rv_f"), // functional (second-by-first)
        PredDecl {
            name: "rel".into(),
            arity: 2,
            kind: PredKind::Instrumentation,
            abstraction: false,
            unique: false,
            functional: Functional::No,
        },
        PredDecl {
            name: "mark".into(),
            arity: 1,
            kind: PredKind::Instrumentation,
            abstraction: true,
            unique: false,
            functional: Functional::No,
        },
    ]
}

fn arb_kleene() -> impl Strategy<Value = Kleene> {
    prop_oneof![Just(Kleene::False), Just(Kleene::Unknown), Just(Kleene::True)]
}

prop_compose! {
    fn arb_structure()(n in 0usize..5)(
        n in Just(n),
        summaries in prop::collection::vec(any::<bool>(), n),
        unary in prop::collection::vec(arb_kleene(), n * 4),
        binary in prop::collection::vec(arb_kleene(), n * n * 2),
    ) -> Structure {
        let ps = preds();
        let mut s = Structure::empty(&ps);
        for _ in 0..n {
            s.add_individual();
        }
        for (u, &sm) in summaries.iter().enumerate() {
            s.set_summary(u, sm);
        }
        // unary predicates: 0,1,2,5 — binary: 3,4
        let unary_ids = [0usize, 1, 2, 5];
        for (k, &p) in unary_ids.iter().enumerate() {
            for u in 0..n {
                s.set1(p, u, unary[k * n + u]);
            }
        }
        for (k, &p) in [3usize, 4].iter().enumerate() {
            for a in 0..n {
                for b in 0..n {
                    s.set2(p, a, b, binary[k * n * n + a * n + b]);
                }
            }
        }
        s
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonical abstraction is idempotent.
    #[test]
    fn canonicalize_idempotent(s in arb_structure()) {
        let ps = preds();
        let once = canonicalize(&s, &ps);
        let twice = canonicalize(&once, &ps);
        prop_assert_eq!(once, twice);
    }

    /// Canonicalization never grows the universe, and after it all
    /// signatures are distinct.
    #[test]
    fn canonicalize_merges(s in arb_structure()) {
        let ps = preds();
        let c = canonicalize(&s, &ps);
        prop_assert!(c.universe_len() <= s.universe_len());
        for a in 0..c.universe_len() {
            for b in (a + 1)..c.universe_len() {
                prop_assert_ne!(signature(&c, &ps, a), signature(&c, &ps, b));
            }
        }
    }

    /// Join is commutative (on canonical inputs) and idempotent.
    #[test]
    fn join_laws(a in arb_structure(), b in arb_structure()) {
        let ps = preds();
        let (ca, cb) = (canonicalize(&a, &ps), canonicalize(&b, &ps));
        prop_assert_eq!(join(&ca, &cb, &ps), join(&cb, &ca, &ps));
        let j = join(&ca, &ca, &ps);
        prop_assert_eq!(j, ca);
    }

    /// Join only loses precision: every definite value surviving the join
    /// agrees with the corresponding value in each input that has the node.
    #[test]
    fn join_weakens_pointwise(a in arb_structure(), b in arb_structure()) {
        let ps = preds();
        let ca = canonicalize(&a, &ps);
        let cb = canonicalize(&b, &ps);
        let j = join(&ca, &cb, &ps);
        // for every node of `ca`, find its signature-mate in the join and
        // check information-order weakening on unary abstraction preds
        for u in 0..ca.universe_len() {
            let sig = signature(&ca, &ps, u);
            if let Some(w) = (0..j.universe_len()).find(|&w| {
                // compare abstraction signatures up to information widening
                signature(&j, &ps, w)
                    .iter()
                    .zip(sig.iter())
                    .all(|(jv, av)| av.refines(*jv))
            }) {
                let _ = w; // existence is the property
            } else {
                return Err(TestCaseError::fail(format!(
                    "node {u} of the left input has no weakened counterpart"
                )));
            }
        }
    }

    /// Coerce on a unique predicate leaves at most one possibly-set
    /// individual definite-1 and never *invents* truth.
    #[test]
    fn coerce_invariants(s in arb_structure()) {
        let ps = preds();
        let mut t = s.clone();
        if !coerce(&mut t, &ps) {
            return Ok(()); // structure discarded as infeasible
        }
        for p in [0usize, 1] {
            let ones = (0..t.universe_len())
                .filter(|&u| t.get1(p, u) == Kleene::True)
                .count();
            prop_assert!(ones <= 1, "unique predicate with {ones} definite holders");
        }
        // no 0 became 1 and no 1 became 0 (repair only sharpens 1/2)
        for p in [0usize, 1, 2, 5] {
            for u in 0..t.universe_len() {
                let (old, new) = (s.get1(p, u), t.get1(p, u));
                if old != Kleene::Unknown {
                    prop_assert_eq!(old, new);
                }
            }
        }
    }
}
