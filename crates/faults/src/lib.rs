//! Resource governor and deterministic fault injection.
//!
//! A certifier must *fail closed*: arbitrary client text or a pathological
//! spec may make a fixpoint enormous, but it must never make the pipeline
//! panic, hang, or silently report a wrong verdict. This crate provides the
//! two mechanisms the rest of the workspace builds its resilience layer on:
//!
//! * **[`Budget`] / [`Meter`]** — a shared resource governor (step count,
//!   wall-clock deadline, state-set size) threaded through every solver
//!   fixpoint. Exhaustion surfaces as a typed [`Exhaustion`] value which the
//!   engines degrade into an *inconclusive* verdict: a sound "cannot
//!   certify", mirroring the conservative-analysis contract of the paper.
//!   The default budget is unlimited and costs one predictable branch per
//!   fixpoint step.
//! * **Named fault-injection points** — deterministic, env-toggled failures
//!   (`CANVAS_FAULT=truncate-input|solver-abort|budget-trip|oracle-death|cache-corrupt|conn-drop|slow-client|queue-full`)
//!   that let CI prove each class of fault surfaces as a structured error or
//!   inconclusive verdict, never a crash. Injection is off unless explicitly
//!   requested, and each point fires identically on every run.
//!
//! The crate is dependency-free so every layer (frontend, solvers, engines,
//! suite driver, binaries) can use it without cycles.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// Resource limits for one certification run.
///
/// A budget is *shared semantics, local accounting*: each solver invocation
/// creates its own [`Meter`] from the budget, so `max_steps` bounds every
/// individual fixpoint (not their sum) while `deadline` is an absolute
/// instant and therefore bounds the run as a whole.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum fixpoint steps per solver invocation (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Absolute wall-clock deadline (`None` = unlimited).
    pub deadline: Option<Instant>,
    /// Maximum abstract-state-set size per program point (`None` =
    /// unlimited). Only the state-set engines (relational, TVLA) consult it.
    pub max_states: Option<usize>,
}

impl Budget {
    /// No limits: every check is a single untaken branch.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget { max_steps: None, deadline: None, max_states: None }
    }

    /// True if no limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.deadline.is_none() && self.max_states.is_none()
    }

    /// Bounds each fixpoint to `n` steps.
    #[must_use]
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Sets an absolute deadline `ms` milliseconds from now.
    ///
    /// The deadline is anchored at the moment this is called (typically CLI
    /// parse time), so later pipeline stages inherit however much of the
    /// allowance is left.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Instant::now() + std::time::Duration::from_millis(ms));
        self
    }

    /// Sets an absolute deadline at a pre-computed instant.
    ///
    /// The serve front-end anchors the deadline at *admission* time, so a
    /// request that waited in the bounded queue inherits only whatever
    /// allowance is left when a worker finally picks it up.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Bounds per-point abstract state sets to `n` states.
    #[must_use]
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = Some(n);
        self
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Why a governed fixpoint stopped early.
///
/// This is not an error in the "something broke" sense: the solver state is
/// simply incomplete, and the caller must degrade to an inconclusive
/// verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Exhaustion {
    /// The per-invocation step budget ran out.
    Steps {
        /// The configured limit.
        limit: u64,
    },
    /// The absolute wall-clock deadline passed.
    Deadline,
    /// A per-point abstract state set outgrew the governor limit.
    States {
        /// The configured limit.
        limit: usize,
        /// The size that tripped it.
        seen: usize,
    },
    /// The `budget-trip` fault-injection point fired.
    Injected,
}

impl Exhaustion {
    /// Human-readable reason, used verbatim in `Inconclusive` verdicts.
    #[must_use]
    pub fn reason(&self) -> String {
        match self {
            Exhaustion::Steps { limit } => format!("step budget of {limit} exhausted"),
            Exhaustion::Deadline => "wall-clock deadline exceeded".to_string(),
            Exhaustion::States { limit, seen } => {
                format!("state budget of {limit} exceeded ({seen} states)")
            }
            Exhaustion::Injected => "injected budget-trip fault".to_string(),
        }
    }
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason())
    }
}

impl std::error::Error for Exhaustion {}

/// Per-invocation accountant for a [`Budget`].
///
/// Solvers call [`Meter::tick`] once per fixpoint step and
/// [`Meter::check_states`] when a state set grows. An unarmed meter (no
/// limits, no injected trip) reduces both to a single branch, keeping the
/// governed hot loops within the telemetry-overhead budget.
#[derive(Debug)]
pub struct Meter {
    steps: Cell<u64>,
    max_steps: u64,
    deadline: Option<Instant>,
    max_states: usize,
    armed: bool,
    trip: bool,
}

impl Meter {
    /// Builds a meter for `budget`, arming it if any limit is set or the
    /// `budget-trip` injection point is active.
    #[must_use]
    pub fn new(budget: Budget) -> Self {
        let trip = active(Fault::BudgetTrip);
        Meter {
            steps: Cell::new(0),
            max_steps: budget.max_steps.unwrap_or(u64::MAX),
            deadline: budget.deadline,
            max_states: budget.max_states.unwrap_or(usize::MAX),
            armed: trip || !budget.is_unlimited(),
            trip,
        }
    }

    /// A meter that can never trip — not even under fault injection.
    ///
    /// Used by the legacy infallible solver entry points so their signatures
    /// (and the unit tests pinned to them) stay unchanged.
    #[must_use]
    pub fn disarmed() -> Self {
        Meter {
            steps: Cell::new(0),
            max_steps: u64::MAX,
            deadline: None,
            max_states: usize::MAX,
            armed: false,
            trip: false,
        }
    }

    /// Accounts one fixpoint step.
    ///
    /// # Errors
    ///
    /// Returns the [`Exhaustion`] that tripped, if any limit did.
    #[inline]
    pub fn tick(&self) -> Result<(), Exhaustion> {
        if !self.armed {
            return Ok(());
        }
        self.tick_armed()
    }

    #[cold]
    fn tick_armed(&self) -> Result<(), Exhaustion> {
        if self.trip {
            return Err(Exhaustion::Injected);
        }
        let steps = self.steps.get() + 1;
        self.steps.set(steps);
        if steps > self.max_steps {
            return Err(Exhaustion::Steps { limit: self.max_steps });
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Exhaustion::Deadline);
            }
        }
        Ok(())
    }

    /// Checks a state-set size against the governor state budget.
    ///
    /// # Errors
    ///
    /// Returns [`Exhaustion::States`] when `seen` exceeds the limit.
    #[inline]
    pub fn check_states(&self, seen: usize) -> Result<(), Exhaustion> {
        if !self.armed || seen <= self.max_states {
            return Ok(());
        }
        Err(Exhaustion::States { limit: self.max_states, seen })
    }

    /// Steps accounted so far (0 while unarmed).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }
}

// ---------------------------------------------------------------------------
// Process-default budget
// ---------------------------------------------------------------------------

static PROCESS_BUDGET: OnceLock<Budget> = OnceLock::new();

/// Installs the process-wide default budget (read by certifier
/// constructors). First caller wins; returns `false` if one was already set.
pub fn set_process_budget(budget: Budget) -> bool {
    PROCESS_BUDGET.set(budget).is_ok()
}

/// The process-wide default budget (unlimited unless
/// [`set_process_budget`] was called).
#[must_use]
pub fn process_budget() -> Budget {
    PROCESS_BUDGET.get().copied().unwrap_or_else(Budget::unlimited)
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A named deterministic fault-injection point.
///
/// Each point models one class of production failure; CI runs the evaluation
/// under every point and asserts the pipeline surfaces a structured error or
/// an inconclusive verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Frontend hands the parsers a prefix of the input (mid-token, but
    /// always on a char boundary): models a truncated upload.
    TruncateInput,
    /// Every solver entry point panics: models a solver bug, proving the
    /// engine-registry `catch_unwind` isolation works.
    SolverAbort,
    /// Every armed meter trips immediately: models resource exhaustion,
    /// proving budget trips degrade to inconclusive verdicts.
    BudgetTrip,
    /// The suite oracle's exploration thread panics: models worker death,
    /// proving thread failures surface as oracle errors.
    OracleDeath,
    /// The certificate cache sees a corrupted on-disk store: models a
    /// truncated or bit-rotted cache file, proving the cache degrades to a
    /// cold miss instead of erroring out.
    CacheCorrupt,
    /// The serve front-end's writer tears the connection mid-response:
    /// models a client that vanished, proving a torn connection poisons
    /// only itself.
    ConnDrop,
    /// The serve front-end's writer stalls past the write timeout: models a
    /// client that stopped reading, proving slow readers cannot wedge a
    /// worker.
    SlowClient,
    /// The serve admission queue reports full on every enqueue: models a
    /// saturated daemon, proving admission rejection sheds in-band.
    QueueFull,
    /// One fleet worker dies mid-corpus: models a crashed shard in a
    /// corpus-scale run, proving shard death poisons only that shard (its
    /// in-flight program is lost; the rest of its partition is stolen).
    ShardDeath,
}

impl Fault {
    /// Every injection point, in catalog order.
    pub const ALL: [Fault; 9] = [
        Fault::TruncateInput,
        Fault::SolverAbort,
        Fault::BudgetTrip,
        Fault::OracleDeath,
        Fault::CacheCorrupt,
        Fault::ConnDrop,
        Fault::SlowClient,
        Fault::QueueFull,
        Fault::ShardDeath,
    ];

    /// The `CANVAS_FAULT` name of this point.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fault::TruncateInput => "truncate-input",
            Fault::SolverAbort => "solver-abort",
            Fault::BudgetTrip => "budget-trip",
            Fault::OracleDeath => "oracle-death",
            Fault::CacheCorrupt => "cache-corrupt",
            Fault::ConnDrop => "conn-drop",
            Fault::SlowClient => "slow-client",
            Fault::QueueFull => "queue-full",
            Fault::ShardDeath => "shard-death",
        }
    }

    /// Parses a `CANVAS_FAULT` name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Fault> {
        Fault::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Forced fault for in-process tests: 0 = follow the environment,
/// `fault as u8 + 1` = that fault, `u8::MAX` = forced off.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Programmatically forces an injection point on (`Some`) or all points off
/// (`None`), overriding `CANVAS_FAULT`. Test hook; process-global, so tests
/// using it must serialize. Call [`unforce`] to restore env-driven behavior.
pub fn force(fault: Option<Fault>) {
    let code = match fault {
        Some(f) => f as u8 + 1,
        None => u8::MAX,
    };
    FORCED.store(code, Ordering::SeqCst);
}

/// Clears any [`force`] override, restoring `CANVAS_FAULT` control.
pub fn unforce() {
    FORCED.store(0, Ordering::SeqCst);
}

fn env_fault() -> Option<Fault> {
    static ENV: OnceLock<Option<Fault>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("CANVAS_FAULT").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        match Fault::from_name(raw) {
            Some(f) => Some(f),
            None => {
                let known: Vec<&str> = Fault::ALL.iter().map(|f| f.name()).collect();
                canvas_telemetry::events::warn(
                    "faults.env",
                    format!("unknown CANVAS_FAULT {raw:?} ignored (known: {})", known.join(", ")),
                );
                None
            }
        }
    })
}

/// True if the named injection point is active (forced or via
/// `CANVAS_FAULT`).
#[must_use]
pub fn active(fault: Fault) -> bool {
    match FORCED.load(Ordering::SeqCst) {
        0 => env_fault() == Some(fault),
        u8::MAX => false,
        code => code == fault as u8 + 1,
    }
}

/// `truncate-input` injection point: returns a char-boundary-safe prefix of
/// `src` when active, `src` unchanged otherwise.
#[must_use]
pub fn truncate_input(src: &str) -> &str {
    if !active(Fault::TruncateInput) {
        return src;
    }
    let mut cut = src.len() / 2;
    while cut > 0 && !src.is_char_boundary(cut) {
        cut -= 1;
    }
    &src[..cut]
}

/// `solver-abort` injection point: panics when active. Placed at every
/// governed solver entry so the engine isolation layer is exercised.
pub fn solver_abort() {
    assert!(!active(Fault::SolverAbort), "injected fault: solver-abort");
}

/// `oracle-death` injection point: panics when active. Runs on the oracle's
/// exploration thread so the spawning side must survive a dead worker.
pub fn oracle_death() {
    assert!(!active(Fault::OracleDeath), "injected fault: oracle-death");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let m = Meter::new(Budget::unlimited());
        for _ in 0..10_000 {
            m.tick().unwrap();
        }
        m.check_states(usize::MAX).unwrap();
        assert_eq!(m.steps(), 0, "unarmed meters skip accounting");
    }

    #[test]
    fn step_budget_trips_with_reason() {
        let m = Meter::new(Budget::unlimited().with_max_steps(3));
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        let ex = m.tick().unwrap_err();
        assert_eq!(ex, Exhaustion::Steps { limit: 3 });
        assert!(ex.reason().contains("step budget"));
    }

    #[test]
    fn expired_deadline_trips() {
        let m = Meter::new(Budget::unlimited().with_deadline_ms(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(m.tick().unwrap_err(), Exhaustion::Deadline);
    }

    #[test]
    fn state_budget_trips_with_sizes() {
        let m = Meter::new(Budget::unlimited().with_max_states(8));
        m.check_states(8).unwrap();
        let ex = m.check_states(9).unwrap_err();
        assert_eq!(ex, Exhaustion::States { limit: 8, seen: 9 });
        assert!(ex.reason().contains("state budget"));
    }

    #[test]
    fn fault_names_round_trip() {
        for f in Fault::ALL {
            assert_eq!(Fault::from_name(f.name()), Some(f));
        }
        assert_eq!(Fault::from_name("no-such-point"), None);
    }

    #[test]
    fn forced_faults_toggle_and_truncate_is_boundary_safe() {
        // Serialized within this one test: `force` is process-global.
        force(Some(Fault::TruncateInput));
        assert!(active(Fault::TruncateInput));
        assert!(!active(Fault::SolverAbort));
        let multibyte = "ab\u{00e9}\u{00e9}"; // 6 bytes, cut lands mid-char
        let cut = truncate_input(multibyte);
        assert!(multibyte.starts_with(cut) && cut.len() < multibyte.len());
        force(Some(Fault::BudgetTrip));
        let m = Meter::new(Budget::unlimited());
        assert_eq!(m.tick().unwrap_err(), Exhaustion::Injected);
        force(None);
        assert!(!active(Fault::BudgetTrip));
        assert_eq!(truncate_input("abc"), "abc");
        unforce();
    }
}
