//! Zero-dependency structured event log (`canvas-log/1`).
//!
//! The frontier used to report exceptional conditions with ad-hoc
//! `eprintln!` warnings — fine for a terminal, useless for a daemon. This
//! module gives every crate a leveled, structured log channel:
//!
//! * records carry a monotonic nanosecond timestamp (since the process's
//!   first event), a process-unique sequence number, a level, a `target`
//!   (the emitting subsystem), a message, optional structured fields, and
//!   the span/parent-span ids of the [`crate::scope`] active on the
//!   emitting thread — so a serve worker's warnings correlate with the
//!   request that caused them;
//! * records land in a bounded in-memory ring (drop-oldest, with a dropped
//!   counter) and, when [`log_to_file`] is armed, are appended as NDJSON —
//!   one `canvas-log/1` object per line — which is what the `--log-json
//!   PATH` CLI flags wire up;
//! * `warn`/`error` records are *also* rendered to stderr in the
//!   traditional `warning: ...` / `error: ...` form unless
//!   [`set_stderr_echo`]`(false)`, so TTY behaviour is unchanged;
//! * sequence numbers and timestamps are assigned under the sink lock, so
//!   the NDJSON file and the drained ring are totally ordered by
//!   `(ts_ns, seq)` even when serve workers log concurrently.
//!
//! Filtering is by level: [`Level::Warn`] and up are logged by default;
//! daemons and `--log-json` users raise it to [`Level::Info`] or
//! [`Level::Debug`] via [`set_min_level`]. The log is independent of the
//! metrics and tracing switches — a disabled-telemetry process still
//! reports corruption warnings.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Schema tag written as the `v` field of every NDJSON record.
pub const SCHEMA: &str = "canvas-log/1";

/// Ring-buffer capacity; older records are dropped (and counted) past this.
pub const RING_CAPACITY: usize = 4096;

/// Event severity. Ordering: `Error < Warn < Info < Debug` (rank order —
/// a level is logged when its rank is ≤ the configured minimum level's).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// The operation failed; the process degraded or refused.
    Error,
    /// Something unexpected was tolerated (corruption skipped, fallback).
    Warn,
    /// Request-level lifecycle records.
    Info,
    /// High-volume diagnostic detail.
    Debug,
}

impl Level {
    /// The lowercase schema name (`"error"`, `"warn"`, `"info"`, `"debug"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// The traditional stderr prefix (`error:` / `warning:` …).
    fn stderr_prefix(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warning",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a schema name back into a level.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn rank(self) -> u8 {
        match self {
            Level::Error => 0,
            Level::Warn => 1,
            Level::Info => 2,
            Level::Debug => 3,
        }
    }

    fn from_rank(r: u8) -> Level {
        match r {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// A structured field value (the log carries no floats by design — encode
/// ratios as basis points or scaled integers).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A string field.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One structured log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Process-unique sequence number (assigned under the sink lock).
    pub seq: u64,
    /// Nanoseconds since the process's first logged event.
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, e.g. `incr.store` or `suite.threads`.
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Span id of the scope active on the emitting thread (0 = none).
    pub span: u64,
    /// Span id of the enclosing scope (0 = none).
    pub parent: u64,
    /// Structured fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Serialises the record as one `canvas-log/1` NDJSON line (no trailing
    /// newline). `span`/`parent` are omitted when 0, `fields` when empty.
    pub fn ndjson(&self) -> String {
        let mut out = String::with_capacity(96 + self.message.len());
        let _ = write!(
            out,
            "{{\"v\":{},\"seq\":{},\"ts_ns\":{},\"level\":{},\"target\":{},\"msg\":{}",
            crate::trace::json_string(SCHEMA),
            self.seq,
            self.ts_ns,
            crate::trace::json_string(self.level.name()),
            crate::trace::json_string(self.target),
            crate::trace::json_string(&self.message),
        );
        if self.span != 0 {
            let _ = write!(out, ",\"span\":{}", self.span);
        }
        if self.parent != 0 {
            let _ = write!(out, ",\"parent\":{}", self.parent);
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (k, (key, val)) in self.fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", crate::trace::json_string(key));
                match val {
                    FieldValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::Str(s) => out.push_str(&crate::trace::json_string(s)),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

struct Sink {
    ring: VecDeque<Event>,
    dropped: u64,
    next_seq: u64,
    file: Option<BufWriter<File>>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink { ring: VecDeque::with_capacity(64), dropped: 0, next_seq: 1, file: None })
    })
}

/// Panic-tolerant lock: logging must keep working after a worker panicked
/// while holding the sink (the records are plain data, never half-written).
fn lock_sink() -> MutexGuard<'static, Sink> {
    sink().lock().unwrap_or_else(|e| e.into_inner())
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static MIN_LEVEL: AtomicU8 = AtomicU8::new(1); // Warn
static STDERR_ECHO: AtomicBool = AtomicBool::new(true);

/// Sets the minimum level that is logged (default [`Level::Warn`]).
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level.rank(), Ordering::Release);
}

/// The current minimum logged level.
pub fn min_level() -> Level {
    Level::from_rank(MIN_LEVEL.load(Ordering::Relaxed))
}

/// Whether a record at `level` would currently be logged.
#[inline]
pub fn would_log(level: Level) -> bool {
    level.rank() <= MIN_LEVEL.load(Ordering::Relaxed)
}

/// Enables (default) or disables mirroring warn/error records to stderr in
/// the traditional `warning: ...` / `error: ...` rendering.
pub fn set_stderr_echo(on: bool) {
    STDERR_ECHO.store(on, Ordering::Release);
}

/// Arms the NDJSON file sink: every subsequent record is appended to
/// `path` as one `canvas-log/1` line (the file is truncated first).
pub fn log_to_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    lock_sink().file = Some(BufWriter::new(file));
    Ok(())
}

/// Disarms the file sink, flushing buffered records.
pub fn close_file() {
    if let Some(mut f) = lock_sink().file.take() {
        let _ = f.flush();
    }
}

/// Cumulative count of records dropped from the ring buffer.
pub fn dropped() -> u64 {
    lock_sink().dropped
}

/// Drains the ring buffer, oldest first (totally ordered by `(ts_ns, seq)`).
pub fn take_events() -> Vec<Event> {
    let mut s = lock_sink();
    let mut out: Vec<Event> = s.ring.drain(..).collect();
    out.sort_by_key(|e| (e.ts_ns, e.seq));
    out
}

/// Logs a record. Prefer the level helpers ([`warn`], [`info_with`], …).
pub fn log(
    level: Level,
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    if !would_log(level) {
        return;
    }
    let message = message.into();
    let span = crate::scope::current_span();
    let parent = crate::scope::current_parent();
    // Timestamp and sequence are assigned inside the critical section so the
    // file and ring orders agree and are (ts_ns, seq)-monotone.
    let mut s = lock_sink();
    let ts_ns = epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let seq = s.next_seq;
    s.next_seq += 1;
    let ev = Event { seq, ts_ns, level, target, message, span, parent, fields };
    if let Some(f) = s.file.as_mut() {
        let ok = writeln!(f, "{}", ev.ndjson()).and_then(|_| f.flush());
        if ok.is_err() {
            // A dead sink (disk full, closed fd) must not take the process
            // down or spam: drop it and fall back to the ring + stderr.
            s.file = None;
            eprintln!("warning: structured log sink failed; disabling --log-json output");
        }
    }
    if s.ring.len() >= RING_CAPACITY {
        s.ring.pop_front();
        s.dropped += 1;
    }
    let echo = (level <= Level::Warn && STDERR_ECHO.load(Ordering::Relaxed))
        .then(|| format!("{}: {}", level.stderr_prefix(), ev.message));
    s.ring.push_back(ev);
    drop(s);
    if let Some(line) = echo {
        eprintln!("{line}");
    }
}

/// Logs an error-level record.
pub fn error(target: &'static str, message: impl Into<String>) {
    log(Level::Error, target, message, Vec::new());
}

/// Logs a warn-level record (echoed to stderr as `warning: ...`).
pub fn warn(target: &'static str, message: impl Into<String>) {
    log(Level::Warn, target, message, Vec::new());
}

/// Logs a warn-level record with structured fields.
pub fn warn_with(
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    log(Level::Warn, target, message, fields);
}

/// Logs an info-level record (ring/file only; never echoed to stderr).
pub fn info(target: &'static str, message: impl Into<String>) {
    log(Level::Info, target, message, Vec::new());
}

/// Logs an info-level record with structured fields.
pub fn info_with(
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    log(Level::Info, target, message, fields);
}

/// Logs a debug-level record with structured fields.
pub fn debug_with(
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    log(Level::Debug, target, message, fields);
}

/// Allocates a fresh span id from the same sequence [`crate::scope`] uses,
/// for callers that want to correlate events without a metrics scope.
pub fn next_span_id() -> u64 {
    crate::scope::fresh_span_id()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn levels_filter_and_parse() {
        assert!(Level::Error < Level::Warn && Level::Warn < Level::Info);
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
    }

    #[test]
    fn records_filter_by_min_level_and_drain_ordered() {
        let _x = exclusive();
        set_stderr_echo(false);
        take_events();
        set_min_level(Level::Warn);
        info("test.events", "filtered out");
        warn("test.events", "kept");
        set_min_level(Level::Info);
        info_with("test.events", "kept too", vec![("n", FieldValue::U64(7))]);
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].message, "kept");
        assert_eq!(evs[1].message, "kept too");
        assert!(evs[0].seq < evs[1].seq);
        assert!(evs[0].ts_ns <= evs[1].ts_ns);
        set_min_level(Level::Warn);
        set_stderr_echo(true);
    }

    #[test]
    fn ndjson_shape_omits_empty_parts_and_escapes() {
        let ev = Event {
            seq: 3,
            ts_ns: 1234,
            level: Level::Warn,
            target: "incr.store",
            message: "bad \"line\"".to_string(),
            span: 0,
            parent: 0,
            fields: Vec::new(),
        };
        assert_eq!(
            ev.ndjson(),
            "{\"v\":\"canvas-log/1\",\"seq\":3,\"ts_ns\":1234,\"level\":\"warn\",\
             \"target\":\"incr.store\",\"msg\":\"bad \\\"line\\\"\"}"
        );
        let ev2 = Event {
            span: 9,
            parent: 4,
            fields: vec![("hits", FieldValue::U64(2)), ("path", FieldValue::Str("a/b".into()))],
            ..ev
        };
        let line = ev2.ndjson();
        assert!(line.contains("\"span\":9,\"parent\":4"), "{line}");
        assert!(line.contains("\"fields\":{\"hits\":2,\"path\":\"a/b\"}"), "{line}");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let _x = exclusive();
        set_stderr_echo(false);
        take_events();
        set_min_level(Level::Debug);
        let dropped_before = dropped();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            debug_with("test.events", format!("e{i}"), vec![("i", FieldValue::U64(i))]);
        }
        assert_eq!(dropped() - dropped_before, 10);
        let evs = take_events();
        assert_eq!(evs.len(), RING_CAPACITY);
        assert_eq!(evs[0].message, "e10");
        set_min_level(Level::Warn);
        set_stderr_echo(true);
    }

    #[test]
    fn concurrent_emitters_drain_totally_ordered() {
        let _x = exclusive();
        set_stderr_echo(false);
        take_events();
        set_min_level(Level::Info);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..50u64 {
                        info_with(
                            "test.events",
                            "tick",
                            vec![("t", FieldValue::U64(t)), ("i", FieldValue::U64(i))],
                        );
                    }
                });
            }
        });
        let evs = take_events();
        assert_eq!(evs.len(), 200);
        for w in evs.windows(2) {
            assert!((w[0].ts_ns, w[0].seq) <= (w[1].ts_ns, w[1].seq));
            assert!(w[0].seq != w[1].seq);
        }
        set_min_level(Level::Warn);
        set_stderr_echo(true);
    }

    #[test]
    fn scope_span_ids_attach_to_records() {
        let _x = exclusive();
        set_stderr_echo(false);
        take_events();
        let scope = crate::Scope::new("req");
        {
            let _g = scope.enter();
            warn("test.events", "inside");
        }
        warn("test.events", "outside");
        let evs = take_events();
        assert_eq!(evs[0].span, scope.span_id());
        assert_eq!(evs[1].span, 0);
        set_stderr_echo(true);
    }
}
