//! Request-scoped metric attribution.
//!
//! The crate root's counters, timers, and histograms are process-global:
//! under the parallel suite driver or the `canvas serve` worker pool,
//! concurrent cells smear their work units together. A [`Scope`] is a
//! cheap, thread-local metrics context carrying a request/cell label: while
//! a scope is entered on a thread, every counter add and timer/histogram
//! sample on that thread is *additionally* attributed to the scope, and can
//! be read back as a [`ScopeSnapshot`] when the request completes.
//!
//! # Rollup invariant
//!
//! Scopes never intercept updates — the global statics are always updated
//! eagerly and the scope capture is purely additive. Therefore, for any
//! counter, over any measurement window:
//!
//! ```text
//! global total == Σ per-scope totals + updates made outside any scope
//! ```
//!
//! holds *by construction*, including when a scope is dropped mid-panic
//! (a poisoned suite cell): whatever the cell managed to count before the
//! panic is already in both the scope map and the global, and
//! [`Scope::snapshot`] remains readable from the supervising thread.
//!
//! # Cost model
//!
//! While telemetry is disabled every instrument still short-circuits on the
//! single relaxed load of the global switch — scopes add nothing to the
//! disabled path. While enabled, attribution costs one thread-local borrow
//! plus, when a scope is actually active, one mutex-guarded BTree update;
//! hot loops that batch-publish (the solvers accumulate locally and `add`
//! once) amortise this to a handful of updates per analysis.
//!
//! Nested scopes attribute to the *innermost* active scope only; the outer
//! scope resumes when the inner guard drops.
//!
//! # Example
//!
//! ```
//! use canvas_telemetry as telemetry;
//!
//! static WORK: telemetry::Counter = telemetry::Counter::new("scope_doc.work");
//!
//! telemetry::set_enabled(true);
//! let scope = telemetry::Scope::new("request-1");
//! {
//!     let _g = scope.enter();
//!     WORK.add(3);
//! }
//! assert_eq!(scope.snapshot().counter("scope_doc.work"), Some(3));
//! telemetry::set_enabled(false);
//! telemetry::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Accumulated samples for one timer/histogram name inside a scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct SampleAcc {
    count: u64,
    sum: u64,
    max: u64,
}

struct ScopeData {
    label: String,
    span_id: u64,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    samples: Mutex<BTreeMap<&'static str, SampleAcc>>,
}

/// Panic-tolerant lock: a scope map mutex poisoned by a panicking cell must
/// stay readable so the supervisor can still roll the partial work up.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Innermost-last stack of active scopes on this thread.
    static STACK: RefCell<Vec<Arc<ScopeData>>> = const { RefCell::new(Vec::new()) };
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh span id from the scope sequence (used by
/// [`crate::events::next_span_id`] for scope-less correlation).
pub(crate) fn fresh_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// A request/cell metrics context. Create one per unit of attribution (a
/// serve request, a suite cell), [`enter`](Scope::enter) it on the worker
/// thread, and read the attributed totals back with
/// [`snapshot`](Scope::snapshot) — from any thread, at any time, including
/// after the worker panicked.
pub struct Scope {
    data: Arc<ScopeData>,
}

impl Scope {
    /// A new scope labelled `label`, with a fresh span id for correlating
    /// [`crate::events`] records emitted while the scope is active.
    pub fn new(label: impl Into<String>) -> Scope {
        Scope {
            data: Arc::new(ScopeData {
                label: label.into(),
                span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
                counters: Mutex::new(BTreeMap::new()),
                samples: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The scope's label.
    pub fn label(&self) -> &str {
        &self.data.label
    }

    /// The scope's span id (correlates with the `span` field of
    /// [`crate::events`] records emitted while the scope was active).
    pub fn span_id(&self) -> u64 {
        self.data.span_id
    }

    /// Makes this scope the active attribution target on the current thread
    /// until the returned guard drops. Guards nest: the innermost active
    /// scope receives the attribution.
    pub fn enter(&self) -> ScopeGuard {
        STACK.with(|s| s.borrow_mut().push(Arc::clone(&self.data)));
        ScopeGuard { data: Arc::clone(&self.data), _not_send: PhantomData }
    }

    /// The totals attributed to this scope so far.
    pub fn snapshot(&self) -> ScopeSnapshot {
        let counters = lock(&self.data.counters).iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let samples = lock(&self.data.samples)
            .iter()
            .map(|(k, a)| ScopeSample {
                name: k.to_string(),
                count: a.count,
                sum: a.sum,
                max: a.max,
            })
            .collect();
        ScopeSnapshot {
            label: self.data.label.clone(),
            span_id: self.data.span_id,
            counters,
            samples,
        }
    }
}

/// RAII guard returned by [`Scope::enter`]; pops the scope off the
/// thread-local stack on drop (including during unwinding). Deliberately
/// `!Send`: a scope must be exited on the thread that entered it.
pub struct ScopeGuard {
    data: Arc<ScopeData>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|d| Arc::ptr_eq(d, &self.data)) {
                stack.remove(pos);
            }
        });
    }
}

/// Point-in-time totals attributed to one [`Scope`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScopeSnapshot {
    /// The scope's label.
    pub label: String,
    /// The scope's span id.
    pub span_id: u64,
    /// Counter totals attributed to the scope, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Timer/histogram samples attributed to the scope, name-sorted
    /// (timer sums are nanoseconds).
    pub samples: Vec<ScopeSample>,
}

/// Aggregated samples for one timer/histogram name within a scope.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScopeSample {
    /// Timer or histogram registry name.
    pub name: String,
    /// Number of samples attributed to the scope.
    pub count: u64,
    /// Sum of attributed samples (nanoseconds for timers).
    pub sum: u64,
    /// Maximum attributed sample.
    pub max: u64,
}

impl ScopeSnapshot {
    /// The attributed total of a counter by name, if any updates landed.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The attributed samples of a timer/histogram by name, if any landed.
    pub fn sample(&self, name: &str) -> Option<&ScopeSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Sum of attributed nanoseconds for a timer name, or 0.
    pub fn sample_sum(&self, name: &str) -> u64 {
        self.sample(name).map_or(0, |s| s.sum)
    }
}

/// Attributes a counter update to the innermost active scope, if any.
#[inline]
pub(crate) fn record_counter(name: &'static str, n: u64) {
    STACK.with(|s| {
        if let Some(top) = s.borrow().last() {
            *lock(&top.counters).entry(name).or_insert(0) += n;
        }
    });
}

/// Attributes a timer/histogram sample to the innermost active scope.
#[inline]
pub(crate) fn record_sample(name: &'static str, v: u64) {
    STACK.with(|s| {
        if let Some(top) = s.borrow().last() {
            let mut samples = lock(&top.samples);
            let acc = samples.entry(name).or_default();
            acc.count += 1;
            acc.sum += v;
            acc.max = acc.max.max(v);
        }
    });
}

/// The span id of the innermost active scope on this thread (0 = none).
pub fn current_span() -> u64 {
    STACK.with(|s| s.borrow().last().map_or(0, |d| d.span_id))
}

/// The span id of the next-outer active scope on this thread (0 = none).
pub fn current_parent() -> u64 {
    STACK.with(|s| {
        let stack = s.borrow();
        if stack.len() >= 2 {
            stack[stack.len() - 2].span_id
        } else {
            0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, Counter, Histogram, Timer};
    use std::time::Duration;

    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    static S_WORK: Counter = Counter::new("scope_test.work");
    static S_TIME: Timer = Timer::new("scope_test.time");
    static S_HIST: Histogram = Histogram::new("scope_test.hist");

    #[test]
    fn scope_attributes_counters_and_samples() {
        let _x = exclusive();
        set_enabled(true);
        let scope = Scope::new("req-1");
        {
            let _g = scope.enter();
            S_WORK.add(5);
            S_TIME.observe(Duration::from_nanos(1500));
            S_HIST.record(42);
        }
        S_WORK.add(9); // outside the scope: global only
        let snap = scope.snapshot();
        assert_eq!(snap.counter("scope_test.work"), Some(5));
        assert_eq!(snap.sample("scope_test.time").map(|s| (s.count, s.sum)), Some((1, 1500)));
        assert_eq!(snap.sample("scope_test.hist").map(|s| s.max), Some(42));
        assert_eq!(snap.sample_sum("scope_test.absent"), 0);
        set_enabled(false);
        crate::reset();
    }

    #[test]
    fn nested_scopes_attribute_to_the_innermost() {
        let _x = exclusive();
        set_enabled(true);
        let outer = Scope::new("outer");
        let inner = Scope::new("inner");
        {
            let _og = outer.enter();
            S_WORK.add(1);
            {
                let _ig = inner.enter();
                S_WORK.add(10);
                assert_eq!(current_span(), inner.span_id());
                assert_eq!(current_parent(), outer.span_id());
            }
            S_WORK.add(2);
        }
        assert_eq!(current_span(), 0);
        assert_eq!(outer.snapshot().counter("scope_test.work"), Some(3));
        assert_eq!(inner.snapshot().counter("scope_test.work"), Some(10));
        set_enabled(false);
        crate::reset();
    }

    #[test]
    fn disabled_telemetry_attributes_nothing() {
        let _x = exclusive();
        set_enabled(false);
        let scope = Scope::new("dark");
        let _g = scope.enter();
        S_WORK.add(100);
        assert_eq!(scope.snapshot().counter("scope_test.work"), None);
    }

    #[test]
    fn a_panicking_cell_still_rolls_up() {
        let _x = exclusive();
        set_enabled(true);
        let scope = Scope::new("poisoned");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = scope.enter();
            S_WORK.add(7);
            panic!("cell dies");
        }));
        assert!(r.is_err());
        assert_eq!(current_span(), 0, "guard popped during unwind");
        assert_eq!(scope.snapshot().counter("scope_test.work"), Some(7));
        set_enabled(false);
        crate::reset();
    }
}
