//! Structured begin/end trace events with Chrome Trace Format export.
//!
//! Complements the aggregate counters/timers in the crate root with *per
//! occurrence* structural observability: every solver phase, per-method
//! certification, and fixpoint completion can emit paired `B`/`E` (and
//! point-in-time `i`) events onto a process-global buffer, which
//! [`export_chrome_json`] serialises as Chrome Trace Format JSON — the
//! `{"traceEvents": [...]}` flavour that `chrome://tracing` and Perfetto
//! load directly.
//!
//! Tracing is **off by default** and independent of the metrics switch:
//! while off, every emit point is a single relaxed atomic load. [`Timer`]
//! spans double as trace spans automatically, so the existing
//! instrumentation sites light up without code changes.
//!
//! [`Timer`]: crate::Timer

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turns trace-event collection on or off (process-global). Off by default.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Release);
}

/// Whether trace-event collection is currently enabled.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One trace event (Chrome Trace Format semantics).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Event name (span or instant label).
    pub name: String,
    /// Category, e.g. `solver` or `certify`.
    pub cat: &'static str,
    /// Phase: `B` (begin), `E` (end), or `i` (instant).
    pub ph: char,
    /// Microseconds since the process's first event.
    pub ts_us: u64,
    /// Emitting thread (stable small integer per thread).
    pub tid: u64,
    /// Process-unique emission sequence number; assigned together with
    /// `ts_us` under the buffer lock, so `(ts_us, seq)` totally orders
    /// events even when serve workers emit concurrently.
    pub seq: u64,
    /// Extra `args` key/value pairs.
    pub args: Vec<(&'static str, u64)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn events() -> &'static Mutex<Vec<TraceEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn emit(name: String, cat: &'static str, ph: char, args: Vec<(&'static str, u64)>) {
    static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
    let tid = TID.with(|t| *t);
    // Timestamp and sequence are taken inside the critical section so the
    // buffer order agrees with (ts_us, seq) across concurrent emitters.
    let mut buf = events().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let ts_us = (epoch().elapsed().as_nanos() / 1_000) as u64;
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    buf.push(TraceEvent { name, cat, ph, ts_us, tid, seq, args });
}

/// Emits a begin event (no-op while tracing is off).
#[inline]
pub fn begin(name: &str, cat: &'static str) {
    if tracing() {
        emit(name.to_string(), cat, 'B', Vec::new());
    }
}

/// Emits the matching end event (no-op while tracing is off).
#[inline]
pub fn end(name: &str, cat: &'static str) {
    if tracing() {
        emit(name.to_string(), cat, 'E', Vec::new());
    }
}

/// Emits a point-in-time event with `args` (no-op while tracing is off).
#[inline]
pub fn instant(name: &str, cat: &'static str, args: &[(&'static str, u64)]) {
    if tracing() {
        emit(name.to_string(), cat, 'i', args.to_vec());
    }
}

/// A begin/end pair as an RAII guard; inert while tracing is off.
pub struct TraceSpan {
    name: Option<String>,
    cat: &'static str,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            emit(name, self.cat, 'E', Vec::new());
        }
    }
}

/// Starts a trace span; the end event is emitted when the guard drops.
#[inline]
pub fn span(name: &str, cat: &'static str) -> TraceSpan {
    if tracing() {
        emit(name.to_string(), cat, 'B', Vec::new());
        TraceSpan { name: Some(name.to_string()), cat }
    } else {
        TraceSpan { name: None, cat }
    }
}

/// Drains and returns all buffered events, stably ordered by
/// `(ts_us, seq)` — deterministic for golden tests regardless of how
/// worker-pool threads interleaved their emissions.
pub fn take_events() -> Vec<TraceEvent> {
    let mut evs =
        std::mem::take(&mut *events().lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    evs.sort_by_key(|e| (e.ts_us, e.seq));
    evs
}

/// Discards all buffered events.
pub fn clear() {
    take_events();
}

/// Serialises `events` as Chrome Trace Format JSON (the object form with a
/// `traceEvents` array), loadable by Perfetto and `chrome://tracing`.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (k, e) in events.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            json_string(&e.name),
            json_string(e.cat),
            e.ph,
            e.ts_us,
            e.tid
        );
        if e.ph == 'i' {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (key, val)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(key), val);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Drains the buffer and serialises it via [`chrome_json`].
pub fn export_chrome_json() -> String {
    chrome_json(&take_events())
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The buffer is process-global; serialise the tests that use it.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_by_default_is_a_no_op() {
        let _x = exclusive();
        set_tracing(false);
        clear();
        begin("x", "t");
        end("x", "t");
        instant("y", "t", &[("n", 1)]);
        drop(span("z", "t"));
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_pair_begin_and_end() {
        let _x = exclusive();
        set_tracing(true);
        clear();
        {
            let _s = span("solve", "solver");
            instant("fixpoint", "solver", &[("iterations", 7)]);
        }
        set_tracing(false);
        let evs = take_events();
        assert_eq!(evs.len(), 3);
        assert_eq!((evs[0].ph, evs[0].name.as_str()), ('B', "solve"));
        assert_eq!((evs[1].ph, evs[1].name.as_str()), ('i', "fixpoint"));
        assert_eq!((evs[2].ph, evs[2].name.as_str()), ('E', "solve"));
        assert_eq!(evs[1].args, vec![("iterations", 7)]);
        assert!(evs[0].ts_us <= evs[2].ts_us);
        assert_eq!(evs[0].tid, evs[2].tid);
    }

    #[test]
    fn a_span_started_while_on_still_ends_after_tracing_turns_off() {
        let _x = exclusive();
        set_tracing(true);
        clear();
        let s = span("late", "t");
        set_tracing(false);
        drop(s);
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].ph, 'E');
    }

    #[test]
    fn chrome_json_shape_and_escaping() {
        let evs = vec![
            TraceEvent {
                name: "a \"quoted\"\nname".into(),
                cat: "solver",
                ph: 'B',
                ts_us: 12,
                tid: 3,
                seq: 1,
                args: Vec::new(),
            },
            TraceEvent {
                name: "done".into(),
                cat: "solver",
                ph: 'i',
                ts_us: 15,
                tid: 3,
                seq: 2,
                args: vec![("work", 42)],
            },
        ];
        let json = chrome_json(&evs);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\\\"quoted\\\"\\u000aname"), "{json}");
        assert!(json.contains("\"ph\":\"i\",\"ts\":15,\"pid\":1,\"tid\":3,\"s\":\"t\""), "{json}");
        assert!(json.contains("\"args\":{\"work\":42}"), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{json}");
    }

    #[test]
    fn concurrent_emitters_drain_in_stable_ts_seq_order() {
        let _x = exclusive();
        set_tracing(true);
        clear();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100u64 {
                        instant("tick", "t", &[("i", i)]);
                    }
                });
            }
        });
        set_tracing(false);
        let evs = take_events();
        assert_eq!(evs.len(), 400);
        for w in evs.windows(2) {
            assert!((w[0].ts_us, w[0].seq) <= (w[1].ts_us, w[1].seq));
            assert_ne!(w[0].seq, w[1].seq, "seq numbers are unique");
        }
    }

    #[test]
    fn empty_export_is_valid() {
        let _x = exclusive();
        clear();
        assert_eq!(export_chrome_json(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
