//! Pipeline-phase latency timers.
//!
//! The certification pipeline has five coarse phases — client parsing,
//! boolean-program lowering, spec derivation, fixpoint solving, and
//! certificate check/replay — instrumented at their single entry points
//! (the CLI/serve frontier for parse and check-replay, `canvas-abstraction`
//! for lowering, `canvas-core` for derivation and solving; the trusted
//! `canvas-check` crate stays dependency-free, so its replay is timed at
//! the call site).
//!
//! Each phase is an ordinary [`Timer`], so samples land in the global
//! snapshot *and* attribute to the active [`crate::Scope`] — a serve
//! request's scope snapshot carries its own per-phase breakdown, which the
//! daemon echoes in-band as the response's `"stats"` object.

use crate::Timer;

/// Client-source parsing (MiniJava text → AST).
pub static PARSE: Timer = Timer::new("phase.parse");
/// Boolean-program lowering (AST + derived abstraction → boolean program).
pub static LOWER: Timer = Timer::new("phase.lower");
/// Spec derivation (EASL spec → specialized abstraction).
pub static DERIVE: Timer = Timer::new("phase.derive");
/// Fixpoint solving (per-(method, entry, engine) cell).
pub static SOLVE: Timer = Timer::new("phase.solve");
/// Certificate check/replay (independent revalidation).
pub static CHECK_REPLAY: Timer = Timer::new("phase.check_replay");

/// Registry names of all phases, pipeline order.
pub const NAMES: [&str; 5] =
    ["phase.parse", "phase.lower", "phase.derive", "phase.solve", "phase.check_replay"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_timers() {
        let timers = [&PARSE, &LOWER, &DERIVE, &SOLVE, &CHECK_REPLAY];
        for (t, n) in timers.iter().zip(NAMES) {
            assert_eq!(t.name(), n);
        }
    }
}
