//! Lightweight pipeline telemetry: counters, span timers, and log-scale
//! histograms on plain atomics, with a process-global registry.
//!
//! The crate exists so every stage of the certifier pipeline — WP
//! derivation, boolean-program translation, the dataflow and TVLA engines,
//! the parallel suite driver — can report *where work goes* without taking
//! on any dependency (the workspace builds offline) and without paying for
//! it when nobody is looking:
//!
//! * telemetry is **off by default**; every instrument checks one relaxed
//!   atomic load and returns — hot loops additionally accumulate locally
//!   and publish once at the end, so the disabled cost is a handful of
//!   branches per *analysis*, not per *operation*;
//! * metrics are `static`s declared next to the code they measure
//!   ([`Counter::new`] and [`Timer::new`] are `const`), registered lazily
//!   on first update;
//! * [`snapshot`] returns every registered metric sorted by name, so
//!   renderings are deterministic; [`reset`] zeroes values for per-run
//!   measurement windows;
//! * a [`Scope`] ([`scope`] module) attributes updates to the active
//!   request/cell in addition to the globals, so concurrent serve workers
//!   and suite cells stop smearing their work together;
//! * the [`events`] module is a zero-dep structured event log
//!   (`canvas-log/1` NDJSON) replacing ad-hoc stderr warnings, and
//!   [`phase`] holds the standard pipeline-phase latency timers.
//!
//! # Determinism
//!
//! Counters come in two flavours. *Deterministic* counters
//! ([`Counter::new`]) measure pure work — WP computations, worklist pops,
//! structures created — whose totals depend only on the inputs, not on
//! thread scheduling; CI gates these against a committed baseline.
//! *Non-deterministic* counters ([`Counter::non_deterministic`]) measure
//! scheduling-dependent effects (shared-cache hits, worker counts) and are
//! recorded but never gated, like all timings.
//!
//! # Example
//!
//! ```
//! use canvas_telemetry as telemetry;
//!
//! static POPS: telemetry::Counter = telemetry::Counter::new("example.worklist_pops");
//! static SOLVE: telemetry::Timer = telemetry::Timer::new("example.solve");
//!
//! telemetry::set_enabled(true);
//! {
//!     let _span = SOLVE.span();
//!     POPS.add(3);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("example.worklist_pops"), Some(3));
//! telemetry::set_enabled(false);
//! telemetry::reset();
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

pub mod events;
pub mod phase;
pub mod scope;
pub mod trace;

pub use scope::{Scope, ScopeGuard, ScopeSample, ScopeSnapshot};

/// Number of log₂ buckets ([`Histogram`]); covers the full `u64` range.
const BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric collection on or off (process-global). Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether metric collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

enum Metric {
    Counter(&'static Counter),
    Timer(&'static Timer),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<Metric>> {
    static REGISTRY: OnceLock<Mutex<Vec<Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(m: Metric) {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(m);
}

/// A monotonically increasing event counter.
///
/// Declare as a `static` next to the instrumented code; the counter
/// registers itself globally on first [`Counter::add`].
pub struct Counter {
    name: &'static str,
    deterministic: bool,
    value: AtomicU64,
    registered: Once,
}

impl Counter {
    /// A *deterministic* counter: its total must depend only on the work
    /// performed, never on thread scheduling (CI gates these).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, deterministic: true, value: AtomicU64::new(0), registered: Once::new() }
    }

    /// A counter whose value may legitimately vary run-to-run (cache hit
    /// ratios under racing threads, worker counts); recorded, never gated.
    pub const fn non_deterministic(name: &'static str) -> Counter {
        Counter { name, deterministic: false, value: AtomicU64::new(0), registered: Once::new() }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.registered.call_once(|| register(Metric::Counter(self)));
        self.value.fetch_add(n, Ordering::Relaxed);
        scope::record_counter(self.name, n);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// A log₂-bucketed histogram of `u64` samples (value `v` lands in bucket
/// `⌈log₂(v+1)⌉`), with exact count/sum/max on the side. Bucketed values
/// give cheap, allocation-free percentile estimates.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    registered: Once,
}

impl Histogram {
    /// A histogram with the given registry name.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// Records one sample (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.registered.call_once(|| register(Metric::Histogram(self)));
        self.record_registered(v);
        scope::record_sample(self.name, v);
    }

    /// Records one sample unconditionally, regardless of the global switch
    /// and without registering into the global snapshot — for *instance*
    /// histograms owned by a subsystem (e.g. the serve metrics surface)
    /// that manages its own lifecycle. Not attributed to scopes.
    #[inline]
    pub fn record_value(&self, v: u64) {
        self.record_registered(v);
    }

    fn record_registered(&self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Summarises the histogram's current contents (count/sum/max exact,
    /// quantiles estimated by rank interpolation within the log₂ bucket
    /// where the cumulative count crosses the quantile — exact to within
    /// one bucket width, i.e. a factor of 2).
    pub fn stat(&self) -> HistogramStat {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based rank of the requested order statistic.
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (k, &n) in buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let before = seen;
                seen += n;
                if seen >= target {
                    // Bucket 0 holds exactly {0}; bucket k ≥ 1 covers
                    // [2^(k-1), 2^k - 1]. Interpolate linearly by rank.
                    let lo = if k == 0 { 0 } else { 1u64 << (k - 1) };
                    let hi = if k == 0 {
                        0
                    } else if k >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << k) - 1
                    };
                    let frac = (target - before) as f64 / n as f64;
                    return lo + ((hi - lo) as f64 * frac) as u64;
                }
            }
            u64::MAX
        };
        HistogramStat {
            name: self.name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An accumulating wall-clock timer with an embedded nanosecond histogram;
/// time regions with the RAII [`Timer::span`] guard or record explicit
/// durations with [`Timer::observe`].
pub struct Timer {
    name: &'static str,
    hist: Histogram,
    registered: Once,
}

impl Timer {
    /// A timer with the given registry name.
    pub const fn new(name: &'static str) -> Timer {
        Timer { name, hist: Histogram::new(name), registered: Once::new() }
    }

    /// The timer's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts a span; the elapsed time is recorded when the guard drops.
    /// While telemetry is disabled the guard is inert (no clock read).
    /// While [`trace::tracing`] is on, the span additionally emits paired
    /// begin/end trace events, so every instrumented site shows up in the
    /// Chrome-trace export without further changes.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            timer: self,
            start: if enabled() { Some(Instant::now()) } else { None },
            trace: trace::tracing().then(|| trace::span(self.name, "timer")),
        }
    }

    /// Records an explicitly measured duration.
    #[inline]
    pub fn observe(&'static self, d: Duration) {
        if !enabled() {
            return;
        }
        self.registered.call_once(|| register(Metric::Timer(self)));
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.hist.record_registered(ns);
        scope::record_sample(self.name, ns);
    }
}

/// RAII guard for a [`Timer`] span.
pub struct Span {
    timer: &'static Timer,
    start: Option<Instant>,
    trace: Option<trace::TraceSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.timer.observe(start.elapsed());
        }
        self.trace.take();
    }
}

/// Point-in-time value of one counter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterStat {
    /// Registry name.
    pub name: String,
    /// Total count.
    pub value: u64,
    /// Whether the counter is scheduling-independent (baseline-gated).
    pub deterministic: bool,
}

/// Point-in-time summary of one histogram (values) or timer (nanoseconds).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramStat {
    /// Registry name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median estimate (rank-interpolated within the log₂ bucket).
    pub p50: u64,
    /// 90th-percentile estimate (rank-interpolated within the log₂ bucket).
    pub p90: u64,
    /// 99th-percentile estimate (rank-interpolated within the log₂ bucket).
    pub p99: u64,
}

/// A deterministic (name-sorted) snapshot of every registered metric.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    /// All registered counters.
    pub counters: Vec<CounterStat>,
    /// All registered timers (sample unit: nanoseconds).
    pub timers: Vec<HistogramStat>,
    /// All registered value histograms.
    pub histograms: Vec<HistogramStat>,
}

impl Snapshot {
    /// The value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The counters with `deterministic == true` and a nonzero value.
    pub fn deterministic_counters(&self) -> Vec<&CounterStat> {
        self.counters.iter().filter(|c| c.deterministic && c.value > 0).collect()
    }
}

/// Captures a [`Snapshot`] of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut snap = Snapshot::default();
    for m in reg.iter() {
        match m {
            Metric::Counter(c) => snap.counters.push(CounterStat {
                name: c.name.to_string(),
                value: c.get(),
                deterministic: c.deterministic,
            }),
            Metric::Timer(t) => snap.timers.push(t.hist.stat()),
            Metric::Histogram(h) => snap.histograms.push(h.stat()),
        }
    }
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.timers.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

/// Zeroes every registered metric (registrations persist).
pub fn reset() {
    let reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for m in reg.iter() {
        match m {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Timer(t) => t.hist.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for Snapshot {
    /// The human `--metrics` rendering: nonzero counters, then timers, then
    /// histograms, all name-sorted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== telemetry ==")?;
        let counters: Vec<&CounterStat> = self.counters.iter().filter(|c| c.value > 0).collect();
        if !counters.is_empty() {
            writeln!(f, "counters:")?;
            for c in counters {
                writeln!(
                    f,
                    "  {:<34} {:>12}{}",
                    c.name,
                    c.value,
                    if c.deterministic { "" } else { "  (non-deterministic)" }
                )?;
            }
        }
        let timers: Vec<&HistogramStat> = self.timers.iter().filter(|t| t.count > 0).collect();
        if !timers.is_empty() {
            writeln!(f, "timers:")?;
            for t in timers {
                writeln!(
                    f,
                    "  {:<34} count {:>8}  total {:>9}  p50 ~{:>9}  p90 ~{:>9}  p99 ~{:>9}  max {:>9}",
                    t.name,
                    t.count,
                    fmt_nanos(t.sum),
                    fmt_nanos(t.p50),
                    fmt_nanos(t.p90),
                    fmt_nanos(t.p99),
                    fmt_nanos(t.max)
                )?;
            }
        }
        let hists: Vec<&HistogramStat> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !hists.is_empty() {
            writeln!(f, "histograms:")?;
            for h in hists {
                writeln!(
                    f,
                    "  {:<34} count {:>8}  sum {:>12}  p50 ~{:>8}  p90 ~{:>8}  p99 ~{:>8}  max {:>8}",
                    h.name, h.count, h.sum, h.p50, h.p90, h.p99, h.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Telemetry state is process-global; tests in this binary serialise on
    /// one lock so enable/reset windows don't overlap.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    static T_DISABLED: Counter = Counter::new("test.disabled_counter");
    static T_CONC: Counter = Counter::new("test.concurrent_counter");
    static T_NONDET: Counter = Counter::non_deterministic("test.nondet_counter");
    static T_TIMER: Timer = Timer::new("test.timer");
    static T_HIST: Histogram = Histogram::new("test.hist");

    #[test]
    fn disabled_mode_is_a_no_op() {
        let _x = exclusive();
        set_enabled(false);
        T_DISABLED.add(7);
        T_TIMER.observe(Duration::from_millis(5));
        T_HIST.record(9);
        {
            let _span = T_TIMER.span();
        }
        // nothing registered, nothing counted
        assert_eq!(T_DISABLED.get(), 0);
        assert_eq!(snapshot().counter("test.disabled_counter"), None);
    }

    #[test]
    fn concurrent_counter_and_span_updates_add_up() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for i in 0..PER_THREAD {
                        T_CONC.incr();
                        if i % 1000 == 0 {
                            let _span = T_TIMER.span();
                            T_HIST.record(i);
                        }
                    }
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counter("test.concurrent_counter"), Some(THREADS as u64 * PER_THREAD));
        let timer = snap.timers.iter().find(|t| t.name == "test.timer").expect("timer registered");
        assert_eq!(timer.count, THREADS as u64 * (PER_THREAD / 1000));
        let hist = snap.histograms.iter().find(|h| h.name == "test.hist").expect("registered");
        assert_eq!(hist.count, timer.count);
        assert_eq!(hist.max, 9000);
        assert!(hist.p50 <= hist.p90 && hist.p90 >= hist.max / 2, "{hist:?}");
        set_enabled(false);
        reset();
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _x = exclusive();
        set_enabled(true);
        T_NONDET.add(3);
        assert_eq!(snapshot().counter("test.nondet_counter"), Some(3));
        reset();
        assert_eq!(snapshot().counter("test.nondet_counter"), Some(0));
        // still usable after reset
        T_NONDET.add(2);
        let snap = snapshot();
        assert_eq!(snap.counter("test.nondet_counter"), Some(2));
        // non-deterministic counters are excluded from the gated view
        assert!(snap.deterministic_counters().iter().all(|c| c.name != "test.nondet_counter"));
        set_enabled(false);
        reset();
    }

    #[test]
    fn snapshot_is_name_sorted_and_display_renders() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        T_CONC.add(1);
        T_NONDET.add(1);
        T_HIST.record(100);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let text = snap.to_string();
        assert!(text.contains("test.concurrent_counter"), "{text}");
        assert!(text.contains("(non-deterministic)"), "{text}");
        set_enabled(false);
        reset();
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        static H: Histogram = Histogram::new("test.quantiles");
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            H.record(v);
        }
        let snap = snapshot();
        let h = snap.histograms.iter().find(|h| h.name == "test.quantiles").unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1110);
        assert!(h.p50 >= 2 && h.p50 <= 7, "{h:?}");
        assert!(h.p90 >= 100, "{h:?}");
        set_enabled(false);
        reset();
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        static H: Histogram = Histogram::new("test.interp");
        for v in 1..=100u64 {
            H.record(v);
        }
        let snap = snapshot();
        let h = snap.histograms.iter().find(|h| h.name == "test.interp").unwrap();
        // Exact percentiles are 50/90/99; the log₂-bucket contract is
        // "within a factor of 2", and the median interpolates exactly here.
        assert_eq!(h.p50, 50, "{h:?}");
        assert!(h.p90 >= 90 && h.p90 <= 127, "{h:?}");
        assert!(h.p99 >= 99 && h.p99 <= 127, "{h:?}");
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max.next_power_of_two());
        set_enabled(false);
        reset();
    }

    #[test]
    fn instance_histograms_record_without_registering() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        let h = Histogram::new("test.instance");
        for v in [10u64, 20, 30] {
            h.record_value(v);
        }
        let s = h.stat();
        assert_eq!((s.count, s.sum, s.max), (3, 60, 30));
        assert!(s.p50 >= 10 && s.p99 <= 31, "{s:?}");
        // never registered: absent from the global snapshot
        assert!(snapshot().histograms.iter().all(|g| g.name != "test.instance"));
    }

    #[test]
    fn nanos_render_units() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_200), "1.2µs");
        assert_eq!(fmt_nanos(3_400_000), "3.4ms");
        assert_eq!(fmt_nanos(2_500_000_000), "2.50s");
    }
}
