//! Generic-certification baselines (paper §3).
//!
//! The paper's first take on certification composes the client with the
//! EASL specification (treating the spec as the component implementation)
//! and runs a *generic* heap analysis over the composite program. This
//! crate provides the allocation-site-based must-alias analysis baseline
//! ([`allocsite`]); the storage-shape-graph baseline is obtained by running
//! the `canvas-tvla` engine on the generic translation (see
//! `canvas_tvla::translate_generic`).
//!
//! The paper's point — reproduced by the evaluation — is that generic
//! abstractions are blind to the constraint being certified: the
//! allocation-site analysis cannot distinguish the versions allocated by
//! successive `add` calls in a loop (§3's example), and the shape-graph
//! analysis merges the unpointed version objects of Fig. 3 (§4.4), each
//! producing false alarms the derived specialized abstraction avoids.

pub mod allocsite;

pub use allocsite::{
    analyze as allocsite_analyze, analyze_with_entry as allocsite_analyze_with_entry,
    AllocSiteResult,
};
