//! Allocation-site-based must-alias certification (the §3 baseline).
//!
//! Objects are abstracted by their allocation site. The analysis is
//! flow-sensitive and keeps, per program point:
//!
//! * for every reference variable, the set of sites it may point to;
//! * for every (site, field) pair, the set of sites the field may hold;
//! * the set of *non-linear* sites — sites that may have been executed more
//!   than once on some path, whose abstract object therefore conflates
//!   several runtime objects.
//!
//! EASL bodies are interpreted directly over this abstract heap (the
//! "composite program" of §3). A `requires α == β` is certified at a call
//! when both sides evaluate to the same singleton, *linear* site — a
//! must-alias; otherwise a potential violation is reported.
//!
//! The paper's §3 example shows the fundamental weakness: every `Version`
//! allocated by `add` inside a loop shares one site, which immediately
//! becomes non-linear, so the analysis cannot certify the (safe)
//! fresh-iterator-per-iteration pattern.

use std::collections::{BTreeMap, BTreeSet};

use canvas_easl::{ClassSpec, MethodSpec, Spec, SpecExpr, SpecStmt, SpecVar};
use canvas_logic::{Formula, Kleene, Term};
use canvas_minijava::{Instr, MethodIr, Program, Site, VarId};
use canvas_telemetry::{Counter, Timer};

static ALLOCSITE_WORKLIST_POPS: Counter = Counter::new("allocsite.worklist_pops");
static ALLOCSITE_EDGE_VISITS: Counter = Counter::new("allocsite.edge_visits");
static ALLOCSITE_SOLVE_TIME: Timer = Timer::new("allocsite.solve");

/// An abstract object: an allocation site id.
type Obj = u32;

/// A set of abstract objects, possibly including unknown ones.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct ObjSet {
    objs: BTreeSet<Obj>,
    unknown: bool,
}

impl ObjSet {
    fn bottom() -> Self {
        ObjSet::default()
    }

    fn single(o: Obj) -> Self {
        ObjSet { objs: BTreeSet::from([o]), unknown: false }
    }

    fn top() -> Self {
        ObjSet { objs: BTreeSet::new(), unknown: true }
    }

    fn join(&mut self, other: &ObjSet) -> bool {
        let before = (self.objs.len(), self.unknown);
        self.objs.extend(other.objs.iter().copied());
        self.unknown |= other.unknown;
        before != (self.objs.len(), self.unknown)
    }

    fn is_empty(&self) -> bool {
        self.objs.is_empty() && !self.unknown
    }
}

/// The abstract state at one program point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct State {
    vars: BTreeMap<VarId, ObjSet>,
    heap: BTreeMap<(Obj, String), ObjSet>,
    /// sites that may abstract several runtime objects
    multi: BTreeSet<Obj>,
    /// sites allocated so far on some path
    seen: BTreeSet<Obj>,
}

impl State {
    fn join(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (k, v) in &other.vars {
            changed |= self.vars.entry(*k).or_default().join(v);
        }
        for (k, v) in &other.heap {
            changed |= self.heap.entry(k.clone()).or_default().join(v);
        }
        let n = self.multi.len();
        self.multi.extend(other.multi.iter().copied());
        changed |= self.multi.len() != n;
        let n = self.seen.len();
        self.seen.extend(other.seen.iter().copied());
        changed |= self.seen.len() != n;
        changed
    }

    fn var(&self, v: VarId) -> ObjSet {
        self.vars.get(&v).cloned().unwrap_or_default()
    }

    fn read_field(&self, base: &ObjSet, field: &str) -> ObjSet {
        if base.unknown {
            return ObjSet::top();
        }
        let mut out = ObjSet::bottom();
        for &o in &base.objs {
            if let Some(v) = self.heap.get(&(o, field.to_string())) {
                let mut v = v.clone();
                out.join(&v);
                let _ = &mut v;
            }
        }
        out
    }

    fn write_field(&mut self, base: &ObjSet, field: &str, value: ObjSet) {
        if base.unknown {
            // writing through an unknown base may affect any object
            for (_, v) in self.heap.iter_mut().filter(|((_, f), _)| f == field) {
                v.join(&value);
            }
            return;
        }
        let strong = base.objs.len() == 1 && !base.objs.iter().any(|o| self.multi.contains(o));
        for &o in &base.objs {
            let slot = self.heap.entry((o, field.to_string())).or_default();
            if strong {
                *slot = value.clone();
            } else {
                slot.join(&value);
            }
        }
    }

    fn alloc(&mut self, site: Obj) -> ObjSet {
        if !self.seen.insert(site) {
            self.multi.insert(site);
        }
        // a re-executed site invalidates strong facts about the previous
        // incarnation: keep heap entries (they describe *some* object) but
        // must-alias on this site is now impossible via `multi`
        ObjSet::single(site)
    }

    /// Three-valued equality of two value sets.
    fn eq_kleene(&self, a: &ObjSet, b: &ObjSet) -> Kleene {
        if a.is_empty() || b.is_empty() {
            // null values: comparisons against null are outside the
            // conformance property (NPE, not CME)
            return Kleene::Unknown;
        }
        if !a.unknown
            && !b.unknown
            && a.objs.len() == 1
            && a == b
            && !a.objs.iter().any(|o| self.multi.contains(o))
        {
            return Kleene::True;
        }
        let may_overlap = a.unknown || b.unknown || a.objs.intersection(&b.objs).next().is_some();
        if may_overlap {
            Kleene::Unknown
        } else {
            Kleene::False
        }
    }
}

/// The analysis result.
#[derive(Clone, Debug)]
pub struct AllocSiteResult {
    /// Potential violations (site, ordered).
    pub violations: Vec<Site>,
    /// Edge transfer evaluations performed.
    pub edge_visits: usize,
}

/// Runs the allocation-site baseline over one method (clean entry).
pub fn analyze(program: &Program, method: &MethodIr, spec: &Spec) -> AllocSiteResult {
    analyze_with_entry(program, method, spec, false)
}

/// [`analyze`] with optionally *unknown* entry state: parameters and
/// statics point to unknown objects (for out-of-context certification).
pub fn analyze_with_entry(
    program: &Program,
    method: &MethodIr,
    spec: &Spec,
    unknown_entry: bool,
) -> AllocSiteResult {
    let _span = ALLOCSITE_SOLVE_TIME.span();
    let n = method.cfg.node_count();
    let mut states: Vec<Option<State>> = vec![None; n];
    let mut init = State::default();
    if unknown_entry {
        for &pvar in &method.params {
            init.vars.insert(pvar, ObjSet::top());
        }
        for v in program.vars().iter().filter(|v| v.owner.is_none()) {
            init.vars.insert(v.id, ObjSet::top());
        }
    }
    states[method.cfg.entry().0] = Some(init);

    let edges = method.cfg.edges();
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, e) in edges.iter().enumerate() {
        out_edges[e.from.0].push(k);
    }

    let mut work = vec![method.cfg.entry().0];
    let mut on_work = vec![false; n];
    on_work[method.cfg.entry().0] = true;
    let mut violations: BTreeSet<Site> = BTreeSet::new();
    let mut edge_visits = 0;
    let mut pops = 0u64;

    while let Some(node) = work.pop() {
        on_work[node] = false;
        pops += 1;
        let Some(cur) = states[node].clone() else { continue };
        for &ek in &out_edges[node] {
            let e = &edges[ek];
            edge_visits += 1;
            let mut next = cur.clone();
            transfer(program, spec, &e.instr, ek as u32, &mut next, &mut violations);
            let changed = match &mut states[e.to.0] {
                t @ None => {
                    *t = Some(next);
                    true
                }
                Some(t) => t.join(&next),
            };
            if changed && !on_work[e.to.0] {
                on_work[e.to.0] = true;
                work.push(e.to.0);
            }
        }
    }

    ALLOCSITE_WORKLIST_POPS.add(pops);
    ALLOCSITE_EDGE_VISITS.add(edge_visits as u64);
    AllocSiteResult { violations: violations.into_iter().collect(), edge_visits }
}

/// Site id for the `ordinal`-th specification-internal allocation performed
/// while interpreting edge `edge`.
fn spec_site(edge: u32, ordinal: u32) -> Obj {
    1_000_000 + edge * 64 + ordinal
}

fn transfer(
    program: &Program,
    spec: &Spec,
    instr: &Instr,
    edge: u32,
    s: &mut State,
    violations: &mut BTreeSet<Site>,
) {
    match instr {
        Instr::Nop => {}
        Instr::Copy { dst, src } => {
            let v = s.var(*src);
            s.vars.insert(*dst, v);
        }
        Instr::Nullify { dst } => {
            s.vars.insert(*dst, ObjSet::bottom());
        }
        Instr::Load { dst, base, field } => {
            let b = s.var(*base);
            let v = s.read_field(&b, field);
            s.vars.insert(*dst, v);
        }
        Instr::Store { base, field, src } => {
            let b = s.var(*base);
            let v = s.var(*src);
            s.write_field(&b, field, v);
        }
        Instr::New { dst, ty, site, args, .. } => {
            let o = s.alloc(site.0);
            s.vars.insert(*dst, o.clone());
            if let Some(class) = spec.class(ty.as_str()) {
                if let Some(ctor) = class.ctor() {
                    let env = SpecEnv {
                        this: o.clone(),
                        params: args.iter().map(|&a| s.var(a)).collect(),
                    };
                    let mut ordinal = 0;
                    run_spec_body(spec, class, ctor, &env, edge, &mut ordinal, s);
                }
            }
        }
        Instr::CallComponent { dst, recv, method, args, known, at } => {
            if !*known {
                return;
            }
            let rty = program.var(*recv).ty;
            let Some(class) = spec.class(rty.as_str()) else { return };
            let Some(m) = class.method(method) else { return };
            let env =
                SpecEnv { this: s.var(*recv), params: args.iter().map(|&a| s.var(a)).collect() };
            // requires check
            if let Some(req) = m.requires() {
                if eval_formula(spec, class, m, req, &env, s).may_be_false() {
                    violations.insert(at.clone());
                }
            }
            let mut ordinal = 0;
            run_spec_body(spec, class, m, &env, edge, &mut ordinal, s);
            // bind the result
            if let Some(d) = dst {
                let v = match m.ret() {
                    Some(e) => eval_spec_expr(spec, class, m, e, &env, edge, &mut ordinal, s),
                    None => ObjSet::bottom(),
                };
                s.vars.insert(*d, v);
            }
        }
        Instr::CallClient { dst, .. } => {
            // conservative: everything reachable may change
            for (_, v) in s.heap.iter_mut() {
                v.join(&ObjSet::top());
            }
            // statics may be reassigned
            let statics: Vec<VarId> =
                program.vars().iter().filter(|v| v.owner.is_none()).map(|v| v.id).collect();
            for g in statics {
                s.vars.insert(g, ObjSet::top());
            }
            if let Some(d) = dst {
                s.vars.insert(*d, ObjSet::top());
            }
        }
    }
}

struct SpecEnv {
    this: ObjSet,
    params: Vec<ObjSet>,
}

fn eval_spec_path(
    s: &State,
    class: &ClassSpec,
    m: &MethodSpec,
    p: &canvas_easl::SpecPath,
    env: &SpecEnv,
) -> ObjSet {
    let _ = (class, m);
    let mut cur = match p.base() {
        SpecVar::This => env.this.clone(),
        SpecVar::Param(k) => env.params.get(k).cloned().unwrap_or_default(),
    };
    for f in p.fields() {
        cur = s.read_field(&cur, f);
    }
    cur
}

#[allow(clippy::too_many_arguments)]
fn eval_spec_expr(
    spec: &Spec,
    class: &ClassSpec,
    m: &MethodSpec,
    e: &SpecExpr,
    env: &SpecEnv,
    edge: u32,
    ordinal: &mut u32,
    s: &mut State,
) -> ObjSet {
    match e {
        SpecExpr::Path(p) => eval_spec_path(s, class, m, p, env),
        SpecExpr::New { ty, args } => {
            let site = spec_site(edge, *ordinal);
            *ordinal += 1;
            let vals: Vec<ObjSet> = args
                .iter()
                .map(|a| eval_spec_expr(spec, class, m, a, env, edge, ordinal, s))
                .collect();
            let o = s.alloc(site);
            if let Some(c2) = spec.class(ty.as_str()) {
                if let Some(ctor) = c2.ctor() {
                    let env2 = SpecEnv { this: o.clone(), params: vals };
                    run_spec_body(spec, c2, ctor, &env2, edge, ordinal, s);
                }
            }
            o
        }
    }
}

fn run_spec_body(
    spec: &Spec,
    class: &ClassSpec,
    m: &MethodSpec,
    env: &SpecEnv,
    edge: u32,
    ordinal: &mut u32,
    s: &mut State,
) {
    for stmt in m.body() {
        let SpecStmt::Assign { lhs, rhs } = stmt;
        let value = eval_spec_expr(spec, class, m, rhs, env, edge, ordinal, s);
        // target object = parent of lhs path
        let parent =
            canvas_easl::SpecPath::new(lhs.base(), lhs.fields()[..lhs.fields().len() - 1].to_vec());
        let base = eval_spec_path(s, class, m, &parent, env);
        let field = lhs.fields().last().expect("assignments target fields");
        s.write_field(&base, field, value);
    }
}

fn eval_formula(
    spec: &Spec,
    class: &ClassSpec,
    m: &MethodSpec,
    f: &Formula,
    env: &SpecEnv,
    s: &State,
) -> Kleene {
    match f {
        Formula::True => Kleene::True,
        Formula::False => Kleene::False,
        Formula::Eq(a, b) => eval_atom(spec, class, m, a, b, env, s),
        Formula::Ne(a, b) => eval_atom(spec, class, m, a, b, env, s).not(),
        Formula::Not(g) => eval_formula(spec, class, m, g, env, s).not(),
        Formula::And(gs) => gs
            .iter()
            .map(|g| eval_formula(spec, class, m, g, env, s))
            .fold(Kleene::True, Kleene::and),
        Formula::Or(gs) => gs
            .iter()
            .map(|g| eval_formula(spec, class, m, g, env, s))
            .fold(Kleene::False, Kleene::or),
    }
}

fn eval_atom(
    spec: &Spec,
    class: &ClassSpec,
    m: &MethodSpec,
    a: &Term,
    b: &Term,
    env: &SpecEnv,
    s: &State,
) -> Kleene {
    let _ = spec;
    let to_set = |t: &Term| -> Option<ObjSet> {
        let Term::Path(p) = t else { return None };
        // resolve the logic path back to a spec path in the method frame
        let base = if p.base().name() == "this" {
            SpecVar::This
        } else {
            SpecVar::Param(m.params().iter().position(|(n, _)| n == p.base().name())?)
        };
        let sp = canvas_easl::SpecPath::new(base, p.fields().to_vec());
        Some(eval_spec_path(s, class, m, &sp, env))
    };
    match (to_set(a), to_set(b)) {
        (Some(x), Some(y)) => s.eq_kleene(&x, &y),
        _ => Kleene::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_minijava::Program;

    fn certify(src: &str) -> Vec<u32> {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let main = program.main_method().expect("main required");
        analyze(&program, main, &spec).violations.iter().map(|s| s.line()).collect()
    }

    #[test]
    fn fig3_alloc_site_is_exact_on_straightline() {
        // allocation sites are all distinct and linear here, so the
        // baseline gets Fig. 3 right (its weakness is loops, not
        // straight-line code — that one is the shape-graph baseline's)
        let lines = certify(
            r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#,
        );
        assert_eq!(lines, vec![10, 13], "{lines:?}");
    }

    #[test]
    fn version_loop_false_alarm() {
        // §3: the versions allocated by add() in the loop share one site,
        // which becomes non-linear; the safe pattern cannot be certified
        let lines = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) {
                i.next();
            }
        }
    }
}
"#,
        );
        assert!(!lines.is_empty(), "the alloc-site baseline must false-alarm here");
    }

    #[test]
    fn simple_straightline_certified() {
        let lines = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("a");
        Iterator i = s.iterator();
        i.next();
        i.remove();
        i.next();
    }
}
"#,
        );
        assert!(lines.is_empty(), "{lines:?}");
    }

    #[test]
    fn real_error_found() {
        let lines = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add("x");
        i.next();
    }
}
"#,
        );
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn client_call_is_conservative() {
        let lines = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        mystery();
        i.next();
    }
    static void mystery() { }
}
"#,
        );
        assert_eq!(lines.len(), 1);
    }
}
