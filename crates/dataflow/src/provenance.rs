//! Per-fact provenance for the boolean-program solvers.
//!
//! For every predicate instance that becomes true at a node, the solvers can
//! record *which CFG edge* first set it and *which pre-state fact* justified
//! it. Walking those justifications backwards from a `requires` check yields
//! a **witness trace**: the chain of establishment events (iterator created
//! here, set mutated there) that ends in the violating use. Recording is a
//! separate code path (`analyze_traced` vs `analyze`), so the certification
//! hot path pays nothing when explanations are off.
//!
//! Justifications are recorded only the *first* time a fact becomes true.
//! The solvers are monotone — a justification always refers to facts that
//! were already true (hence already justified) when it was recorded — so the
//! justification graph is acyclic and every back-walk terminates.

use canvas_abstraction::{BoolEdge, BoolProgram, Operand, Rhs};
use canvas_minijava::{MethodId, Program};
use canvas_wp::Derived;

/// Why a fact first became true at a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Just {
    /// The boolean-program edge (index-aligned with the method's IR edges)
    /// whose transfer set the fact.
    pub edge: u32,
    /// The pre-state fact at the edge's source that justified it:
    /// `Some(q)` when the fact was derived from (or propagated as) `q`,
    /// `None` when the edge established it outright (`Havoc`, a
    /// constant-true disjunct, or a conservative call effect).
    pub src: Option<u32>,
}

/// One link of an uncollapsed justification chain: after traversing `edge`,
/// `pred` is true, justified by `src` (same meaning as [`Just::src`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChainLink {
    /// The boolean-program edge traversed.
    pub edge: usize,
    /// The fact true at the edge's target.
    pub pred: usize,
    /// The justifying pre-state fact (`None` = established on this edge).
    pub src: Option<usize>,
}

/// One step of a resolved witness trace: an *establishment* event, in source
/// terms. `edge` indexes the method's IR CFG edges (the boolean program is
/// edge-aligned by construction), so the renderer can recover the source
/// instruction and its span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// The method the step executes in.
    pub method: MethodId,
    /// The CFG edge whose instruction established the fact.
    pub edge: usize,
    /// The established fact, rendered (e.g. `stale{i1}`).
    pub fact: String,
}

/// First-justification-wins provenance for one boolean program.
#[derive(Clone, Debug)]
pub struct Provenance {
    width: usize,
    just: Vec<Option<Just>>,
}

impl Provenance {
    /// An empty recorder for a program with `nodes` nodes and `width`
    /// predicate instances.
    pub fn new(nodes: usize, width: usize) -> Provenance {
        Provenance { width, just: vec![None; nodes * width] }
    }

    /// A zero-capacity recorder for the non-tracing code paths.
    pub fn empty() -> Provenance {
        Provenance { width: 0, just: Vec::new() }
    }

    /// Records that `pred` became true at `node` via `edge`, justified by
    /// pre-state fact `src`. Later recordings for the same `(node, pred)`
    /// are ignored (first justification wins).
    pub fn record(&mut self, node: usize, pred: usize, edge: usize, src: Option<usize>) {
        let slot = &mut self.just[node * self.width + pred];
        if slot.is_none() {
            *slot = Some(Just { edge: edge as u32, src: src.map(|s| s as u32) });
        }
    }

    /// The recorded justification for `pred` at `node`, if any.
    pub fn get(&self, node: usize, pred: usize) -> Option<Just> {
        if self.width == 0 {
            return None;
        }
        self.just[node * self.width + pred]
    }

    /// The full justification chain for `pred` at `node`, earliest link
    /// first. The chain ends early (at an unjustified fact) only for facts
    /// that were already true at the program's entry.
    pub fn chain(&self, bp: &BoolProgram, node: usize, pred: usize) -> Vec<ChainLink> {
        let mut links = Vec::new();
        let mut cur = (node, pred);
        // first-wins recording makes the graph acyclic; the cap is a
        // defensive bound only
        for _ in 0..self.just.len().max(1) {
            let Some(j) = self.get(cur.0, cur.1) else { break };
            let src = j.src.map(|s| s as usize);
            links.push(ChainLink { edge: j.edge as usize, pred: cur.1, src });
            match src {
                Some(q) => cur = (bp.edges[j.edge as usize].from, q),
                None => break,
            }
        }
        links.reverse();
        links
    }

    /// The witness trace for `pred` at `node`: the chain collapsed to its
    /// establishment steps (links that merely propagate an already-true fact
    /// across an edge are dropped), with facts rendered.
    pub fn trace(
        &self,
        bp: &BoolProgram,
        program: &Program,
        derived: &Derived,
        node: usize,
        pred: usize,
    ) -> Vec<TraceStep> {
        self.chain(bp, node, pred)
            .into_iter()
            .filter(|l| l.src != Some(l.pred))
            .map(|l| TraceStep {
                method: bp.method,
                edge: l.edge,
                fact: bp.pred_name(l.pred, program, derived),
            })
            .collect()
    }
}

/// Which pre-state fact justifies `pred` being true after `edge`, given the
/// pre-state membership test `holds_before`. `None` = the edge establishes
/// the fact outright; `Some(q)` = derived from `q`. Assumes `pred` *is* true
/// after the edge.
pub fn justify(
    edge: &BoolEdge,
    pred: usize,
    holds_before: impl Fn(usize) -> bool,
) -> Option<usize> {
    // parallel assignment: the last write to `pred` wins
    match edge.assigns.iter().rev().find(|(dst, _)| *dst == pred) {
        Some((_, Rhs::Havoc)) => None,
        Some((_, Rhs::Disj(ops))) => {
            if ops.iter().any(|op| matches!(op, Operand::Const(true))) {
                return None;
            }
            ops.iter()
                .find_map(|op| match op {
                    Operand::Var(v) if holds_before(*v) => Some(*v),
                    _ => None,
                })
                // defensive: a true disjunction has a true operand
                .or(Some(pred))
        }
        // not assigned: the fact propagated unchanged
        None => Some(pred),
    }
}

/// Replays a justification chain against the boolean program's edge
/// semantics, checking that it derives `pred` true at `node` from the
/// program's entry. This validates a witness *without* re-running the
/// solver: every link must be a legal consequence of the previous one.
pub fn replay(bp: &BoolProgram, links: &[ChainLink], node: usize, pred: usize) -> bool {
    let Some(last) = links.last() else {
        // no chain: the fact must have been unknown-at-entry at the entry node
        return node == bp.entry && bp.entry_unknown.contains(&pred);
    };
    if last.pred != pred || bp.edges[last.edge].to != node {
        return false;
    }
    for (k, link) in links.iter().enumerate() {
        let e = &bp.edges[link.edge];
        // the claimed source must actually justify the fact on this edge
        let legal = match e.assigns.iter().rev().find(|(dst, _)| *dst == link.pred) {
            Some((_, Rhs::Havoc)) => link.src.is_none(),
            Some((_, Rhs::Disj(ops))) => match link.src {
                None => ops.iter().any(|op| matches!(op, Operand::Const(true))),
                Some(q) => ops.iter().any(|op| matches!(op, Operand::Var(v) if *v == q)),
            },
            None => link.src == Some(link.pred),
        };
        if !legal {
            return false;
        }
        match k.checked_sub(1) {
            // interior link: connected to the previous link's conclusion
            Some(prev) => {
                let p = &links[prev];
                if bp.edges[p.edge].to != e.from || link.src != Some(p.pred) {
                    return false;
                }
            }
            // first link: grounded in a base establishment or an entry fact
            None => {
                if let Some(q) = link.src {
                    if e.from != bp.entry || !bp.entry_unknown.contains(&q) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_abstraction::{transform_method, EntryAssumption};
    use canvas_wp::derive_abstraction;

    fn build(src: &str) -> (BoolProgram, Program, Derived) {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        let main = program.main_method().expect("needs a main");
        let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
        (bp, program, derived)
    }

    const SRC: &str = r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add("x");
        i.next();
    }
}
"#;

    #[test]
    fn chain_replays_and_collapses() {
        let (bp, program, derived) = build(SRC);
        let (res, prov) = crate::fds::analyze_traced(&bp);
        let viols = crate::fds::violations(&bp, &res);
        assert_eq!(viols.len(), 1);
        let culprit = viols[0].culprits[0];
        let check = &bp.checks[0];
        let links = prov.chain(&bp, check.node, culprit);
        assert!(!links.is_empty());
        assert!(replay(&bp, &links, check.node, culprit), "{links:#?}");
        // the collapsed trace names the staleness fact at its establishment
        let steps = prov.trace(&bp, &program, &derived, check.node, culprit);
        assert!(!steps.is_empty());
        assert!(steps.iter().all(|s| !s.fact.is_empty()));
        assert!(steps.len() <= links.len());
    }

    #[test]
    fn tampered_chains_do_not_replay() {
        let (bp, _, _) = build(SRC);
        let (res, prov) = crate::fds::analyze_traced(&bp);
        let viols = crate::fds::violations(&bp, &res);
        let culprit = viols[0].culprits[0];
        let check = &bp.checks[0];
        let links = prov.chain(&bp, check.node, culprit);
        // wrong target node
        assert!(!replay(&bp, &links, bp.entry, culprit));
        // truncated chain no longer reaches the check
        if links.len() > 1 {
            assert!(!replay(&bp, &links[..links.len() - 1], check.node, culprit));
        }
        // a link rewritten to a different edge breaks the connection
        let mut bad = links.clone();
        bad[0].edge = (bad[0].edge + 1) % bp.edges.len();
        assert!(!replay(&bp, &bad, check.node, culprit) || bp.edges.len() == 1);
    }

    #[test]
    fn empty_chain_only_valid_for_entry_facts() {
        let (bp, _, _) = build(SRC);
        assert!(!replay(&bp, &[], bp.entry, 0) || bp.entry_unknown.contains(&0));
    }

    #[test]
    fn record_is_first_wins() {
        let mut p = Provenance::new(2, 3);
        p.record(1, 2, 7, Some(0));
        p.record(1, 2, 9, None);
        assert_eq!(p.get(1, 2), Some(Just { edge: 7, src: Some(0) }));
        assert_eq!(p.get(0, 0), None);
        assert_eq!(Provenance::empty().get(0, 0), None);
    }
}
