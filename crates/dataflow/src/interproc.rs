//! Context-sensitive interprocedural SCMP certification (paper §8).
//!
//! The paper extends the intraprocedural SCMP certifier to a precise,
//! polynomial-time, context-sensitive (meet-over-all-*valid*-paths)
//! interprocedural analysis. The provided paper text truncates before §8's
//! details; this implementation reconstructs it as an IFDS-style two-phase
//! tabulation, which gives exactly the claimed properties for the
//! distributive may-be-1 domain:
//!
//! **Phase 1 — summaries (bottom-up).** Each method is analysed over an
//! *extended* predicate-instance space that adds, per component-typed
//! formal `f`, a ghost entry-snapshot variable `$in_f` (never reassigned),
//! and per component type a pair of *phantom* variables standing for
//! arbitrary caller-held references not passed into the method. The
//! abstract value of an instance is the **set of entry facts** (instances
//! over ghosts/statics/phantoms, plus the constant 1) whose truth at entry
//! may make the instance 1 here; transfer is plain set union because every
//! assignment is a disjunction. The method's summary is this relation at
//! its exit node. Nested calls apply callee summaries; recursion is handled
//! by iterating the (monotone, finite) summary map to fixpoint.
//!
//! **Phase 2 — tabulation (top-down).** Starting from `main` with the
//! all-zero entry state, concrete may-be-1 states are propagated through
//! each reachable method, applying callee summaries at call edges and
//! translating callee entry states per call site (formals ↦ actuals).
//! Entry states of the same method merge across call sites — exact for the
//! existential check question, by the standard IFDS argument. `requires`
//! checks are evaluated inside the per-method fixpoints.
//!
//! Phantom translation is what lets a callee's heap effects flow back to
//! caller-local iterators precisely: a caller-local `i` not passed to the
//! callee is mapped to the phantom `$ph`, the callee's exit summary for
//! `stale($ph)` is, say, `{stale($ph), iterof($ph, $in_s)}`, and
//! translating back yields `stale(i) := stale(i) ∨ iterof(i, a)` where `a`
//! is the actual bound to `s` — the correct, context-sensitive effect.

use std::collections::HashMap;

use canvas_abstraction::{
    transform_method_with, BoolProgram, ClientCallPolicy, EntryAssumption, Operand, Rhs,
};
use canvas_easl::Spec;
use canvas_logic::{Symbol, TypeName};
use canvas_minijava::{Instr, MethodId, Program, VarId};
use canvas_wp::Derived;

use canvas_faults::{Exhaustion, Meter};

use crate::bitset::BitSet;
use crate::fds::Violation;
use crate::provenance::{justify, Provenance};

static INTERPROC_ANALYSES: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("interproc.analyses");
static INTERPROC_SUMMARY_ITERATIONS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("interproc.summary_iterations");
static INTERPROC_ANALYZE_TIME: canvas_telemetry::Timer =
    canvas_telemetry::Timer::new("interproc.analyze");

/// Phantom variables per component type; bounds the representable family
/// arity (all families derived from the paper's specs have arity ≤ 2).
const PHANTOMS_PER_TYPE: usize = 2;

/// Result of the interprocedural analysis.
#[derive(Clone, Debug)]
pub struct InterprocResult {
    /// All potential `requires` violations in methods reachable from `main`.
    pub violations: Vec<Violation>,
    /// Methods reachable from the entry point.
    pub reachable: Vec<MethodId>,
    /// Summary-phase iterations until the summary map stabilised.
    pub summary_iterations: usize,
    /// Largest per-method instance count (including ghosts and phantoms).
    pub max_instances: usize,
}

/// A caller-side fact produced by summary translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Back {
    /// Unconditionally 1.
    Const1,
    /// The caller instance with this index.
    Pred(usize),
}

/// The entry value of an instance in the summary domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Seed {
    /// Constant 1 at entry (ghostified form folded to true, e.g.
    /// `same(x, $in_x)` — a formal always equals its own snapshot).
    One,
    /// The entry fact with this instance id.
    Fact(usize),
}

struct MethodTables {
    bp: BoolProgram,
    /// seed entry value per instance (`None` = 0 at entry)
    seeds: Vec<Option<Seed>>,
    /// exit node id
    exit: usize,
}

struct Ctx<'a> {
    program: Program, // extended clone with ghosts/phantoms
    #[allow(dead_code)] // retained for future spec-driven refinements
    spec: &'a Spec,
    methods: Vec<MethodTables>,
    /// ghost var per (method, formal var)
    ghost_of: HashMap<(MethodId, VarId), VarId>,
    /// formal var per ghost var
    formal_of: HashMap<VarId, VarId>,
    /// phantom slots per (method, type name)
    phantoms: HashMap<(MethodId, Symbol), Vec<VarId>>,
}

/// Runs the context-sensitive interprocedural certifier from `main`.
///
/// # Panics
///
/// Panics if the program has no static `main` method.
pub fn analyze(program: &Program, spec: &Spec, derived: &Derived) -> InterprocResult {
    let disarmed = Meter::disarmed();
    match analyze_impl(program, spec, derived, false, &disarmed) {
        Ok(res) => res,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Like [`analyze`], but records per-fact provenance during tabulation and
/// attaches a witness trace to every violation. Witness chains stop at a
/// method's entry when the justifying fact flowed in from a caller.
///
/// # Panics
///
/// As [`analyze`].
pub fn analyze_explained(program: &Program, spec: &Spec, derived: &Derived) -> InterprocResult {
    let disarmed = Meter::disarmed();
    match analyze_impl(program, spec, derived, true, &disarmed) {
        Ok(res) => res,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Governed variant of [`analyze`]: one meter tick per worklist pop in the
/// summary, tabulation, and concrete fixpoints.
///
/// # Errors
///
/// Returns the [`Exhaustion`] when the governor budget trips; the caller
/// degrades to an inconclusive verdict.
///
/// # Panics
///
/// As [`analyze`].
pub fn analyze_with(
    program: &Program,
    spec: &Spec,
    derived: &Derived,
    gov: &Meter,
) -> Result<InterprocResult, Exhaustion> {
    canvas_faults::solver_abort();
    analyze_impl(program, spec, derived, false, gov)
}

/// Governed variant of [`analyze_explained`].
///
/// # Errors
///
/// As [`analyze_with`].
///
/// # Panics
///
/// As [`analyze`].
pub fn analyze_explained_with(
    program: &Program,
    spec: &Spec,
    derived: &Derived,
    gov: &Meter,
) -> Result<InterprocResult, Exhaustion> {
    canvas_faults::solver_abort();
    analyze_impl(program, spec, derived, true, gov)
}

fn analyze_impl(
    program: &Program,
    spec: &Spec,
    derived: &Derived,
    explain: bool,
    gov: &Meter,
) -> Result<InterprocResult, Exhaustion> {
    let _span = INTERPROC_ANALYZE_TIME.span();
    INTERPROC_ANALYSES.incr();
    let main_id = program.main_method().expect("interprocedural analysis needs a main").id;
    let mut ext = program.clone();

    let mut ghost_of = HashMap::new();
    let mut formal_of = HashMap::new();
    let mut phantoms: HashMap<(MethodId, Symbol), Vec<VarId>> = HashMap::new();
    let mut types: Vec<TypeName> = spec.client_facing_types();
    for fam in derived.families() {
        for p in fam.params() {
            if !types.contains(p.ty()) {
                types.push(*p.ty());
            }
        }
    }
    let method_ids: Vec<MethodId> = program.methods().iter().map(|m| m.id).collect();
    for &mid in &method_ids {
        let params = program.method(mid).params.clone();
        for f in params {
            if spec.is_component_type(&program.var(f).ty) {
                let name = format!("$in_{}", program.var(f).name);
                let g = ext.add_ghost_var(mid, &name, program.var(f).ty);
                ghost_of.insert((mid, f), g);
                formal_of.insert(g, f);
            }
        }
        for t in &types {
            let slots: Vec<VarId> = (0..PHANTOMS_PER_TYPE)
                .map(|k| ext.add_ghost_var(mid, &format!("$ph_{t}_{k}"), *t))
                .collect();
            phantoms.insert((mid, t.symbol()), slots);
        }
    }

    let mut methods = Vec::new();
    for &mid in &method_ids {
        let m = ext.method(mid).clone();
        let bp = transform_method_with(
            &ext,
            &m,
            spec,
            derived,
            EntryAssumption::Clean,
            ClientCallPolicy::Defer,
        );
        let exit = m.cfg.exit().0;
        methods.push(MethodTables { bp, seeds: Vec::new(), exit });
    }

    let mut ctx = Ctx { program: ext, spec, methods, ghost_of, formal_of, phantoms };
    ctx.compute_seeds();
    let (summaries, summary_iterations) = ctx.summary_fixpoint(gov)?;
    let (violations, reachable) = ctx.tabulate(main_id, &summaries, derived, explain, gov)?;
    let max_instances = ctx.methods.iter().map(|m| m.bp.preds.len()).max().unwrap_or(0);
    INTERPROC_SUMMARY_ITERATIONS.add(summary_iterations as u64);
    canvas_telemetry::trace::instant(
        "interproc.fixpoint",
        "solver",
        &[
            ("summary_iterations", summary_iterations as u64),
            ("reachable_methods", reachable.len() as u64),
        ],
    );
    Ok(InterprocResult { violations, reachable, summary_iterations, max_instances })
}

impl Ctx<'_> {
    fn is_ghost_or_phantom(&self, v: VarId) -> bool {
        let var = self.program.var(v);
        var.name.starts_with("$in_") || var.name.starts_with("$ph_")
    }

    fn is_static(&self, v: VarId) -> bool {
        self.program.var(v).owner.is_none()
    }

    /// Seeds: at entry, an instance over formals/statics/ghosts/phantoms has
    /// the value of its ghostified counterpart (formals ↦ ghosts).
    fn compute_seeds(&mut self) {
        for mi in 0..self.methods.len() {
            let mid = self.methods[mi].bp.method;
            let mut seeds = Vec::with_capacity(self.methods[mi].bp.preds.len());
            for p in self.methods[mi].bp.preds.clone() {
                let mut ok = true;
                let mut gargs = Vec::with_capacity(p.args.len());
                for &a in &p.args {
                    if let Some(&g) = self.ghost_of.get(&(mid, a)) {
                        gargs.push(g);
                    } else if self.is_static(a) || self.is_ghost_or_phantom(a) {
                        gargs.push(a);
                    } else {
                        ok = false; // locals/temps/$ret are null at entry
                        break;
                    }
                }
                seeds.push(if ok {
                    match self.methods[mi].bp.pred_index(p.family, &gargs) {
                        Some(idx) => Some(Seed::Fact(idx)),
                        None => match self.methods[mi].bp.consts.get(&(p.family, gargs)) {
                            Some(true) => Some(Seed::One),
                            _ => None,
                        },
                    }
                } else {
                    None
                });
            }
            self.methods[mi].seeds = seeds;
        }
    }

    /// Fact-domain width: one bit per instance plus bit 0 = Const1.
    fn width(&self, m: usize) -> usize {
        self.methods[m].bp.preds.len() + 1
    }

    /// Phase 1: exit summaries (sets of entry facts per instance).
    fn summary_fixpoint(&self, gov: &Meter) -> Result<(Vec<Vec<BitSet>>, usize), Exhaustion> {
        let n = self.methods.len();
        let mut summaries: Vec<Vec<BitSet>> = (0..n)
            .map(|m| vec![BitSet::new(self.width(m)); self.methods[m].bp.preds.len()])
            .collect();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut changed = false;
            for m in 0..n {
                let new = self.run_summary(m, &summaries, gov)?;
                if new != summaries[m] {
                    summaries[m] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok((summaries, iterations))
    }

    /// One set-domain pass over method `m` with the current summary map.
    fn run_summary(
        &self,
        m: usize,
        summaries: &[Vec<BitSet>],
        gov: &Meter,
    ) -> Result<Vec<BitSet>, Exhaustion> {
        let mt = &self.methods[m];
        let bp = &mt.bp;
        let width = self.width(m);
        let npreds = bp.preds.len();
        let nodes = bp.node_count;
        let mut state: Vec<Option<Vec<BitSet>>> = vec![None; nodes];
        let mut entry_state = vec![BitSet::new(width); npreds];
        for (k, seed) in mt.seeds.iter().enumerate() {
            match seed {
                Some(Seed::Fact(s)) => entry_state[k].set(s + 1, true),
                Some(Seed::One) => entry_state[k].set(0, true),
                None => {}
            }
        }
        state[bp.entry] = Some(entry_state);

        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (k, e) in bp.edges.iter().enumerate() {
            out_edges[e.from].push(k);
        }
        let mut work = vec![bp.entry];
        let mut on_work = vec![false; nodes];
        on_work[bp.entry] = true;
        while let Some(node) = work.pop() {
            gov.tick()?;
            on_work[node] = false;
            let Some(cur) = state[node].clone() else { continue };
            for &ek in &out_edges[node] {
                let e = &bp.edges[ek];
                let out = self.transfer_sets(m, ek, &cur, summaries);
                let changed = match &mut state[e.to] {
                    t @ None => {
                        *t = Some(out);
                        true
                    }
                    Some(t) => {
                        let mut ch = false;
                        for (a, b) in t.iter_mut().zip(&out) {
                            ch |= a.union_with(b);
                        }
                        ch
                    }
                };
                if changed && !on_work[e.to] {
                    on_work[e.to] = true;
                    work.push(e.to);
                }
            }
        }
        Ok(match state[mt.exit].take() {
            Some(s) => s,
            None => vec![BitSet::new(width); npreds], // exit unreachable
        })
    }

    /// Set-domain transfer across edge `ek` of method `m`.
    fn transfer_sets(
        &self,
        m: usize,
        ek: usize,
        cur: &[BitSet],
        summaries: &[Vec<BitSet>],
    ) -> Vec<BitSet> {
        let bp = &self.methods[m].bp;
        let ir_edge = &self.program.method(bp.method).cfg.edges()[ek];
        if let Instr::CallClient { dst, callee, args, .. } = &ir_edge.instr {
            let mut out = Vec::with_capacity(cur.len());
            for k in 0..bp.preds.len() {
                let mut set = BitSet::new(self.width(m));
                match self.translate_effect(m, callee.0, args, *dst, k, summaries) {
                    Some(backs) => {
                        for b in backs {
                            match b {
                                Back::Const1 => set.set(0, true),
                                Back::Pred(j) => {
                                    set.union_with(&cur[j]);
                                }
                            }
                        }
                    }
                    None => set.set(0, true), // untranslatable: conservative
                }
                out.push(set);
            }
            return out;
        }
        let mut out = cur.to_vec();
        let e = &bp.edges[ek];
        for (dst, rhs) in &e.assigns {
            let mut set = BitSet::new(self.width(m));
            match rhs {
                Rhs::Havoc => set.set(0, true),
                Rhs::Disj(ops) => {
                    for op in ops {
                        match op {
                            Operand::Const(true) => set.set(0, true),
                            Operand::Const(false) => {}
                            Operand::Var(v) => {
                                set.union_with(&cur[*v]);
                            }
                        }
                    }
                }
            }
            out[*dst] = set;
        }
        out
    }

    /// Picks (or reuses) a phantom slot in `callee` for caller var `a`.
    fn assign_phantom(
        &self,
        a: VarId,
        callee: MethodId,
        assign: &mut HashMap<VarId, VarId>,
        used: &mut HashMap<Symbol, usize>,
    ) -> Option<VarId> {
        if let Some(&ph) = assign.get(&a) {
            return Some(ph);
        }
        let ty = self.program.var(a).ty.symbol();
        let slots = self.phantoms.get(&(callee, ty))?;
        let k = used.entry(ty).or_insert(0);
        let slot = *slots.get(*k)?;
        *k += 1;
        assign.insert(a, slot);
        Some(slot)
    }

    /// Computes, for caller instance `k` across a call, the caller facts its
    /// post-call value is the union of. `None` = untranslatable.
    fn translate_effect(
        &self,
        m: usize,
        callee: usize,
        args: &[VarId],
        dst: Option<VarId>,
        k: usize,
        summaries: &[Vec<BitSet>],
    ) -> Option<Vec<Back>> {
        let caller_bp = &self.methods[m].bp;
        let callee_bp = &self.methods[callee].bp;
        let callee_mid = callee_bp.method;
        let callee_params = &self.program.method(callee_mid).params;
        let callee_ret = self.program.method(callee_mid).ret_var;
        let p = &caller_bp.preds[k];

        // forward mapping caller var -> callee var
        let mut phantom_assign: HashMap<VarId, VarId> = HashMap::new();
        let mut phantom_used: HashMap<Symbol, usize> = HashMap::new();
        let mut mapped = Vec::with_capacity(p.args.len());
        for &a in &p.args {
            let ma = if Some(a) == dst {
                callee_ret?
            } else if self.is_static(a) {
                a
            } else if let Some(g) = args
                .iter()
                .position(|&x| x == a)
                .and_then(|pos| callee_params.get(pos))
                .and_then(|f| self.ghost_of.get(&(callee_mid, *f)))
            {
                // the ghost of the formal this actual binds to
                *g
            } else {
                // unpassed caller local (or passed only into a non-component
                // slot): a phantom stands for it inside the callee
                self.assign_phantom(a, callee_mid, &mut phantom_assign, &mut phantom_used)?
            };
            mapped.push(ma);
        }

        // the callee instance whose exit value we need
        let facts = match callee_bp.pred_index(p.family, &mapped) {
            Some(q) => &summaries[callee][q],
            None => {
                return match callee_bp.consts.get(&(p.family, mapped)) {
                    Some(true) => Some(vec![Back::Const1]),
                    Some(false) => Some(Vec::new()),
                    None => None,
                }
            }
        };

        // reverse phantom map
        let phantom_back: HashMap<VarId, VarId> =
            phantom_assign.iter().map(|(a, ph)| (*ph, *a)).collect();

        let mut backs = Vec::new();
        for bit in facts.iter_ones() {
            if bit == 0 {
                backs.push(Back::Const1);
                continue;
            }
            let fact = &callee_bp.preds[bit - 1];
            let mut cargs = Vec::with_capacity(fact.args.len());
            let mut ok = true;
            for &g in &fact.args {
                let back = if let Some(&f) = self.formal_of.get(&g) {
                    // ghost of formal f: the actual bound to it
                    match callee_params.iter().position(|&x| x == f) {
                        Some(pos) => args.get(pos).copied(),
                        None => None,
                    }
                } else if self.is_static(g) {
                    Some(g)
                } else if let Some(&a) = phantom_back.get(&g) {
                    Some(a)
                } else {
                    None
                };
                match back {
                    Some(v) => cargs.push(v),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                return None;
            }
            match caller_bp.pred_index(fact.family, &cargs) {
                Some(j) => backs.push(Back::Pred(j)),
                None => match caller_bp.consts.get(&(fact.family, cargs)) {
                    Some(true) => backs.push(Back::Const1),
                    Some(false) => {}
                    None => return None,
                },
            }
        }
        Some(backs)
    }

    /// Phase 2: top-down tabulation and violation collection.
    fn tabulate(
        &self,
        main: MethodId,
        summaries: &[Vec<BitSet>],
        derived: &Derived,
        explain: bool,
        gov: &Meter,
    ) -> Result<(Vec<Violation>, Vec<MethodId>), Exhaustion> {
        let n = self.methods.len();
        let mut entry_in: Vec<Option<BitSet>> = vec![None; n];
        entry_in[main.0] = Some(BitSet::new(self.methods[main.0].bp.preds.len()));
        let mut work = vec![main.0];
        let mut per_method_violations: Vec<Vec<Violation>> = vec![Vec::new(); n];

        while let Some(m) = work.pop() {
            gov.tick()?;
            let entry = entry_in[m].clone().expect("queued methods have entries");
            let (state, viols) = self.run_concrete(m, &entry, summaries, derived, explain, gov)?;
            per_method_violations[m] = viols;
            // propagate callee entries
            let bp = &self.methods[m].bp;
            let ir = &self.program.method(bp.method).cfg;
            for (ek, e) in ir.edges().iter().enumerate() {
                if let Instr::CallClient { callee, args, .. } = &e.instr {
                    let Some(cur) = &state[bp.edges[ek].from] else { continue };
                    let centry = self.callee_entry(m, callee.0, args, cur);
                    let changed = match &mut entry_in[callee.0] {
                        t @ None => {
                            *t = Some(centry);
                            true
                        }
                        Some(t) => t.union_with(&centry),
                    };
                    if changed && !work.contains(&callee.0) {
                        work.push(callee.0);
                    }
                }
            }
        }

        let mut violations = Vec::new();
        let mut reachable = Vec::new();
        for m in 0..n {
            if entry_in[m].is_some() {
                reachable.push(MethodId(m));
                violations.extend(per_method_violations[m].clone());
            }
        }
        violations.sort_by_key(|v| (v.site.method, v.site.span, v.site.what.clone()));
        violations.dedup_by(|a, b| a.site == b.site);
        Ok((violations, reachable))
    }

    /// Concrete may-be-1 pass over method `m` (summaries applied at calls).
    #[allow(clippy::type_complexity)]
    fn run_concrete(
        &self,
        m: usize,
        entry: &BitSet,
        summaries: &[Vec<BitSet>],
        derived: &Derived,
        explain: bool,
        gov: &Meter,
    ) -> Result<(Vec<Option<BitSet>>, Vec<Violation>), Exhaustion> {
        let bp = &self.methods[m].bp;
        let nodes = bp.node_count;
        let mut prov =
            if explain { Provenance::new(nodes, bp.preds.len()) } else { Provenance::empty() };
        let mut state: Vec<Option<BitSet>> = vec![None; nodes];
        state[bp.entry] = Some(entry.clone());
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (k, e) in bp.edges.iter().enumerate() {
            out_edges[e.from].push(k);
        }
        let mut work = vec![bp.entry];
        let mut on_work = vec![false; nodes];
        on_work[bp.entry] = true;
        while let Some(node) = work.pop() {
            gov.tick()?;
            on_work[node] = false;
            let Some(cur) = state[node].clone() else { continue };
            for &ek in &out_edges[node] {
                let e = &bp.edges[ek];
                let out = self.transfer_concrete(m, ek, &cur, summaries);
                if explain {
                    for p in out.iter_ones() {
                        if !state[e.to].as_ref().is_some_and(|t| t.get(p)) {
                            let src = self.justify_concrete(m, ek, p, &cur, summaries);
                            prov.record(e.to, p, ek, src);
                        }
                    }
                }
                let changed = match &mut state[e.to] {
                    t @ None => {
                        *t = Some(out);
                        true
                    }
                    Some(t) => t.union_with(&out),
                };
                if changed && !on_work[e.to] {
                    on_work[e.to] = true;
                    work.push(e.to);
                }
            }
        }
        // checks
        let mut viols = Vec::new();
        for c in &bp.checks {
            let Some(s) = &state[c.node] else { continue };
            let mut culprits = Vec::new();
            let mut fires = false;
            for op in &c.preds {
                match op {
                    Operand::Const(true) => fires = true,
                    Operand::Const(false) => {}
                    Operand::Var(v) => {
                        if s.get(*v) {
                            fires = true;
                            culprits.push(*v);
                        }
                    }
                }
            }
            if fires {
                let witness = explain.then(|| match culprits.first() {
                    Some(&p) => prov.trace(bp, &self.program, derived, c.node, p),
                    None => Vec::new(),
                });
                viols.push(Violation { site: c.site.clone(), culprits, witness });
            }
        }
        Ok((state, viols))
    }

    /// Which pre-state fact justifies `p` being true after edge `ek`
    /// (provenance recording; explain mode only). Call edges attribute facts
    /// set by the callee's summary to the call itself (`None`) unless they
    /// are pure propagations of a caller fact.
    fn justify_concrete(
        &self,
        m: usize,
        ek: usize,
        p: usize,
        cur: &BitSet,
        summaries: &[Vec<BitSet>],
    ) -> Option<usize> {
        let bp = &self.methods[m].bp;
        let ir_edge = &self.program.method(bp.method).cfg.edges()[ek];
        if let Instr::CallClient { dst, callee, args, .. } = &ir_edge.instr {
            return match self.translate_effect(m, callee.0, args, *dst, p, summaries) {
                Some(backs) => {
                    if backs.contains(&Back::Const1) {
                        None
                    } else {
                        backs.iter().find_map(|b| match b {
                            Back::Pred(j) if cur.get(*j) => Some(*j),
                            _ => None,
                        })
                    }
                }
                // untranslatable: conservatively set by the call
                None => None,
            };
        }
        justify(&bp.edges[ek], p, |q| cur.get(q))
    }

    fn transfer_concrete(
        &self,
        m: usize,
        ek: usize,
        cur: &BitSet,
        summaries: &[Vec<BitSet>],
    ) -> BitSet {
        let bp = &self.methods[m].bp;
        let ir_edge = &self.program.method(bp.method).cfg.edges()[ek];
        if let Instr::CallClient { dst, callee, args, .. } = &ir_edge.instr {
            let mut out = BitSet::new(bp.preds.len());
            for k in 0..bp.preds.len() {
                let bit = match self.translate_effect(m, callee.0, args, *dst, k, summaries) {
                    Some(backs) => backs.iter().any(|b| match b {
                        Back::Const1 => true,
                        Back::Pred(j) => cur.get(*j),
                    }),
                    None => true,
                };
                out.set(k, bit);
            }
            return out;
        }
        let mut out = cur.clone();
        for (dst, rhs) in &bp.edges[ek].assigns {
            let bit = match rhs {
                Rhs::Havoc => true,
                Rhs::Disj(ops) => ops.iter().any(|op| match op {
                    Operand::Const(c) => *c,
                    Operand::Var(v) => cur.get(*v),
                }),
            };
            out.set(*dst, bit);
        }
        out
    }

    /// Translates the caller state at a call into the callee's entry state.
    fn callee_entry(&self, m: usize, callee: usize, args: &[VarId], cur: &BitSet) -> BitSet {
        let caller_bp = &self.methods[m].bp;
        let callee_bp = &self.methods[callee].bp;
        let callee_mid = callee_bp.method;
        let callee_params = &self.program.method(callee_mid).params;
        let mut out = BitSet::new(callee_bp.preds.len());
        for (q, p) in callee_bp.preds.iter().enumerate() {
            let mut cargs = Vec::with_capacity(p.args.len());
            let mut ok = true;
            for &g in &p.args {
                let back = if let Some(&f) = self.formal_of.get(&g) {
                    callee_params
                        .iter()
                        .position(|&x| x == f)
                        .and_then(|pos| args.get(pos))
                        .copied()
                } else if callee_params.contains(&g) {
                    callee_params
                        .iter()
                        .position(|&x| x == g)
                        .and_then(|pos| args.get(pos))
                        .copied()
                } else if self.is_static(g) {
                    Some(g)
                } else {
                    None // locals, temps, $ret, phantoms: 0 at entry
                };
                match back {
                    Some(v) => cargs.push(v),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let bit = match caller_bp.pred_index(p.family, &cargs) {
                Some(j) => cur.get(j),
                None => matches!(caller_bp.consts.get(&(p.family, cargs)), Some(true)),
            };
            if bit {
                out.set(q, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_wp::derive_abstraction;

    fn certify(src: &str) -> Vec<Violation> {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        analyze(&program, &spec, &derived).violations
    }

    #[test]
    fn pure_callee_is_transparent() {
        // intraprocedurally this is flagged (unknown callee); the
        // interprocedural engine sees that help() touches nothing
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        help();
        i.next();
    }
    static void help() { }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn callee_mutating_passed_set_stales_caller_iterator() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        grow(s);
        i.next();
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].site.what, "i.next()");
    }

    #[test]
    fn callee_mutating_other_set_is_harmless() {
        // context sensitivity: grow() is called on a *different* set
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Set t = new Set();
        Iterator i = s.iterator();
        grow(t);
        i.next();
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn polymorphic_contexts_do_not_pollute() {
        // grow is called on s in one context and on t in another; only the
        // iterator over s is staled by the first call
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Set t = new Set();
        Iterator is = s.iterator();
        Iterator it = t.iterator();
        grow(s);
        it.next();
        is.next();
    }
    static void grow(Set x) { x.add("y"); }
}
"#,
        );
        let whats: Vec<&str> = v.iter().map(|x| x.site.what.as_str()).collect();
        assert_eq!(whats, vec!["is.next()"], "{v:#?}");
    }

    #[test]
    fn mutation_through_static() {
        let v = certify(
            r#"
class Main {
    static Set shared;
    static void main() {
        shared = new Set();
        Iterator i = shared.iterator();
        poke();
        i.next();
    }
    static void poke() { shared.add("z"); }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
    }

    #[test]
    fn returned_iterator_staleness_flows_back() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = fresh(s);
        s.add("x");
        i.next();
    }
    static Iterator fresh(Set x) { return x.iterator(); }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        // and without the add, no alarm
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = fresh(s);
        i.next();
    }
    static Iterator fresh(Set x) { return x.iterator(); }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn checks_inside_callee_respect_context() {
        // use(it) is safe from the first call site but not the second
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator a = s.iterator();
        use(a);
        s.add("x");
        Iterator b = s.iterator();
        s.add("y");
        use(b);
    }
    static void use(Iterator it) { it.next(); }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].site.what, "it.next()");
    }

    #[test]
    fn fig1_worklist_make_is_flagged() {
        // the paper's Fig. 1 Make program, SCMP-shaped (worklist set in a
        // static): processing the worklist while adding to it throws CME
        let v = certify(
            r#"
class Make {
    static Set worklist;
    static void main() {
        worklist = new Set();
        processWorklist();
    }
    static void processWorklist() {
        for (Iterator i = worklist.iterator(); i.hasNext(); ) {
            i.next();
            if (true) { processItem(); }
        }
    }
    static void processItem() { doSubproblem(); }
    static void doSubproblem() { worklist.add("newitem"); }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].site.what.contains("next"));
    }

    #[test]
    fn recursion_terminates_and_is_sound() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        rec(s, 0);
        i.next();
    }
    static void rec(Set x, int d) {
        if (true) { rec(x, d); }
        if (true) { x.add("r"); }
    }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
    }

    #[test]
    fn reachable_only() {
        let v = certify(
            r#"
class Main {
    static void main() { }
    static void dead(Set s) {
        Iterator i = s.iterator();
        s.add("x");
        i.next();
    }
}
"#,
        );
        // dead() is never called; no violations reported
        assert!(v.is_empty(), "{v:#?}");
    }
}
