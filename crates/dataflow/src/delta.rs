//! Within-method delta re-solve: seed the FDS fixpoint from a cached
//! solution instead of bottom.
//!
//! When `canvas-incr` holds a completed [`crate::fds`] solution for an
//! earlier version of a method, a cold re-solve throws that work away and
//! restarts every node from ⊥. This module re-solves only the *changed
//! region* instead:
//!
//! 1. The cached payload records the old boolean program's edge list as
//!    `(from, to, assigns-digest)` triples. Diffing it against the new
//!    program's edges (as multisets) yields the changed edges; the
//!    **affected region** `A` is the forward closure, over the union of
//!    the old and new control-flow graphs, of the changed edges' targets
//!    (plus the entry node when the entry assumption's unknown set
//!    changed).
//! 2. Every node outside `A` has exactly the same multiset of entry paths
//!    in both programs — no changed edge can reach it in either graph —
//!    so its least-fixpoint value is *identical* and the cached row is
//!    carried over verbatim. Because `A` is forward-closed there are no
//!    edges from `A` back into its complement, so the carried rows can
//!    never be grown by the re-solve: solving `A` alone from the carried
//!    boundary is the exact least fixpoint of the new program.
//! 3. Before trusting a carried row the seed is **validated as a
//!    pre-fixpoint** of the new program: every new-program edge between
//!    carried (reachable, unaffected) nodes must map the carried source
//!    row inside the carried target row, and the entry row must cover the
//!    entry-unknown seed. A cached solution that fails any check — a
//!    corrupt store, a digest collision — is rejected and the caller
//!    falls back to a cold solve. Validation costs one `O(E · W)` sweep,
//!    which is also the floor for any solver, so the fallback is free.
//!
//! Reachability matters: facts must only flow out of nodes the *new*
//! program actually reaches (an unreachable carried node could otherwise
//! inject `Havoc`/constant-true facts), so the seed worklist holds only
//! entry-reachable boundary nodes, computed by one `O(E)` sweep over the
//! new graph.
//!
//! The result is byte-identical to a cold solve when the cached solution
//! is the true least fixpoint of the recorded program (the only way
//! `canvas-incr` produces one); a validated-but-imprecise seed (possible
//! only under store corruption that happens to be transfer-closed) still
//! yields a sound post-fixpoint, i.e. a conservative verdict.

use canvas_abstraction::{BoolEdge, BoolProgram, Operand, Rhs};
use canvas_faults::{Exhaustion, Meter};

use crate::fds::{
    apply_edge, FdsResult, TransferPlan, FDS_EDGE_VISITS, FDS_WORDS_TOUCHED, FDS_WORKLIST_POPS,
};
use crate::soa::{is_subset, word_get, word_set, WordArena};

/// Deterministic count of FDS solves seeded from a cached solution.
pub static DELTA_SEEDED: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("incr.delta_seeded");
/// Deterministic count of seeds rejected (shape mismatch, failed
/// pre-fixpoint validation, or gating) that fell back to a cold solve.
pub static DELTA_FALLBACK: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("incr.delta_fallback");

/// Records that a seed was available but the cold path ran instead.
pub fn note_fallback() {
    DELTA_FALLBACK.incr();
    canvas_telemetry::events::info(
        "incr.delta",
        "delta seed rejected; falling back to a cold solve",
    );
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A content digest of an edge's parallel assignment (destination,
/// right-hand-side shape, operands), independent of the edge's endpoints.
pub fn edge_digest(e: &BoolEdge) -> u64 {
    let mut h = Fnv::new();
    h.u64(e.assigns.len() as u64);
    for (dst, rhs) in &e.assigns {
        h.u64(*dst as u64);
        match rhs {
            Rhs::Havoc => h.u64(u64::MAX),
            Rhs::Disj(ops) => {
                h.u64(ops.len() as u64);
                for op in ops {
                    match op {
                        Operand::Const(c) => h.u64(2 + u64::from(*c)),
                        Operand::Var(v) => h.u64(4 + 8 * *v as u64),
                    }
                }
            }
        }
    }
    h.0
}

/// One edge of a cached boolean program: endpoints plus the assignment
/// digest, enough to diff against a rebuilt program edge-by-edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeltaEdge {
    /// Source node.
    pub from: u32,
    /// Target node.
    pub to: u32,
    /// [`edge_digest`] of the parallel assignment.
    pub digest: u64,
}

/// The cached shape of a method's boolean program: everything the delta
/// diff needs, stored next to the cached solution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeltaPayload {
    /// Node count of the recorded program.
    pub nodes: u32,
    /// Entry node of the recorded program.
    pub entry: u32,
    /// Entry-unknown predicate indices, in transform order.
    pub entry_unknown: Vec<u32>,
    /// Edge list, index-aligned with the recorded program.
    pub edges: Vec<DeltaEdge>,
}

impl DeltaPayload {
    /// Captures the delta-diff shape of `bp`.
    pub fn of(bp: &BoolProgram) -> DeltaPayload {
        DeltaPayload {
            nodes: bp.node_count as u32,
            entry: bp.entry as u32,
            entry_unknown: bp.entry_unknown.iter().map(|&k| k as u32).collect(),
            edges: bp
                .edges
                .iter()
                .map(|e| DeltaEdge { from: e.from as u32, to: e.to as u32, digest: edge_digest(e) })
                .collect(),
        }
    }
}

/// A cached solution plus the shape of the program it solved, ready to
/// seed [`analyze_delta`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeltaSeed {
    /// The recorded program shape.
    pub payload: DeltaPayload,
    /// Predicate count (bit width) of the recorded solution.
    pub preds: u32,
    /// Per-node may-be-1 solution rows, as sorted bit indices.
    pub solution: Vec<Vec<u32>>,
}

/// Solves `bp` seeded from a cached solution of an earlier version of the
/// same method. Returns `Ok(None)` when the seed is unusable (shape
/// mismatch or failed pre-fixpoint validation) — the caller then runs the
/// cold kernel. See the module docs for the soundness argument.
///
/// # Errors
///
/// Returns the [`Exhaustion`] when the shared governor trips mid-solve.
pub fn analyze_delta(
    bp: &BoolProgram,
    seed: &DeltaSeed,
    gov: &Meter,
) -> Result<Option<FdsResult>, Exhaustion> {
    canvas_faults::solver_abort();
    let n = bp.node_count;
    let width = bp.preds.len();
    let p = &seed.payload;
    let old_n = p.nodes as usize;
    // shape gate: the predicate space must match bit-for-bit and the entry
    // node must keep its id (edits may add or remove nodes — a node id
    // beyond the old program is affected by construction, since every one
    // of its in-edges is unmatched in the diff); the solution must be
    // internally consistent with its own recorded program
    if seed.preds as usize != width
        || p.entry as usize != bp.entry
        || seed.solution.len() != old_n
        || seed.solution.iter().any(|row| row.iter().any(|&b| b as usize >= width))
    {
        DELTA_FALLBACK.incr();
        return Ok(None);
    }

    // 1. multiset edge diff: +1 per old edge, -1 per new edge; any key
    //    left unbalanced changed, and its target starts the affected set.
    //    An old edge into a node the new program no longer has marks
    //    nothing (there is no such node to solve); an old edge *out of* a
    //    dropped node is itself unmatched, so its target is marked.
    let mut counts: std::collections::HashMap<(u32, u32, u64), i64> =
        std::collections::HashMap::new();
    for e in &p.edges {
        *counts.entry((e.from, e.to, e.digest)).or_insert(0) += 1;
    }
    for e in &bp.edges {
        *counts.entry((e.from as u32, e.to as u32, edge_digest(e))).or_insert(0) -= 1;
    }
    let mut affected = vec![false; n];
    let mut frontier: Vec<usize> = Vec::new();
    for (&(_, to, _), &c) in &counts {
        if c != 0 && (to as usize) < n && !affected[to as usize] {
            affected[to as usize] = true;
            frontier.push(to as usize);
        }
    }
    let entry_unknown_new: Vec<u32> = bp.entry_unknown.iter().map(|&k| k as u32).collect();
    if entry_unknown_new != p.entry_unknown && !affected[bp.entry] {
        affected[bp.entry] = true;
        frontier.push(bp.entry);
    }

    // 2. forward closure of the affected targets over the UNION graph
    //    (old edges touching dropped node ids are skipped: an old path
    //    through a dropped node re-enters the new id space only via an
    //    unmatched edge, whose target was already marked in step 1)
    let mut union_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in &p.edges {
        if (e.from as usize) < n && (e.to as usize) < n {
            union_adj[e.from as usize].push(e.to);
        }
    }
    for e in &bp.edges {
        union_adj[e.from].push(e.to as u32);
    }
    while let Some(u) = frontier.pop() {
        for &v in &union_adj[u] {
            if !affected[v as usize] {
                affected[v as usize] = true;
                frontier.push(v as usize);
            }
        }
    }

    // 3. entry reachability over the NEW graph: facts may only flow out of
    //    nodes the new program reaches
    let mut new_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in &bp.edges {
        new_adj[e.from].push(e.to as u32);
    }
    let mut reachable = vec![false; n];
    let mut stack = vec![bp.entry];
    reachable[bp.entry] = true;
    while let Some(u) = stack.pop() {
        for &v in &new_adj[u] {
            if !reachable[v as usize] {
                reachable[v as usize] = true;
                stack.push(v as usize);
            }
        }
    }

    // 4. load the carried rows; affected rows start at ⊥. A new node id
    //    beyond the old program with no solution row is either affected
    //    (any in-edge is unmatched) or unreachable, where ⊥ is its exact
    //    fixpoint value.
    let mut arena = WordArena::new(n, width);
    for (node, row) in seed.solution.iter().enumerate().take(n) {
        if !affected[node] {
            arena.load_bits(node, row);
        }
    }
    if affected[bp.entry] {
        for &k in &bp.entry_unknown {
            arena.set(bp.entry, k, true);
        }
    }

    let stride = arena.stride();
    let mut scratch = vec![0u64; stride];

    // 5. pre-fixpoint validation of the carried region: every new edge
    //    between carried reachable nodes must already be satisfied, and
    //    the carried entry row must cover the entry seed
    if !affected[bp.entry] && bp.entry_unknown.iter().any(|&k| !arena.get(bp.entry, k)) {
        DELTA_FALLBACK.incr();
        return Ok(None);
    }
    for e in &bp.edges {
        if affected[e.from] || affected[e.to] || !reachable[e.from] {
            continue;
        }
        scratch.copy_from_slice(arena.row(e.from));
        for (dst, rhs) in &e.assigns {
            let bit = match rhs {
                Rhs::Havoc => true,
                Rhs::Disj(ops) => ops.iter().any(|op| match op {
                    Operand::Const(c) => *c,
                    Operand::Var(v) => word_get(arena.row(e.from), *v),
                }),
            };
            word_set(&mut scratch, *dst, bit);
        }
        if !is_subset(&scratch, arena.row(e.to)) {
            DELTA_FALLBACK.incr();
            return Ok(None);
        }
    }

    // 6. seed the worklist: reachable carried nodes with an edge into the
    //    affected region (ascending, for determinism), plus the entry when
    //    it is itself affected
    let (out_start, out_idx) = crate::fds::csr_out_edges(n, &bp.edges);
    let out_of = |node: usize| &out_idx[out_start[node] as usize..out_start[node + 1] as usize];
    let mut work: Vec<usize> = Vec::new();
    let mut on_work = vec![false; n];
    let mut reached = vec![false; n];
    for node in 0..n {
        if !affected[node] && reachable[node] {
            reached[node] = true;
            if out_of(node).iter().any(|&ek| affected[bp.edges[ek as usize].to]) {
                on_work[node] = true;
                work.push(node);
            }
        }
    }
    if affected[bp.entry] && !on_work[bp.entry] {
        on_work[bp.entry] = true;
        work.push(bp.entry);
    }
    if affected[bp.entry] {
        reached[bp.entry] = true;
    }

    // 7. the bit-parallel kernel loop, verbatim — only the starting state
    //    and worklist differ from a cold solve. Seeded nodes carry whole
    //    rows their first pop must propagate, so their nonzero words start
    //    dirty; everything after that is the same delta discipline as the
    //    cold kernel.
    let plan = TransferPlan::build(&bp.edges);
    let mut vals: Vec<u64> = Vec::new();
    let mw = stride.div_ceil(64).max(1);
    let mut dirty: Vec<u64> = vec![0; n * mw];
    let mut pop_mask: Vec<u64> = vec![0; mw];
    for &node in &work {
        crate::fds::mark_row_dirty(&arena, &mut dirty, mw, node);
    }
    let mut edge_visits = 0usize;
    let mut pops = 0u64;
    while let Some(node) = work.pop() {
        pops += 1;
        on_work[node] = false;
        pop_mask.copy_from_slice(&dirty[node * mw..(node + 1) * mw]);
        dirty[node * mw..(node + 1) * mw].fill(0);
        for &ek in &out_idx[out_start[node] as usize..out_start[node + 1] as usize] {
            let ek = ek as usize;
            let e = &bp.edges[ek];
            // carried-to-carried edges are already validated as closed;
            // skipping them keeps the pop/visit tally proportional to the
            // changed region
            if !affected[e.to] && !affected[e.from] {
                continue;
            }
            edge_visits += 1;
            if let Err(ex) = gov.tick() {
                FDS_WORKLIST_POPS.add(pops);
                FDS_EDGE_VISITS.add(edge_visits as u64);
                FDS_WORDS_TOUCHED.add(2 * stride as u64 * edge_visits as u64);
                return Err(ex);
            }
            let grew = apply_edge(&mut arena, ek, e, &plan, &mut vals, &pop_mask, &mut dirty, mw);
            let first_visit = !reached[e.to];
            reached[e.to] = true;
            if (grew || first_visit) && !on_work[e.to] {
                on_work[e.to] = true;
                work.push(e.to);
            }
        }
    }
    FDS_WORKLIST_POPS.add(pops);
    FDS_EDGE_VISITS.add(edge_visits as u64);
    FDS_WORDS_TOUCHED.add(2 * stride as u64 * edge_visits as u64);
    DELTA_SEEDED.incr();
    canvas_telemetry::trace::instant(
        "fds.delta_fixpoint",
        "solver",
        &[("edge_visits", edge_visits as u64), ("worklist_pops", pops)],
    );
    Ok(Some(FdsResult::new(arena, edge_visits, pops as usize)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fds;
    use canvas_abstraction::{transform_method, EntryAssumption};
    use canvas_minijava::Program;
    use canvas_wp::derive_abstraction;

    fn boolprog(src: &str) -> BoolProgram {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        let main = program.main_method().expect("needs a main");
        transform_method(&program, main, &spec, &derived, EntryAssumption::Clean)
    }

    fn seed_of(bp: &BoolProgram) -> DeltaSeed {
        let res = fds::analyze(bp);
        DeltaSeed {
            payload: DeltaPayload::of(bp),
            preds: bp.preds.len() as u32,
            solution: (0..bp.node_count).map(|r| res.row_ones(r)).collect(),
        }
    }

    const BASE: &str = r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("a");
        Iterator i = s.iterator();
        i.next();
        s.add("b");
        if (true) { i.next(); }
    }
    static boolean c() { return true; }
}
"#;

    #[test]
    fn identical_program_replays_the_cached_solution_with_zero_work() {
        let bp = boolprog(BASE);
        let seed = seed_of(&bp);
        let gov = Meter::disarmed();
        let res = analyze_delta(&bp, &seed, &gov).unwrap().expect("seed accepted");
        let cold = fds::analyze(&bp);
        assert!(res.same_solution(&cold));
        assert_eq!(res.edge_visits, 0, "nothing changed, nothing re-solved");
        assert!(res.worklist_pops < cold.worklist_pops);
    }

    #[test]
    fn edited_tail_matches_cold_with_fewer_pops() {
        let before = boolprog(BASE);
        let after = boolprog(&BASE.replace("if (true) { i.next(); }", "i.next();"));
        let seed = seed_of(&before);
        let gov = Meter::disarmed();
        let res = analyze_delta(&after, &seed, &gov).unwrap().expect("seed accepted");
        let cold = fds::analyze(&after);
        assert!(res.same_solution(&cold), "delta must reach the cold fixpoint");
        assert!(
            res.worklist_pops < cold.worklist_pops,
            "delta {} pops vs cold {}",
            res.worklist_pops,
            cold.worklist_pops
        );
    }

    #[test]
    fn corrupt_solution_is_rejected() {
        let bp = boolprog(BASE);
        let mut seed = seed_of(&bp);
        // truncate a solved row: no longer a pre-fixpoint (or, if the row
        // was already empty, the shape gate still accepts and the result
        // stays exact) — flip a mid-program row to something absurd instead
        let width = bp.preds.len() as u32;
        if width > 0 {
            for row in &mut seed.solution {
                row.clear();
            }
            // an all-bottom "solution" fails validation as soon as any
            // reachable edge establishes a fact
            let gov = Meter::disarmed();
            let out = analyze_delta(&bp, &seed, &gov).unwrap();
            let cold = fds::analyze(&bp);
            match out {
                None => {}
                // degenerate programs establish no facts at all; then the
                // bottom seed genuinely is the fixpoint
                Some(res) => assert!(res.same_solution(&cold)),
            }
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let bp = boolprog(BASE);
        let mut seed = seed_of(&bp);
        seed.preds += 1;
        let gov = Meter::disarmed();
        assert!(analyze_delta(&bp, &seed, &gov).unwrap().is_none());
    }
}
