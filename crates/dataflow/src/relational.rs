//! The relational baseline: a set of full valuations per program point.
//!
//! This is the exponential-worst-case analysis the paper contrasts with the
//! independent-attribute FDS engine (§4.6): it tracks *all correlations*
//! between predicate instances. For the derived abstractions the paper
//! proves — and our tests confirm — that the cheap may-be-1 analysis loses
//! no precision on the certification question; this engine is the oracle
//! that confirms it, and the baseline timed in the evaluation.
//!
//! Representation: valuations are interned in a [`ValPool`] (each distinct
//! valuation stored once, named by a dense `u32` id) and a node's state
//! set is a sorted [`SmallIdVec`] of ids, so the inner loop hashes one
//! scratch word-row per transfer instead of allocating and re-hashing a
//! `BitSet` per valuation per insertion. The result surfaces each node's
//! states as a canonically sorted `Vec<BitSet>`, which also makes
//! downstream output (the fig. 8 state dumps) deterministic.

use canvas_abstraction::{BoolProgram, Operand, Rhs};
use canvas_faults::{Exhaustion, Meter};
use canvas_minijava::{Program, Site};
use canvas_wp::Derived;

use crate::bitset::BitSet;
use crate::fds::Violation;
use crate::provenance::{justify, Provenance};
use crate::soa::{word_get, word_set, SmallIdVec, ValPool};

static REL_WORKLIST_POPS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("relational.worklist_pops");
static REL_TRANSFERS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("relational.transfers");
static REL_SOLVE_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("relational.solve");

/// Analysis failure: the state set exceeded the budget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelError {
    /// The node whose state set blew up.
    pub node: usize,
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "relational analysis exceeded {} states at node {}", self.budget, self.node)
    }
}

impl std::error::Error for RelError {}

/// Why a governed relational run stopped early: the engine-specific
/// per-node state budget, or the shared resource governor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelStop {
    /// The engine's own per-node valuation budget (a hard analysis failure).
    States(RelError),
    /// The shared governor tripped (degrades to an inconclusive verdict).
    Budget(Exhaustion),
}

impl std::fmt::Display for RelStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelStop::States(e) => e.fmt(f),
            RelStop::Budget(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RelStop {}

/// The relational fixpoint: per-node sets of valuations, each node's list
/// canonically sorted (by word value, i.e. lowest-bit-pattern first).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelResult {
    /// Reachable valuations per node, sorted canonically.
    pub states: Vec<Vec<BitSet>>,
    /// Total number of valuation-transfer evaluations.
    pub transfers: usize,
}

/// Runs the relational analysis with a per-node state budget.
///
/// # Errors
///
/// Returns [`RelError`] if any node accumulates more than `budget`
/// valuations (the engine is exponential in the worst case).
pub fn analyze(bp: &BoolProgram, budget: usize) -> Result<RelResult, RelError> {
    let disarmed = Meter::disarmed();
    match analyze_inner::<false>(bp, budget, &disarmed) {
        Ok((res, _)) => Ok(res),
        Err(RelStop::States(e)) => Err(e),
        Err(RelStop::Budget(ex)) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Like [`analyze`], but records per-fact provenance (over the may-union of
/// the valuation sets) for witness traces.
///
/// # Errors
///
/// As [`analyze`].
pub fn analyze_traced(
    bp: &BoolProgram,
    budget: usize,
) -> Result<(RelResult, Provenance), RelError> {
    let disarmed = Meter::disarmed();
    match analyze_inner::<true>(bp, budget, &disarmed) {
        Ok(pair) => Ok(pair),
        Err(RelStop::States(e)) => Err(e),
        Err(RelStop::Budget(ex)) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Governed variant of [`analyze`]: one meter tick per valuation transfer,
/// plus governor state checks wherever the engine budget is checked.
///
/// # Errors
///
/// [`RelStop::States`] on the engine's own budget, [`RelStop::Budget`] when
/// the shared governor trips.
pub fn analyze_with(bp: &BoolProgram, budget: usize, gov: &Meter) -> Result<RelResult, RelStop> {
    canvas_faults::solver_abort();
    analyze_inner::<false>(bp, budget, gov).map(|(res, _)| res)
}

/// Governed variant of [`analyze_traced`].
///
/// # Errors
///
/// As [`analyze_with`].
pub fn analyze_traced_with(
    bp: &BoolProgram,
    budget: usize,
    gov: &Meter,
) -> Result<(RelResult, Provenance), RelStop> {
    canvas_faults::solver_abort();
    analyze_inner::<true>(bp, budget, gov)
}

fn analyze_inner<const TRACE: bool>(
    bp: &BoolProgram,
    budget: usize,
    gov: &Meter,
) -> Result<(RelResult, Provenance), RelStop> {
    let _span = REL_SOLVE_TIME.span();
    // Publishes on drop so the budget-exceeded `Err` exits are counted too.
    struct Tally {
        pops: u64,
        transfers: u64,
    }
    impl Drop for Tally {
        fn drop(&mut self) {
            REL_WORKLIST_POPS.add(self.pops);
            REL_TRANSFERS.add(self.transfers);
        }
    }
    let mut tally = Tally { pops: 0, transfers: 0 };

    let n = bp.node_count;
    let width = bp.preds.len();
    let mut pool = ValPool::new(width);
    let stride = pool.stride();
    let mut states: Vec<SmallIdVec> = vec![SmallIdVec::new(); n];
    // provenance over the may-union of each node's valuation set
    let mut prov = if TRACE { Provenance::new(n, width) } else { Provenance::empty() };
    let mut may: Vec<BitSet> = if TRACE { vec![BitSet::new(width); n] } else { Vec::new() };

    // entry states: all combinations of the unknown bits
    let mut entry_rows: Vec<Vec<u64>> = vec![vec![0u64; stride]];
    for &k in &bp.entry_unknown {
        let mut more = Vec::with_capacity(entry_rows.len());
        for row in &entry_rows {
            let mut t = row.clone();
            word_set(&mut t, k, true);
            more.push(t);
        }
        entry_rows.extend(more);
        if entry_rows.len() > budget {
            return Err(RelStop::States(RelError { node: bp.entry, budget }));
        }
        gov.check_states(entry_rows.len()).map_err(RelStop::Budget)?;
    }
    for row in &entry_rows {
        states[bp.entry].insert_sorted(pool.intern(row));
    }
    if TRACE {
        // entry facts carry no justification: witness chains stop there
        for &k in &bp.entry_unknown {
            may[bp.entry].set(k, true);
        }
    }

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, e) in bp.edges.iter().enumerate() {
        out_edges[e.from].push(k);
    }

    // scratch valuation rows, reused across transfers (Havoc forks append)
    let mut outs: Vec<Vec<u64>> = Vec::new();
    let mut new_ids: Vec<u32> = Vec::new();
    let mut work: Vec<usize> = vec![bp.entry];
    let mut on_work = vec![false; n];
    on_work[bp.entry] = true;
    while let Some(node) = work.pop() {
        tally.pops += 1;
        on_work[node] = false;
        for &ek in &out_edges[node] {
            let e = &bp.edges[ek];
            new_ids.clear();
            for &sid in states[e.from].as_slice() {
                tally.transfers += 1;
                gov.tick().map_err(RelStop::Budget)?;
                // apply parallel assignment; Havoc forks
                outs.clear();
                outs.push(pool.row(sid).to_vec());
                for (dst, rhs) in &e.assigns {
                    match rhs {
                        Rhs::Disj(ops) => {
                            let src_row = pool.row(sid);
                            let bit = ops.iter().any(|op| match op {
                                Operand::Const(c) => *c,
                                Operand::Var(v) => word_get(src_row, *v),
                            });
                            for o in &mut outs {
                                word_set(o, *dst, bit);
                            }
                        }
                        Rhs::Havoc => {
                            let mut forked = Vec::with_capacity(outs.len() * 2);
                            for o in std::mem::take(&mut outs) {
                                let mut one = o.clone();
                                word_set(&mut one, *dst, true);
                                let mut zero = o;
                                word_set(&mut zero, *dst, false);
                                forked.push(zero);
                                forked.push(one);
                            }
                            outs = forked;
                            if outs.len() > budget {
                                return Err(RelStop::States(RelError { node: e.to, budget }));
                            }
                            gov.check_states(outs.len()).map_err(RelStop::Budget)?;
                        }
                    }
                }
                if TRACE {
                    let src_row = pool.row(sid).to_vec();
                    for o in &outs {
                        for (w, &ow) in o.iter().enumerate().take(stride) {
                            let mut bits = ow;
                            while bits != 0 {
                                let p = w * 64 + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                if p < width && !may[e.to].get(p) {
                                    may[e.to].set(p, true);
                                    prov.record(
                                        e.to,
                                        p,
                                        ek,
                                        justify(e, p, |q| word_get(&src_row, q)),
                                    );
                                }
                            }
                        }
                    }
                }
                for o in &outs {
                    new_ids.push(pool.intern(o));
                }
            }
            let target = &mut states[e.to];
            let mut changed = false;
            for &id in &new_ids {
                changed |= target.insert_sorted(id);
            }
            if target.len() > budget {
                return Err(RelStop::States(RelError { node: e.to, budget }));
            }
            gov.check_states(target.len()).map_err(RelStop::Budget)?;
            if changed && !on_work[e.to] {
                on_work[e.to] = true;
                work.push(e.to);
            }
        }
    }
    let transfers = tally.transfers as usize;
    canvas_telemetry::trace::instant(
        "relational.fixpoint",
        "solver",
        &[("transfers", transfers as u64), ("worklist_pops", tally.pops)],
    );
    // surface each node's states canonically sorted by word value, so the
    // result (and everything printed from it) is deterministic
    let states = states
        .iter()
        .map(|ids| {
            let mut rows: Vec<&[u64]> = ids.as_slice().iter().map(|&id| pool.row(id)).collect();
            rows.sort_unstable();
            rows.into_iter().map(|row| BitSet::from_row(row, width)).collect()
        })
        .collect();
    Ok((RelResult { states, transfers }, prov))
}

/// Extracts potential violations from a relational fixpoint.
pub fn violations(bp: &BoolProgram, res: &RelResult) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    for c in &bp.checks {
        let mut culprits = Vec::new();
        let mut fires = false;
        for op in &c.preds {
            match op {
                Operand::Const(true) => fires = true,
                Operand::Const(false) => {}
                Operand::Var(v) => {
                    if res.states[c.node].iter().any(|s| s.get(*v)) {
                        fires = true;
                        culprits.push(*v);
                    }
                }
            }
        }
        if fires {
            out.push(Violation { site: c.site.clone(), culprits, witness: None });
        }
    }
    out
}

/// Like [`violations`], but resolves a witness trace per violation from the
/// provenance recorded by [`analyze_traced`].
pub fn violations_explained(
    bp: &BoolProgram,
    res: &RelResult,
    prov: &Provenance,
    program: &Program,
    derived: &Derived,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in &bp.checks {
        let mut culprits = Vec::new();
        let mut fires = false;
        for op in &c.preds {
            match op {
                Operand::Const(true) => fires = true,
                Operand::Const(false) => {}
                Operand::Var(v) => {
                    if res.states[c.node].iter().any(|s| s.get(*v)) {
                        fires = true;
                        culprits.push(*v);
                    }
                }
            }
        }
        if fires {
            let steps = match culprits.first() {
                Some(&p) => prov.trace(bp, program, derived, c.node, p),
                None => Vec::new(),
            };
            out.push(Violation { site: c.site.clone(), culprits, witness: Some(steps) });
        }
    }
    out
}

/// A convenience wrapper: sites flagged by the relational engine.
pub fn violation_sites(bp: &BoolProgram, res: &RelResult) -> Vec<Site> {
    violations(bp, res).into_iter().map(|v| v.site).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_abstraction::{transform_method, EntryAssumption};
    use canvas_minijava::Program;
    use canvas_wp::derive_abstraction;

    fn build(src: &str) -> BoolProgram {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        let main = program.main_method().expect("needs a main");
        transform_method(&program, main, &spec, &derived, EntryAssumption::Clean)
    }

    const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
    static boolean c() { return true; }
}
"#;

    #[test]
    fn relational_matches_fds_on_fig3() {
        let bp = build(FIG3);
        let rel = analyze(&bp, 1 << 16).unwrap();
        let rel_sites: Vec<u32> = violations(&bp, &rel).iter().map(|v| v.site.line()).collect();
        let fds = crate::fds::analyze(&bp);
        let fds_sites: Vec<u32> =
            crate::fds::violations(&bp, &fds).iter().map(|v| v.site.line()).collect();
        assert_eq!(rel_sites, fds_sites);
        assert_eq!(rel_sites, vec![10, 13]);
    }

    #[test]
    fn states_are_canonically_sorted_and_deduplicated() {
        let bp = build(FIG3);
        let rel = analyze(&bp, 1 << 16).unwrap();
        for states in &rel.states {
            for pair in states.windows(2) {
                assert!(pair[0].words() < pair[1].words(), "states must be strictly ascending");
            }
        }
    }

    #[test]
    fn budget_enforced() {
        // entry unknowns fork the entry state set; with a tiny budget the
        // analysis must refuse rather than silently drop states
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(
            "class A { void m(Iterator a, Iterator b, Iterator c, Set s) { a.next(); } }",
            &spec,
        )
        .unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        let m = program.method_named("A.m").unwrap();
        let bp = transform_method(&program, m, &spec, &derived, EntryAssumption::Unknown);
        let err = analyze(&bp, 4).unwrap_err();
        assert_eq!(err.budget, 4);
        // with a generous budget it succeeds and flags the call
        let ok = analyze(&bp, 1 << 20).unwrap();
        assert_eq!(violations(&bp, &ok).len(), 1);
    }
}
