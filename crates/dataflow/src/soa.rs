//! Flat struct-of-arrays storage for the bit-parallel fixpoint kernels.
//!
//! The FDS and relational solvers used to keep one heap-allocated
//! [`BitSet`] per node (or per valuation), so every transfer paid an
//! allocation and every join walked a `Vec<u64>` behind a pointer chase.
//! This module packs all per-node valuations into one contiguous `u64`
//! arena, node-major, so the hot loops become word-wise `OR`/`AND` sweeps
//! over adjacent cache lines:
//!
//! * [`WordArena`] — the per-node may-be-1 rows of the FDS kernel. Rows of
//!   eight or more words are padded to a whole number of cache lines
//!   (eight `u64`s) so no row straddles a line boundary; narrower rows
//!   stay dense, where padding would only waste bandwidth.
//! * [`ValPool`] — an interner for full relational valuations: each
//!   distinct valuation is stored once and identified by a dense `u32`
//!   id, so per-node state sets shrink from `HashSet<BitSet>` (one heap
//!   allocation per member per node) to a sorted [`SmallIdVec`] of ids.
//! * [`SmallIdVec`] — a small-vector of ids that stays inline for the
//!   common case (most nodes hold a handful of valuations) and spills to
//!   the heap only when a node's state set genuinely grows.

use std::collections::HashMap;

use crate::bitset::BitSet;

/// Words per cache line (64 bytes).
const LINE_WORDS: usize = 8;

/// Tests bit `bit` of a word row.
#[inline]
pub fn word_get(row: &[u64], bit: usize) -> bool {
    row[bit / 64] >> (bit % 64) & 1 == 1
}

/// Sets bit `bit` of a word row to `v`.
#[inline]
pub fn word_set(row: &mut [u64], bit: usize, v: bool) {
    if v {
        row[bit / 64] |= 1 << (bit % 64);
    } else {
        row[bit / 64] &= !(1 << (bit % 64));
    }
}

/// `dst |= src` word-wise; returns whether `dst` changed. Stores are
/// conditional: near a fixpoint most joins change nothing, and skipping
/// the store keeps the target's cache lines clean instead of re-dirtying
/// a full row per edge visit.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let mut grew = false;
    for (a, b) in dst.iter_mut().zip(src) {
        let next = *a | *b;
        if next != *a {
            *a = next;
            grew = true;
        }
    }
    grew
}

/// Whether `sub ⊆ sup`, word-wise.
#[inline]
pub fn is_subset(sub: &[u64], sup: &[u64]) -> bool {
    sub.iter().zip(sup).all(|(a, b)| a & !b == 0)
}

/// The row stride (in words) for `width` bits: dense for narrow rows,
/// padded to whole cache lines once a row spans one or more lines.
pub fn stride_for(width: usize) -> usize {
    let raw = width.div_ceil(64).max(1);
    if raw >= LINE_WORDS {
        raw.div_ceil(LINE_WORDS) * LINE_WORDS
    } else {
        raw
    }
}

/// One contiguous node-major `u64` arena: row `r` holds the `width`-bit
/// valuation of node `r` in `stride` consecutive words.
///
/// Equality compares whole rows word-for-word; padding words are never
/// written (no bit index ≥ `width` is ever set), so two arenas with the
/// same shape and the same valuations always compare equal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WordArena {
    words: Vec<u64>,
    stride: usize,
    width: usize,
    rows: usize,
}

impl WordArena {
    /// A zeroed arena of `rows` rows of `width` bits each.
    pub fn new(rows: usize, width: usize) -> WordArena {
        let stride = stride_for(width);
        WordArena { words: vec![0; rows * stride], stride, width, rows }
    }

    /// Bits per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `r` as a word slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.stride..(r + 1) * self.stride]
    }

    /// Row `r` as a mutable word slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.stride..(r + 1) * self.stride]
    }

    /// Tests bit `bit` of row `r`.
    #[inline]
    pub fn get(&self, r: usize, bit: usize) -> bool {
        debug_assert!(bit < self.width);
        word_get(self.row(r), bit)
    }

    /// Sets bit `bit` of row `r`.
    #[inline]
    pub fn set(&mut self, r: usize, bit: usize, v: bool) {
        assert!(bit < self.width, "bit index {bit} out of range {}", self.width);
        word_set(self.row_mut(r), bit, v);
    }

    /// `row[r] |= src` word-wise; returns whether the row changed.
    #[inline]
    pub fn union_row(&mut self, r: usize, src: &[u64]) -> bool {
        or_into(self.row_mut(r), src)
    }

    /// Rows `from` (shared) and `to` (mutable) at once — the split borrow
    /// an edge transfer needs to `OR` source words into the target.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (a self-loop has only one row; handle it
    /// separately).
    #[inline]
    pub fn rows_pair(&mut self, from: usize, to: usize) -> (&[u64], &mut [u64]) {
        assert_ne!(from, to, "a self-loop has only one row");
        let stride = self.stride;
        let (fb, tb) = (from * stride, to * stride);
        if from < to {
            let (a, b) = self.words.split_at_mut(tb);
            (&a[fb..fb + stride], &mut b[..stride])
        } else {
            let (a, b) = self.words.split_at_mut(fb);
            (&b[..stride], &mut a[tb..tb + stride])
        }
    }

    /// Sets the given bit indices of row `r` (a certificate solution row).
    pub fn load_bits(&mut self, r: usize, bits: &[u32]) {
        for &b in bits {
            self.set(r, b as usize, true);
        }
    }

    /// Row `r` as a standalone [`BitSet`] (padding words dropped).
    pub fn to_bitset(&self, r: usize) -> BitSet {
        BitSet::from_row(self.row(r), self.width)
    }
}

/// A small-vector of `u32` ids: inline up to eight entries, heap beyond.
#[derive(Clone, Debug, Default)]
pub struct SmallIdVec {
    inline: [u32; 8],
    len: usize,
    spill: Vec<u32>,
}

impl SmallIdVec {
    /// An empty vector.
    pub fn new() -> SmallIdVec {
        SmallIdVec::default()
    }

    /// Number of ids held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no id is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[u32] {
        if self.len <= self.inline.len() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Appends `id` (no ordering maintained).
    pub fn push(&mut self, id: u32) {
        if self.len < self.inline.len() {
            self.inline[self.len] = id;
        } else {
            if self.len == self.inline.len() {
                self.spill = self.inline.to_vec();
            }
            self.spill.push(id);
        }
        self.len += 1;
    }

    /// Inserts `id` keeping the vector sorted; returns whether it was new.
    pub fn insert_sorted(&mut self, id: u32) -> bool {
        match self.as_slice().binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                if self.len < self.inline.len() {
                    self.inline.copy_within(pos..self.len, pos + 1);
                    self.inline[pos] = id;
                } else {
                    if self.len == self.inline.len() {
                        self.spill = self.inline.to_vec();
                    }
                    self.spill.insert(pos, id);
                }
                self.len += 1;
                true
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_words(row: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in row {
        for shift in [0, 16, 32, 48] {
            h ^= (w >> shift) & 0xffff;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// An interner for fixed-width valuations: each distinct word row is
/// stored once in a flat arena and named by a dense `u32` id. Interning a
/// row costs one hash probe plus (on a collision chain) word compares;
/// no allocation happens unless the row is genuinely new.
#[derive(Clone, Debug)]
pub struct ValPool {
    width: usize,
    stride: usize,
    words: Vec<u64>,
    index: HashMap<u64, SmallIdVec>,
}

impl ValPool {
    /// An empty pool over `width`-bit valuations.
    pub fn new(width: usize) -> ValPool {
        // dense stride: pool rows are compared and hashed whole, padding
        // would only lengthen both
        let stride = width.div_ceil(64).max(1);
        ValPool { width, stride, words: Vec::new(), index: HashMap::new() }
    }

    /// Bits per valuation.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per valuation row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct valuations interned.
    pub fn len(&self) -> usize {
        self.words.len() / self.stride
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The interned row for `id`.
    #[inline]
    pub fn row(&self, id: u32) -> &[u64] {
        let at = id as usize * self.stride;
        &self.words[at..at + self.stride]
    }

    /// Interns `row` (must be `stride()` words) and returns its id.
    pub fn intern(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.stride);
        let hash = fnv_words(row);
        if let Some(ids) = self.index.get(&hash) {
            for &id in ids.as_slice() {
                if self.row(id) == row {
                    return id;
                }
            }
        }
        let id = self.len() as u32;
        self.words.extend_from_slice(row);
        self.index.entry(hash).or_default().push(id);
        id
    }

    /// The interned valuation for `id` as a standalone [`BitSet`].
    pub fn bitset(&self, id: u32) -> BitSet {
        BitSet::from_row(self.row(id), self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_rows_are_independent() {
        let mut a = WordArena::new(3, 130);
        a.set(0, 0, true);
        a.set(1, 129, true);
        assert!(a.get(0, 0) && a.get(1, 129));
        assert!(!a.get(2, 0) && !a.get(0, 129));
        let row1 = a.row(1).to_vec();
        assert!(a.union_row(2, &row1));
        assert!(!a.union_row(2, &row1));
        assert!(a.get(2, 129));
        assert_eq!(a.to_bitset(2).iter_ones().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn wide_rows_are_cache_line_padded() {
        assert_eq!(stride_for(1), 1);
        assert_eq!(stride_for(64), 1);
        assert_eq!(stride_for(65), 2);
        assert_eq!(stride_for(448), 7);
        assert_eq!(stride_for(449), 8);
        assert_eq!(stride_for(513), 16);
    }

    #[test]
    fn small_id_vec_spills_and_stays_sorted() {
        let mut v = SmallIdVec::new();
        for id in (0..20u32).rev() {
            assert!(v.insert_sorted(id));
            assert!(!v.insert_sorted(id));
        }
        assert_eq!(v.len(), 20);
        assert_eq!(v.as_slice(), (0..20u32).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn pool_interns_by_value() {
        let mut pool = ValPool::new(70);
        let a = [3u64, 1];
        let b = [3u64, 2];
        let ia = pool.intern(&a);
        let ib = pool.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(pool.intern(&a), ia);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.bitset(ib).iter_ones().collect::<Vec<_>>(), vec![0, 1, 65]);
    }
}
