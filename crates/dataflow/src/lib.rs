//! Dataflow engines for the transformed boolean client programs.
//!
//! * [`fds`] — the polynomial-time certifier core (paper §4.3): for
//!   certification only the question "may predicate `p` be 1 at point `n`"
//!   matters, and that component of the FDS (finite distributive subset)
//!   analysis is a pure reachability problem on the exploded
//!   (point × predicate) graph, so MFP = MOP: the analysis computes the
//!   *precise* meet-over-all-paths solution in `O(E · B²)`.
//! * [`relational`] — the exponential relational baseline (a set of full
//!   valuations per program point), used as a precision oracle in tests and
//!   in the evaluation's relational-vs-independent-attribute comparison.
//! * [`interproc`] — the context-sensitive interprocedural SCMP analysis of
//!   paper §8 (IFDS-style tabulation with callee may-effect summaries).
//! * [`bitset`] — the shared bit-set representation.
//! * [`soa`] — the flat struct-of-arrays word arena and valuation interner
//!   backing the bit-parallel kernels.
//! * [`delta`] — within-method delta re-solve: seeding the FDS fixpoint
//!   from a cached solution of an earlier version of the method.

pub mod bitset;
pub mod delta;
pub mod fds;
pub mod interproc;
pub mod provenance;
pub mod relational;
pub mod soa;

pub use bitset::BitSet;
pub use delta::{DeltaPayload, DeltaSeed};
pub use fds::{FdsResult, Violation};
pub use provenance::{Provenance, TraceStep};
pub use relational::{RelError, RelResult};
pub use soa::WordArena;
