//! A compact fixed-width bit set.

/// A fixed-width bit set backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// `self |= other`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        static BITSET_UNIONS: canvas_telemetry::Counter =
            canvas_telemetry::Counter::new("dataflow.bitset_unions");
        BITSET_UNIONS.incr();
        assert_eq!(self.len, other.len, "bit set width mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over set bit indices.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words, least-significant bit first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a `len`-bit set from a word row (e.g. a [`crate::soa`]
    /// arena row). Extra words beyond `len` bits are ignored and the top
    /// word is masked, so padded rows convert cleanly.
    ///
    /// # Panics
    ///
    /// Panics if `row` holds fewer than `len` bits.
    pub fn from_row(row: &[u64], len: usize) -> BitSet {
        let need = len.div_ceil(64);
        assert!(row.len() >= need, "row of {} words cannot hold {len} bits", row.len());
        let mut words = row[..need].to_vec();
        if !len.is_multiple_of(64) {
            if let Some(top) = words.last_mut() {
                *top &= (1u64 << (len % 64)) - 1;
            }
        }
        BitSet { words, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(3, true);
        b.set(99, true);
        assert!(!a.is_subset(&b));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b)); // no change second time
        assert!(b.is_subset(&a));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = BitSet::new(10);
        b.get(10);
    }
}
