//! The polynomial FDS certifier core: may-be-1 reachability.
//!
//! For every `requires ¬p` check the certifier only needs to know whether
//! `p` *may* evaluate to 1 at the check's program point. Over the
//! transformed boolean program — whose assignments are all of the shape
//! `p := p₁ ∨ … ∨ pₖ`, `p := 0`, `p := 1` — the may-be-1 property is
//! distributive over path union, so the fixpoint below computes the exact
//! meet-over-all-paths solution (§4.3), in `O(E · B²)` time.
//!
//! `Havoc` right-hand sides (unknown callees, heap loads) conservatively set
//! the bit.
//!
//! The solver is bit-parallel and delta-driven: all per-node valuations
//! live in one flat [`WordArena`], edge transfers are pre-flattened into
//! a `TransferPlan` (contiguous patched-word/operand streams instead of
//! per-visit enum walks), and each node carries a dirty-word bitmap of
//! what changed since its last pop — a revisit `OR`s only those words
//! plus the edge's patched words into the target, instead of sweeping
//! two full rows. No per-edge allocation, no scratch-row copy, no
//! per-bit set/join calls; the result hands the arena out directly
//! instead of materializing per-node heap bitsets. The historical
//! one-BitSet-per-node solver is kept as [`analyze_reference`]: the
//! differential proptests pin the two kernels to the same fixpoint, and
//! the `eval fixpoint` table (E12) times the rewrite against it.

use canvas_abstraction::{BoolEdge, BoolProgram, Operand, Rhs};
use canvas_faults::{Exhaustion, Meter};
use canvas_minijava::{Program, Site};
use canvas_wp::Derived;

use crate::bitset::BitSet;
use crate::provenance::{justify, Provenance, TraceStep};
use crate::soa::{word_get, word_set, WordArena};

pub(crate) static FDS_WORKLIST_POPS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("fds.worklist_pops");
pub(crate) static FDS_EDGE_VISITS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("fds.edge_visits");
pub(crate) static FDS_WORDS_TOUCHED: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("fds.words_touched");
static FDS_SOLVE_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("fds.solve");

/// The fixpoint result: for every node, which predicates may be 1.
///
/// The solution lives in the solver's own [`WordArena`] — handing it out
/// directly avoids materializing one heap [`BitSet`] per node (tens of
/// megabytes on large methods) just to read bits back out.
#[derive(Clone, Debug)]
pub struct FdsResult {
    /// The per-node may-be-1 rows, exactly as the kernel left them.
    arena: WordArena,
    /// Number of edge evaluations performed (work measure).
    pub edge_visits: usize,
    /// Number of worklist pops performed.
    pub worklist_pops: usize,
}

impl FdsResult {
    pub(crate) fn new(arena: WordArena, edge_visits: usize, worklist_pops: usize) -> FdsResult {
        FdsResult { arena, edge_visits, worklist_pops }
    }

    /// Whether predicate `p` may be 1 at `node`.
    #[inline]
    pub fn get(&self, node: usize, p: usize) -> bool {
        self.arena.get(node, p)
    }

    /// Number of nodes in the solved program.
    pub fn node_count(&self) -> usize {
        self.arena.rows()
    }

    /// Predicate count (bit width) of the solution.
    pub fn width(&self) -> usize {
        self.arena.width()
    }

    /// The may-be-1 predicate indices of `node`, ascending — the
    /// certificate solution-row encoding.
    pub fn row_ones(&self, node: usize) -> Vec<u32> {
        self.arena.to_bitset(node).iter_ones().map(|b| b as u32).collect()
    }

    /// The full solution as standalone per-node [`BitSet`]s (tests and
    /// cross-kernel comparisons; the hot paths read the arena in place).
    pub fn to_bitsets(&self) -> Vec<BitSet> {
        (0..self.arena.rows()).map(|r| self.arena.to_bitset(r)).collect()
    }

    /// Whether two results computed the same solution (work counters may
    /// differ — a delta re-solve reaches the same fixpoint with less work).
    pub fn same_solution(&self, other: &FdsResult) -> bool {
        self.arena == other.arena
    }
}

/// The result shape of [`analyze_reference`]: the pre-rewrite per-node
/// heap [`BitSet`] representation, kept verbatim so the yardstick pays
/// exactly the costs the old kernel paid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScalarResult {
    /// Per-node may-be-1 sets, indexed by node id.
    pub may_one: Vec<BitSet>,
    /// Number of edge evaluations performed (work measure).
    pub edge_visits: usize,
    /// Number of worklist pops performed.
    pub worklist_pops: usize,
}

/// A potential `requires` violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Where.
    pub site: Site,
    /// The predicate instances that may be 1 (empty when the check fires on
    /// a constant-true disjunct).
    pub culprits: Vec<usize>,
    /// Witness trace for the first culprit, when the solver recorded
    /// provenance (`None` on the default fast path).
    pub witness: Option<Vec<TraceStep>>,
}

/// Runs the may-be-1 analysis to fixpoint.
pub fn analyze(bp: &BoolProgram) -> FdsResult {
    let disarmed = Meter::disarmed();
    match analyze_inner::<false>(bp, &disarmed) {
        Ok((res, _)) => res,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Like [`analyze`], but records per-fact provenance for witness traces.
/// A separate monomorphization, so [`analyze`] pays nothing for it.
pub fn analyze_traced(bp: &BoolProgram) -> (FdsResult, Provenance) {
    let disarmed = Meter::disarmed();
    match analyze_inner::<true>(bp, &disarmed) {
        Ok(pair) => pair,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Governed variant of [`analyze`]: one meter tick per edge visit.
///
/// # Errors
///
/// Returns the [`Exhaustion`] when the governor budget trips; the caller
/// degrades to an inconclusive verdict.
pub fn analyze_with(bp: &BoolProgram, gov: &Meter) -> Result<FdsResult, Exhaustion> {
    canvas_faults::solver_abort();
    analyze_inner::<false>(bp, gov).map(|(res, _)| res)
}

/// Governed variant of [`analyze_traced`].
///
/// # Errors
///
/// As [`analyze_with`].
pub fn analyze_traced_with(
    bp: &BoolProgram,
    gov: &Meter,
) -> Result<(FdsResult, Provenance), Exhaustion> {
    canvas_faults::solver_abort();
    analyze_inner::<true>(bp, gov)
}

/// A word one edge's parallel assignment writes: which of its bits the
/// assignment overwrites (`clear`) and which it sets unconditionally
/// (`consts` — `Havoc` and constant-true right-hand sides, folded at
/// plan-build time so the hot loop never re-evaluates them).
#[derive(Clone, Copy)]
struct PatchWord {
    w: u32,
    clear: u64,
    consts: u64,
}

/// A data-dependent assign: where its bit lands in the image (`slot` is
/// an absolute index into [`TransferPlan::words`]) and which source bits
/// feed its disjunction (`ops[lo..hi]`).
#[derive(Clone, Copy)]
struct DynAssign {
    slot: u32,
    mask: u64,
    lo: u32,
    hi: u32,
}

/// The flattened transfer layout of a whole boolean program, built once
/// per solve: per-edge ranges over three shared flat arrays (patched
/// words, data-dependent assigns, disjunction operands). Replaces the
/// per-visit walk of `Vec<Operand>`-behind-`Rhs` enums with contiguous
/// streams — on iterative (loopy) programs every edge is visited many
/// times, so the one-pass build amortizes immediately. Five allocations
/// total, regardless of program size.
pub(crate) struct TransferPlan {
    word_range: Vec<(u32, u32)>,
    dyn_range: Vec<(u32, u32)>,
    words: Vec<PatchWord>,
    dyns: Vec<DynAssign>,
    ops: Vec<u32>,
}

impl TransferPlan {
    /// Builds the plan in one pass over the edges. Assumes the parallel
    /// assignment of an edge targets each predicate at most once (the
    /// transform emits true parallel assignments).
    pub(crate) fn build(edges: &[BoolEdge]) -> TransferPlan {
        let mut plan = TransferPlan {
            word_range: Vec::with_capacity(edges.len()),
            dyn_range: Vec::with_capacity(edges.len()),
            words: Vec::new(),
            dyns: Vec::new(),
            ops: Vec::new(),
        };
        let mut ws: Vec<u32> = Vec::new();
        for e in edges {
            let wlo = plan.words.len() as u32;
            let dlo = plan.dyns.len() as u32;
            ws.clear();
            ws.extend(e.assigns.iter().map(|(dst, _)| (*dst / 64) as u32));
            ws.sort_unstable();
            ws.dedup();
            plan.words.extend(ws.iter().map(|&w| PatchWord { w, clear: 0, consts: 0 }));
            for (dst, rhs) in &e.assigns {
                let w = (*dst / 64) as u32;
                let slot = wlo + ws.binary_search(&w).expect("word collected") as u32;
                let bit = 1u64 << (dst % 64);
                let pw = &mut plan.words[slot as usize];
                debug_assert_eq!(pw.clear & bit, 0, "duplicate assign target");
                pw.clear |= bit;
                match rhs {
                    Rhs::Havoc => pw.consts |= bit,
                    Rhs::Disj(ops) => {
                        if ops.iter().any(|op| matches!(op, Operand::Const(true))) {
                            pw.consts |= bit;
                        } else {
                            let lo = plan.ops.len() as u32;
                            plan.ops.extend(ops.iter().filter_map(|op| match op {
                                Operand::Var(v) => Some(*v as u32),
                                Operand::Const(_) => None,
                            }));
                            let hi = plan.ops.len() as u32;
                            if hi > lo {
                                plan.dyns.push(DynAssign { slot, mask: bit, lo, hi });
                            }
                            // a disjunction of nothing (or only false
                            // constants) is `:= 0`: clear, no dyn entry
                        }
                    }
                }
            }
            plan.word_range.push((wlo, plan.words.len() as u32));
            plan.dyn_range.push((dlo, plan.dyns.len() as u32));
        }
        plan
    }
}

/// One edge visit on the arena: `row[e.to] |= transfer(row[e.from])`,
/// without materializing the image row.
///
/// The visit is *delta-driven*: `src_dirty` is the per-word bitmap of
/// source words that changed since the source node was last popped, and
/// only those words — plus the edge's few patched words, whose image the
/// plan recomputes every time — are `OR`'d into the target. Words the
/// source did not change were already propagated along this edge on an
/// earlier visit (the worklist pops a node only after it grew, and a pop
/// visits every out-edge), so skipping them loses nothing. Growth in the
/// target is recorded word-by-word into `dirty`, which is what makes the
/// scheme self-sustaining. A revisit therefore costs `O(changed words +
/// assignment size)`, not `O(row)`.
#[inline]
#[allow(clippy::too_many_arguments)] // the kernel's full working set, passed split-borrowed
pub(crate) fn apply_edge(
    arena: &mut WordArena,
    ek: usize,
    e: &BoolEdge,
    plan: &TransferPlan,
    vals: &mut Vec<u64>,
    src_dirty: &[u64],
    dirty: &mut [u64],
    mw: usize,
) -> bool {
    let (wlo, whi) = plan.word_range[ek];
    let words = &plan.words[wlo as usize..whi as usize];
    let (dlo, dhi) = plan.dyn_range[ek];
    let dyns = &plan.dyns[dlo as usize..dhi as usize];
    // pass 1: evaluate the image's patched words against the pre-state
    vals.clear();
    {
        let src = arena.row(e.from);
        vals.extend(words.iter().map(|pw| (src[pw.w as usize] & !pw.clear) | pw.consts));
        for d in dyns {
            let hit =
                plan.ops[d.lo as usize..d.hi as usize].iter().any(|&v| word_get(src, v as usize));
            if hit {
                vals[(d.slot - wlo) as usize] |= d.mask;
            }
        }
    }
    let dmask = &mut dirty[e.to * mw..(e.to + 1) * mw];
    let mut grew = false;
    if e.from == e.to {
        // self-loop: under the OR-join only the image's 1-bits can grow
        // the row (a cleared bit stays set once joined); growth is marked
        // dirty so the *next* pop of this node re-propagates it (the
        // current pop's mask snapshot was taken before this visit)
        let row = arena.row_mut(e.from);
        for (pw, &v) in words.iter().zip(vals.iter()) {
            let w = pw.w as usize;
            let next = row[w] | v;
            if next != row[w] {
                row[w] = next;
                dmask[w / 64] |= 1 << (w % 64);
                grew = true;
            }
        }
        return grew;
    }
    let (src, dst) = arena.rows_pair(e.from, e.to);
    // pass 2: the patched words always propagate (their image depends on
    // operand bits anywhere in the row, and carries the folded constants)
    for (pw, &v) in words.iter().zip(vals.iter()) {
        let w = pw.w as usize;
        let next = dst[w] | v;
        if next != dst[w] {
            dst[w] = next;
            dmask[w / 64] |= 1 << (w % 64);
            grew = true;
        }
    }
    // pass 3: identity words that changed since the last pop, merge-
    // skipping the patched ones (both streams are ascending)
    let mut pi = 0usize;
    for (mi, &m) in src_dirty.iter().enumerate() {
        let mut m = m;
        while m != 0 {
            let w = mi * 64 + m.trailing_zeros() as usize;
            m &= m - 1;
            while pi < words.len() && (words[pi].w as usize) < w {
                pi += 1;
            }
            if pi < words.len() && words[pi].w as usize == w {
                continue;
            }
            let next = dst[w] | src[w];
            if next != dst[w] {
                dst[w] = next;
                dmask[w / 64] |= 1 << (w % 64);
                grew = true;
            }
        }
    }
    grew
}

/// The out-edge adjacency in CSR form: `idx[start[v]..start[v + 1]]` are
/// the edge indices leaving `v`, in edge-list order (stable counting
/// sort), matching the order a `Vec<Vec<_>>` push-build would yield.
pub(crate) fn csr_out_edges(n: usize, edges: &[BoolEdge]) -> (Vec<u32>, Vec<u32>) {
    let mut start = vec![0u32; n + 2];
    for e in edges {
        start[e.from + 2] += 1;
    }
    for i in 2..start.len() {
        start[i] += start[i - 1];
    }
    let mut idx = vec![0u32; edges.len()];
    for (k, e) in edges.iter().enumerate() {
        idx[start[e.from + 1] as usize] = k as u32;
        start[e.from + 1] += 1;
    }
    start.pop();
    (start, idx)
}

/// Marks every nonzero word of `node`'s row dirty — the state a node must
/// be in before its *first* pop, so the pop propagates the whole row
/// (zero words contribute nothing under an OR-join and can stay clean).
pub(crate) fn mark_row_dirty(arena: &WordArena, dirty: &mut [u64], mw: usize, node: usize) {
    for (w, &val) in arena.row(node).iter().enumerate() {
        if val != 0 {
            dirty[node * mw + w / 64] |= 1 << (w % 64);
        }
    }
}

fn analyze_inner<const TRACE: bool>(
    bp: &BoolProgram,
    gov: &Meter,
) -> Result<(FdsResult, Provenance), Exhaustion> {
    let _span = FDS_SOLVE_TIME.span();
    let n = bp.node_count;
    let width = bp.preds.len();
    let mut prov = if TRACE { Provenance::new(n, width) } else { Provenance::empty() };
    let mut arena = WordArena::new(n, width);
    for &k in &bp.entry_unknown {
        arena.set(bp.entry, k, true);
    }

    // index edges by source for the worklist: CSR, not Vec-of-Vecs —
    // three allocations total, and the stable counting sort keeps the
    // per-node edge order identical to the push order the reference
    // kernel uses (the differential tests pin the visit sequence)
    let (out_start, out_idx) = csr_out_edges(n, &bp.edges);

    let stride = arena.stride();
    let plan = TransferPlan::build(&bp.edges);
    let mut vals: Vec<u64> = Vec::new();
    let mut scratch = vec![0u64; if TRACE { stride } else { 0 }];
    // per-node dirty-word bitmaps driving the delta propagation; only the
    // entry's seed words are nonzero before the first pop
    let mw = stride.div_ceil(64).max(1);
    let mut dirty: Vec<u64> = vec![0; if TRACE { 0 } else { n * mw }];
    let mut pop_mask: Vec<u64> = vec![0; mw];
    if !TRACE {
        mark_row_dirty(&arena, &mut dirty, mw, bp.entry);
    }
    let mut work: Vec<usize> = vec![bp.entry];
    let mut on_work = vec![false; n];
    let mut reached = vec![false; n];
    on_work[bp.entry] = true;
    reached[bp.entry] = true;
    let mut edge_visits = 0;
    let mut pops = 0u64;
    while let Some(node) = work.pop() {
        pops += 1;
        on_work[node] = false;
        if !TRACE {
            // snapshot and clear this node's accumulated dirt: the visits
            // below propagate exactly what changed since its last pop
            pop_mask.copy_from_slice(&dirty[node * mw..(node + 1) * mw]);
            dirty[node * mw..(node + 1) * mw].fill(0);
        }
        for &ek in &out_idx[out_start[node] as usize..out_start[node + 1] as usize] {
            let ek = ek as usize;
            let e = &bp.edges[ek];
            edge_visits += 1;
            if let Err(ex) = gov.tick() {
                FDS_WORKLIST_POPS.add(pops);
                FDS_EDGE_VISITS.add(edge_visits as u64);
                FDS_WORDS_TOUCHED.add(2 * stride as u64 * edge_visits as u64);
                return Err(ex);
            }
            let grew = if TRACE {
                // the traced path materializes the image row so new facts
                // can be diffed out for provenance; explain-mode only
                scratch.copy_from_slice(arena.row(e.from));
                for (dst, rhs) in &e.assigns {
                    let bit = match rhs {
                        Rhs::Havoc => true,
                        Rhs::Disj(ops) => ops.iter().any(|op| match op {
                            Operand::Const(c) => *c,
                            Operand::Var(v) => word_get(arena.row(e.from), *v),
                        }),
                    };
                    word_set(&mut scratch, *dst, bit);
                }
                let target = arena.row(e.to);
                let source = arena.row(e.from);
                for w in 0..stride {
                    let mut news = scratch[w] & !target[w];
                    while news != 0 {
                        let p = w * 64 + news.trailing_zeros() as usize;
                        news &= news - 1;
                        let src = justify(e, p, |q| word_get(source, q));
                        prov.record(e.to, p, ek, src);
                    }
                }
                arena.union_row(e.to, &scratch)
            } else {
                apply_edge(&mut arena, ek, e, &plan, &mut vals, &pop_mask, &mut dirty, mw)
            };
            let first_visit = !reached[e.to];
            reached[e.to] = true;
            if (grew || first_visit) && !on_work[e.to] {
                on_work[e.to] = true;
                work.push(e.to);
            }
        }
    }
    FDS_WORKLIST_POPS.add(pops);
    FDS_EDGE_VISITS.add(edge_visits as u64);
    // deterministic logical volume — one row read + one row OR'd per edge
    // visit; the delta kernel touches fewer physical words, and the E12
    // wall-clock measures that win against this fixed denominator
    FDS_WORDS_TOUCHED.add(2 * stride as u64 * edge_visits as u64);
    canvas_telemetry::trace::instant(
        "fds.fixpoint",
        "solver",
        &[("edge_visits", edge_visits as u64), ("worklist_pops", pops)],
    );
    Ok((FdsResult::new(arena, edge_visits, pops as usize), prov))
}

/// The pre-rewrite scalar solver: one heap-allocated [`BitSet`] per node,
/// per-bit transfer and join calls. Kept as the reference implementation —
/// the `prop_fixpoint` differential suite pins [`analyze`] to this
/// kernel's fixpoint on random boolean programs, and the `eval fixpoint`
/// table (E12) reports the bit-parallel kernel's throughput against it.
/// Ungoverned and untraced; publishes no `fds.*` telemetry (it is a
/// yardstick, not a production path).
pub fn analyze_reference(bp: &BoolProgram) -> ScalarResult {
    let n = bp.node_count;
    let width = bp.preds.len();
    let mut state: Vec<BitSet> = (0..n).map(|_| BitSet::new(width)).collect();
    for &k in &bp.entry_unknown {
        state[bp.entry].set(k, true);
    }
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, e) in bp.edges.iter().enumerate() {
        out_edges[e.from].push(k);
    }
    let mut work: Vec<usize> = vec![bp.entry];
    let mut on_work = vec![false; n];
    let mut reached = vec![false; n];
    on_work[bp.entry] = true;
    reached[bp.entry] = true;
    let mut edge_visits = 0;
    let mut pops = 0usize;
    while let Some(node) = work.pop() {
        pops += 1;
        on_work[node] = false;
        for &ek in &out_edges[node] {
            let e = &bp.edges[ek];
            edge_visits += 1;
            let mut out = state[e.from].clone();
            for (dst, rhs) in &e.assigns {
                let bit = match rhs {
                    Rhs::Havoc => true,
                    Rhs::Disj(ops) => ops.iter().any(|op| match op {
                        Operand::Const(c) => *c,
                        Operand::Var(v) => state[e.from].get(*v),
                    }),
                };
                out.set(*dst, bit);
            }
            let grew = state[e.to].union_with(&out);
            let first_visit = !reached[e.to];
            reached[e.to] = true;
            if (grew || first_visit) && !on_work[e.to] {
                on_work[e.to] = true;
                work.push(e.to);
            }
        }
    }
    ScalarResult { may_one: state, edge_visits, worklist_pops: pops }
}

/// Extracts the potential violations from a fixpoint.
pub fn violations(bp: &BoolProgram, res: &FdsResult) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in &bp.checks {
        let mut culprits = Vec::new();
        let mut fires = false;
        for op in &c.preds {
            match op {
                Operand::Const(true) => fires = true,
                Operand::Const(false) => {}
                Operand::Var(v) => {
                    if res.get(c.node, *v) {
                        fires = true;
                        culprits.push(*v);
                    }
                }
            }
        }
        if fires {
            out.push(Violation { site: c.site.clone(), culprits, witness: None });
        }
    }
    out
}

/// Like [`violations`], but resolves a witness trace for each violation from
/// the provenance recorded by [`analyze_traced`]. Checks that fire only on a
/// constant-true disjunct get an empty trace (the precondition is violated
/// unconditionally).
pub fn violations_explained(
    bp: &BoolProgram,
    res: &FdsResult,
    prov: &Provenance,
    program: &Program,
    derived: &Derived,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in &bp.checks {
        let mut culprits = Vec::new();
        let mut fires = false;
        for op in &c.preds {
            match op {
                Operand::Const(true) => fires = true,
                Operand::Const(false) => {}
                Operand::Var(v) => {
                    if res.get(c.node, *v) {
                        fires = true;
                        culprits.push(*v);
                    }
                }
            }
        }
        if fires {
            let steps = match culprits.first() {
                Some(&p) => prov.trace(bp, program, derived, c.node, p),
                None => Vec::new(),
            };
            out.push(Violation { site: c.site.clone(), culprits, witness: Some(steps) });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_abstraction::{transform_method, EntryAssumption};
    use canvas_minijava::Program;
    use canvas_wp::derive_abstraction;

    fn certify(src: &str) -> Vec<Violation> {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        let main = program.main_method().expect("needs a main");
        let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
        let res = analyze(&bp);
        // the scalar reference kernel must agree everywhere, always
        let reference = analyze_reference(&bp);
        assert_eq!(res.to_bitsets(), reference.may_one, "kernels diverged");
        assert_eq!(res.edge_visits, reference.edge_visits);
        assert_eq!(res.worklist_pops, reference.worklist_pops);
        violations(&bp, &res)
    }

    #[test]
    fn fig3_exact_lines() {
        // the paper's running example: errors at the i2.next() and the final
        // i1.next(), and NO false alarm at i3.next()
        let v = certify(
            r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
    static boolean c() { return true; }
}
"#,
        );
        let lines: Vec<u32> = v.iter().map(|x| x.site.line()).collect();
        assert_eq!(lines, vec![10, 13], "violations: {v:#?}");
    }

    #[test]
    fn straightline_no_error() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("a");
        Iterator i = s.iterator();
        i.next();
        i.remove();
        i.next();
    }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn loop_with_fresh_iterator_is_safe() {
        // the §3 example that defeats allocation-site-based alias analysis:
        // the set is modified, but a fresh iterator is created before each
        // inner loop, so no CME occurs
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) {
                i.next();
            }
        }
    }
    static boolean c() { return true; }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn loop_add_during_iteration_is_flagged() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        for (Iterator i = s.iterator(); i.hasNext(); ) {
            i.next();
            s.add("x");
        }
    }
}
"#,
        );
        // the second-iteration next() must be flagged
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].site.what.contains("next"));
    }

    #[test]
    fn iterator_remove_keeps_self_valid_but_stales_others() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator a = s.iterator();
        Iterator b = s.iterator();
        a.remove();
        a.next();
        b.next();
    }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].site.what, "b.next()");
    }

    #[test]
    fn branch_join_is_path_sensitive_enough() {
        // one branch stales i, the other does not: the later next() may fail
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) { s.add("x"); }
        i.next();
    }
    static boolean c() { return true; }
}
"#,
        );
        assert_eq!(v.len(), 1);
        // but if both branches refresh the iterator, no alarm:
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) { s.add("x"); i = s.iterator(); } else { i = s.iterator(); }
        i.next();
    }
    static boolean c() { return true; }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn unknown_callee_is_conservative() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        mystery();
        i.next();
    }
    static void mystery() { }
}
"#,
        );
        // intraprocedural engine must flag this (mystery could mutate s via
        // a static — it cannot here, but the intraproc abstraction cannot
        // know that; §8's interprocedural engine resolves it)
        assert_eq!(v.len(), 1);
    }
}
