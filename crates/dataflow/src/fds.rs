//! The polynomial FDS certifier core: may-be-1 reachability.
//!
//! For every `requires ¬p` check the certifier only needs to know whether
//! `p` *may* evaluate to 1 at the check's program point. Over the
//! transformed boolean program — whose assignments are all of the shape
//! `p := p₁ ∨ … ∨ pₖ`, `p := 0`, `p := 1` — the may-be-1 property is
//! distributive over path union, so the fixpoint below computes the exact
//! meet-over-all-paths solution (§4.3), in `O(E · B²)` time.
//!
//! `Havoc` right-hand sides (unknown callees, heap loads) conservatively set
//! the bit.

use canvas_abstraction::{BoolProgram, Operand, Rhs};
use canvas_faults::{Exhaustion, Meter};
use canvas_minijava::{Program, Site};
use canvas_wp::Derived;

use crate::bitset::BitSet;
use crate::provenance::{justify, Provenance, TraceStep};

static FDS_WORKLIST_POPS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("fds.worklist_pops");
static FDS_EDGE_VISITS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("fds.edge_visits");
static FDS_SOLVE_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("fds.solve");

/// The fixpoint result: for every node, which predicates may be 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FdsResult {
    /// Per-node may-be-1 sets, indexed by node id.
    pub may_one: Vec<BitSet>,
    /// Number of edge evaluations performed (work measure).
    pub edge_visits: usize,
}

/// A potential `requires` violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Where.
    pub site: Site,
    /// The predicate instances that may be 1 (empty when the check fires on
    /// a constant-true disjunct).
    pub culprits: Vec<usize>,
    /// Witness trace for the first culprit, when the solver recorded
    /// provenance (`None` on the default fast path).
    pub witness: Option<Vec<TraceStep>>,
}

/// Runs the may-be-1 analysis to fixpoint.
pub fn analyze(bp: &BoolProgram) -> FdsResult {
    let disarmed = Meter::disarmed();
    match analyze_inner::<false>(bp, &disarmed) {
        Ok((res, _)) => res,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Like [`analyze`], but records per-fact provenance for witness traces.
/// A separate monomorphization, so [`analyze`] pays nothing for it.
pub fn analyze_traced(bp: &BoolProgram) -> (FdsResult, Provenance) {
    let disarmed = Meter::disarmed();
    match analyze_inner::<true>(bp, &disarmed) {
        Ok(pair) => pair,
        Err(ex) => unreachable!("disarmed meter tripped: {ex}"),
    }
}

/// Governed variant of [`analyze`]: one meter tick per edge visit.
///
/// # Errors
///
/// Returns the [`Exhaustion`] when the governor budget trips; the caller
/// degrades to an inconclusive verdict.
pub fn analyze_with(bp: &BoolProgram, gov: &Meter) -> Result<FdsResult, Exhaustion> {
    canvas_faults::solver_abort();
    analyze_inner::<false>(bp, gov).map(|(res, _)| res)
}

/// Governed variant of [`analyze_traced`].
///
/// # Errors
///
/// As [`analyze_with`].
pub fn analyze_traced_with(
    bp: &BoolProgram,
    gov: &Meter,
) -> Result<(FdsResult, Provenance), Exhaustion> {
    canvas_faults::solver_abort();
    analyze_inner::<true>(bp, gov)
}

fn analyze_inner<const TRACE: bool>(
    bp: &BoolProgram,
    gov: &Meter,
) -> Result<(FdsResult, Provenance), Exhaustion> {
    let _span = FDS_SOLVE_TIME.span();
    let n = bp.node_count;
    let width = bp.preds.len();
    let mut prov = if TRACE { Provenance::new(n, width) } else { Provenance::empty() };
    let mut state: Vec<BitSet> = (0..n).map(|_| BitSet::new(width)).collect();
    for &k in &bp.entry_unknown {
        state[bp.entry].set(k, true);
    }

    // index edges by source for the worklist
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, e) in bp.edges.iter().enumerate() {
        out_edges[e.from].push(k);
    }

    let mut work: Vec<usize> = vec![bp.entry];
    let mut on_work = vec![false; n];
    let mut reached = vec![false; n];
    on_work[bp.entry] = true;
    reached[bp.entry] = true;
    let mut edge_visits = 0;
    let mut pops = 0u64;
    while let Some(node) = work.pop() {
        pops += 1;
        on_work[node] = false;
        for &ek in &out_edges[node] {
            let e = &bp.edges[ek];
            edge_visits += 1;
            if let Err(ex) = gov.tick() {
                FDS_WORKLIST_POPS.add(pops);
                FDS_EDGE_VISITS.add(edge_visits as u64);
                return Err(ex);
            }
            let mut out = state[e.from].clone();
            for (dst, rhs) in &e.assigns {
                let bit = match rhs {
                    Rhs::Havoc => true,
                    Rhs::Disj(ops) => ops.iter().any(|op| match op {
                        Operand::Const(c) => *c,
                        Operand::Var(v) => state[e.from].get(*v),
                    }),
                };
                out.set(*dst, bit);
            }
            if TRACE {
                for p in out.iter_ones() {
                    if !state[e.to].get(p) {
                        let src = justify(e, p, |q| state[e.from].get(q));
                        prov.record(e.to, p, ek, src);
                    }
                }
            }
            let grew = state[e.to].union_with(&out);
            let first_visit = !reached[e.to];
            reached[e.to] = true;
            if (grew || first_visit) && !on_work[e.to] {
                on_work[e.to] = true;
                work.push(e.to);
            }
        }
    }
    FDS_WORKLIST_POPS.add(pops);
    FDS_EDGE_VISITS.add(edge_visits as u64);
    canvas_telemetry::trace::instant(
        "fds.fixpoint",
        "solver",
        &[("edge_visits", edge_visits as u64), ("worklist_pops", pops)],
    );
    Ok((FdsResult { may_one: state, edge_visits }, prov))
}

/// Extracts the potential violations from a fixpoint.
pub fn violations(bp: &BoolProgram, res: &FdsResult) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in &bp.checks {
        let mut culprits = Vec::new();
        let mut fires = false;
        for op in &c.preds {
            match op {
                Operand::Const(true) => fires = true,
                Operand::Const(false) => {}
                Operand::Var(v) => {
                    if res.may_one[c.node].get(*v) {
                        fires = true;
                        culprits.push(*v);
                    }
                }
            }
        }
        if fires {
            out.push(Violation { site: c.site.clone(), culprits, witness: None });
        }
    }
    out
}

/// Like [`violations`], but resolves a witness trace for each violation from
/// the provenance recorded by [`analyze_traced`]. Checks that fire only on a
/// constant-true disjunct get an empty trace (the precondition is violated
/// unconditionally).
pub fn violations_explained(
    bp: &BoolProgram,
    res: &FdsResult,
    prov: &Provenance,
    program: &Program,
    derived: &Derived,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in &bp.checks {
        let mut culprits = Vec::new();
        let mut fires = false;
        for op in &c.preds {
            match op {
                Operand::Const(true) => fires = true,
                Operand::Const(false) => {}
                Operand::Var(v) => {
                    if res.may_one[c.node].get(*v) {
                        fires = true;
                        culprits.push(*v);
                    }
                }
            }
        }
        if fires {
            let steps = match culprits.first() {
                Some(&p) => prov.trace(bp, program, derived, c.node, p),
                None => Vec::new(),
            };
            out.push(Violation { site: c.site.clone(), culprits, witness: Some(steps) });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_abstraction::{transform_method, EntryAssumption};
    use canvas_minijava::Program;
    use canvas_wp::derive_abstraction;

    fn certify(src: &str) -> Vec<Violation> {
        let spec = canvas_easl::builtin::cmp();
        let program = Program::parse(src, &spec).unwrap();
        let derived = derive_abstraction(&spec).unwrap();
        let main = program.main_method().expect("needs a main");
        let bp = transform_method(&program, main, &spec, &derived, EntryAssumption::Clean);
        let res = analyze(&bp);
        violations(&bp, &res)
    }

    #[test]
    fn fig3_exact_lines() {
        // the paper's running example: errors at the i2.next() and the final
        // i1.next(), and NO false alarm at i3.next()
        let v = certify(
            r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
    static boolean c() { return true; }
}
"#,
        );
        let lines: Vec<u32> = v.iter().map(|x| x.site.line()).collect();
        assert_eq!(lines, vec![10, 13], "violations: {v:#?}");
    }

    #[test]
    fn straightline_no_error() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        s.add("a");
        Iterator i = s.iterator();
        i.next();
        i.remove();
        i.next();
    }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn loop_with_fresh_iterator_is_safe() {
        // the §3 example that defeats allocation-site-based alias analysis:
        // the set is modified, but a fresh iterator is created before each
        // inner loop, so no CME occurs
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        while (true) {
            s.add("x");
            for (Iterator i = s.iterator(); i.hasNext(); ) {
                i.next();
            }
        }
    }
    static boolean c() { return true; }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn loop_add_during_iteration_is_flagged() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        for (Iterator i = s.iterator(); i.hasNext(); ) {
            i.next();
            s.add("x");
        }
    }
}
"#,
        );
        // the second-iteration next() must be flagged
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].site.what.contains("next"));
    }

    #[test]
    fn iterator_remove_keeps_self_valid_but_stales_others() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator a = s.iterator();
        Iterator b = s.iterator();
        a.remove();
        a.next();
        b.next();
    }
}
"#,
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].site.what, "b.next()");
    }

    #[test]
    fn branch_join_is_path_sensitive_enough() {
        // one branch stales i, the other does not: the later next() may fail
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) { s.add("x"); }
        i.next();
    }
    static boolean c() { return true; }
}
"#,
        );
        assert_eq!(v.len(), 1);
        // but if both branches refresh the iterator, no alarm:
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (true) { s.add("x"); i = s.iterator(); } else { i = s.iterator(); }
        i.next();
    }
    static boolean c() { return true; }
}
"#,
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn unknown_callee_is_conservative() {
        let v = certify(
            r#"
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        mystery();
        i.next();
    }
    static void mystery() { }
}
"#,
        );
        // intraprocedural engine must flag this (mystery could mutate s via
        // a static — it cannot here, but the intraproc abstraction cannot
        // know that; §8's interprocedural engine resolves it)
        assert_eq!(v.len(), 1);
    }
}
