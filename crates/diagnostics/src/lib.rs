//! Rustc-style labeled source diagnostics.
//!
//! The certifier's witness traces (see `canvas-dataflow::provenance`) are
//! sequences of source locations with facts attached. This crate renders
//! them the way `rustc` renders borrow-check errors: the offending lines
//! quoted from the client source with a line-number gutter, carets under the
//! primary location, dashes under the secondary ones, and a message per
//! label:
//!
//! ```text
//! error: i1.next() may violate: requires !stale{i1}
//!   --> examples/fig3.mj:6:9
//!    |
//!  3 |         Iterator i1 = s.iterator();
//!    |                       ------------ iterof{i1,s} established here
//!  ...
//!  6 |         i1.next();
//!    |         ^^^^^^^^^ stale{i1} may hold here
//! ```
//!
//! No colors, no terminal probing: the output is plain text, stable enough
//! to golden-test.

use std::fmt::Write as _;

/// Diagnostic severity, controlling the header keyword.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// A certain or potential conformance violation.
    Error,
    /// A lesser finding.
    Warning,
    /// Supplementary information.
    Note,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One labeled source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Label {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Underline length in bytes; `0` = underline to the end of the
    /// statement (trailing whitespace and semicolons excluded).
    pub len: usize,
    /// Primary labels are underlined with `^`, secondary ones with `-`.
    pub primary: bool,
    /// The message printed after the underline.
    pub message: String,
}

impl Label {
    /// A primary label (`^^^`).
    pub fn primary(line: u32, col: u32, message: impl Into<String>) -> Label {
        Label { line, col, len: 0, primary: true, message: message.into() }
    }

    /// A secondary label (`---`).
    pub fn secondary(line: u32, col: u32, message: impl Into<String>) -> Label {
        Label { line, col, len: 0, primary: false, message: message.into() }
    }
}

/// A renderable diagnostic: header, labeled source lines, trailing notes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Severity keyword for the header.
    pub severity: Severity,
    /// Header message.
    pub message: String,
    /// Display name of the source file (shown in the `-->` line).
    pub file: String,
    /// Labels into the source; rendered in line order.
    pub labels: Vec<Label>,
    /// Trailing `= note:` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error-severity diagnostic.
    pub fn error(message: impl Into<String>, file: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            file: file.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A new warning-severity diagnostic (e.g. an inconclusive verdict).
    pub fn warning(message: impl Into<String>, file: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(message, file) }
    }

    /// Adds a label.
    pub fn with_label(mut self, label: Label) -> Diagnostic {
        self.labels.push(label);
        self
    }

    /// Adds a trailing note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic against the source text it points into.
    /// Labels whose line is out of range are skipped.
    pub fn render(&self, source: &str) -> String {
        let lines: Vec<&str> = source.lines().collect();
        let mut labels: Vec<&Label> = self
            .labels
            .iter()
            .filter(|l| l.line >= 1 && (l.line as usize) <= lines.len())
            .collect();
        labels.sort_by_key(|l| (l.line, l.col));

        let mut out = String::new();
        // header: point at the first primary label (or the first label)
        let anchor = labels.iter().find(|l| l.primary).or_else(|| labels.first());
        let _ = writeln!(out, "{}: {}", self.severity, self.message);
        match anchor {
            Some(a) => {
                let _ = writeln!(out, "  --> {}:{}:{}", self.file, a.line, a.col);
            }
            None => {
                let _ = writeln!(out, "  --> {}", self.file);
            }
        }

        let gutter = labels.iter().map(|l| decimal_width(l.line)).max().unwrap_or(1);
        if !labels.is_empty() {
            let _ = writeln!(out, "{:gutter$} |", "");
        }
        let mut prev_line: Option<u32> = None;
        let mut i = 0;
        while i < labels.len() {
            let line_no = labels[i].line;
            if let Some(p) = prev_line {
                if line_no > p + 1 {
                    // elide the unlabeled span between labeled lines
                    let _ = writeln!(out, "{:.<gutter$}.", "");
                }
            }
            if prev_line != Some(line_no) {
                let text = lines[line_no as usize - 1];
                let _ = writeln!(out, "{line_no:gutter$} | {text}");
            }
            // all labels on this line, one annotation row each
            while i < labels.len() && labels[i].line == line_no {
                let l = labels[i];
                let text = lines[line_no as usize - 1];
                let col = (l.col.max(1) as usize - 1).min(text.len());
                let len = if l.len > 0 {
                    l.len
                } else {
                    text[col..].trim_end().trim_end_matches(';').trim_end().len().max(1)
                };
                let marker = if l.primary { "^" } else { "-" };
                let _ = writeln!(
                    out,
                    "{:gutter$} | {:col$}{} {}",
                    "",
                    "",
                    marker.repeat(len),
                    l.message
                );
                i += 1;
            }
            prev_line = Some(line_no);
        }
        if !labels.is_empty() && !self.notes.is_empty() {
            let _ = writeln!(out, "{:gutter$} |", "");
        }
        for n in &self.notes {
            let _ = writeln!(out, "{:gutter$} = note: {}", "", n);
        }
        out
    }
}

fn decimal_width(n: u32) -> usize {
    n.max(1).ilog10() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
class Main {
    static void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add(\"x\");
        i.next();
    }
}
";

    #[test]
    fn renders_labels_in_line_order_with_gap_elision() {
        let d = Diagnostic::error("i.next() may violate: requires !stale{i}", "client.mj")
            .with_label(Label::primary(6, 9, "stale{i} may hold here"))
            .with_label(Label::secondary(4, 22, "iterator created here"))
            .with_note("witness recorded by the scmp-fds engine");
        let r = d.render(SRC);
        assert_eq!(
            r,
            "error: i.next() may violate: requires !stale{i}\n\
             \x20 --> client.mj:6:9\n\
             \x20 |\n\
             4 |         Iterator i = s.iterator();\n\
             \x20 |                      ------------ iterator created here\n\
             ..\n\
             6 |         i.next();\n\
             \x20 |         ^^^^^^^^ stale{i} may hold here\n\
             \x20 |\n\
             \x20 = note: witness recorded by the scmp-fds engine\n",
            "got:\n{r}"
        );
    }

    #[test]
    fn adjacent_lines_are_not_elided() {
        let d = Diagnostic::error("two steps", "x.mj")
            .with_label(Label::secondary(5, 9, "mutation"))
            .with_label(Label::primary(6, 9, "use"));
        let r = d.render(SRC);
        assert!(!r.contains(".."), "{r}");
        assert!(r.contains("5 |         s.add(\"x\");"), "{r}");
        assert!(r.contains("6 |         i.next();"), "{r}");
    }

    #[test]
    fn multiple_labels_on_one_line_stack() {
        let d = Diagnostic::error("stacked", "x.mj")
            .with_label(Label::primary(6, 9, "first"))
            .with_label(Label::secondary(6, 11, "second"));
        let r = d.render(SRC);
        let line_rows = r.lines().filter(|l| l.starts_with("6 |")).count();
        assert_eq!(line_rows, 1, "{r}");
        assert!(r.contains("first") && r.contains("second"), "{r}");
    }

    #[test]
    fn no_labels_still_renders_header() {
        let d = Diagnostic {
            severity: Severity::Note,
            message: "no witness available".into(),
            file: "x.mj".into(),
            labels: Vec::new(),
            notes: vec!["the tvla engine does not record provenance".into()],
        };
        let r = d.render(SRC);
        assert!(r.starts_with("note: no witness available\n  --> x.mj\n"), "{r}");
        assert!(r.contains("= note: the tvla engine"), "{r}");
    }

    #[test]
    fn explicit_len_and_out_of_range_labels() {
        let d = Diagnostic::error("e", "x.mj")
            .with_label(Label { line: 6, col: 9, len: 1, primary: true, message: "m".into() })
            .with_label(Label::primary(999, 1, "dropped"));
        let r = d.render(SRC);
        assert!(r.contains("^ m"), "{r}");
        assert!(!r.contains("dropped"), "{r}");
    }

    #[test]
    fn severity_display() {
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert_eq!(Severity::Note.to_string(), "note");
    }
}
