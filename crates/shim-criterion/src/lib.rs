//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-group API surface the workspace benches use
//! (`benchmark_group`, `sample_size`, `measurement_time`, `warm_up_time`,
//! `bench_function`, `bench_with_input`, `finish`) with a straightforward
//! wall-clock harness: warm up for the configured duration, then run
//! timed samples and report min/median/mean per benchmark. No plotting,
//! no statistics beyond that — enough to compare hot paths release-mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark id used by `bench_with_input`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new<S: Display, P: Display>(function: S, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Pick iterations per sample so all samples fit the measurement window.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), &samples);
        self
    }

    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: min {} · median {} · mean {} ({} samples)",
        fmt(min),
        fmt(median),
        fmt(mean),
        sorted.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            _criterion: self,
        }
    }

    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) {
        let name = id.to_string();
        self.benchmark_group(&name).bench_function("", f);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
