//! The live observability surface of `canvas serve`.
//!
//! [`ServeMetrics`] aggregates per-verb request counts, error counts, and
//! latency histograms (instance [`Histogram`]s — they live with the daemon,
//! not in the process-global telemetry registry), plus worker utilization,
//! queue depth, and certification outcome counters. The `metrics` verb
//! renders it all as Prometheus text exposition ([`ServeMetrics::prometheus`]),
//! joined with the shared certificate store's hit/miss/occupancy counters
//! and the structured-log drop counter; the `health` verb answers a cheap
//! liveness probe from the same state.
//!
//! The exposition's *layout* is deterministic (every family and every verb
//! row is always emitted, zero-valued or not, in a fixed order) so the CI
//! obs-smoke job can golden-check it; the *values* for counters are exact
//! and latency quantiles come from the log₂ histograms' rank-interpolated
//! p50/p90/p99 estimates.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use canvas_telemetry::Histogram;

use crate::store::CertCache;

/// The request verbs tracked by the exposition, fixed order. `invalid`
/// accounts for lines that failed to parse as any verb.
pub const VERBS: [&str; 6] = ["certify", "stats", "metrics", "health", "shutdown", "invalid"];

struct VerbMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl VerbMetrics {
    const fn new(name: &'static str) -> VerbMetrics {
        VerbMetrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Histogram::new(name),
        }
    }
}

/// Live counters of one serve loop (shared across its worker pool).
pub struct ServeMetrics {
    started: Instant,
    workers: u64,
    queue_cap: u64,
    queue: AtomicU64,
    busy: AtomicU64,
    inconclusive: AtomicU64,
    delta_seeded: AtomicU64,
    shed: AtomicU64,
    deadline_shed: AtomicU64,
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    conns_poisoned: AtomicU64,
    requests_poisoned: AtomicU64,
    verbs: [VerbMetrics; VERBS.len()],
}

impl ServeMetrics {
    /// Fresh metrics for a serve loop with `workers` pool threads over a
    /// bounded queue of `queue_cap` slots.
    pub fn new(workers: usize, queue_cap: usize) -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            workers: workers as u64,
            queue_cap: queue_cap as u64,
            queue: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            inconclusive: AtomicU64::new(0),
            delta_seeded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            conns_opened: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            conns_poisoned: AtomicU64::new(0),
            requests_poisoned: AtomicU64::new(0),
            verbs: [
                VerbMetrics::new("serve.certify"),
                VerbMetrics::new("serve.stats"),
                VerbMetrics::new("serve.metrics"),
                VerbMetrics::new("serve.health"),
                VerbMetrics::new("serve.shutdown"),
                VerbMetrics::new("serve.invalid"),
            ],
        }
    }

    /// The index of a verb name in [`VERBS`] (`invalid` for unknown names).
    pub fn verb_index(verb: &str) -> usize {
        VERBS.iter().position(|v| *v == verb).unwrap_or(VERBS.len() - 1)
    }

    /// A request was accepted off the input stream.
    pub fn enqueued(&self) {
        self.queue.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker picked a request up: counts it under its verb immediately,
    /// so a `metrics` scrape sees itself and everything picked up before it.
    pub fn begin(&self, verb: &str) {
        self.busy.fetch_add(1, Ordering::Relaxed);
        self.verbs[ServeMetrics::verb_index(verb)].requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker finished a request: records the error flag and latency, and
    /// releases the queue/busy slots.
    pub fn finish(&self, verb: &str, elapsed: Duration, is_error: bool) {
        let v = &self.verbs[ServeMetrics::verb_index(verb)];
        if is_error {
            v.errors.fetch_add(1, Ordering::Relaxed);
        }
        v.latency.record_value(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.busy.fetch_sub(1, Ordering::Relaxed);
        self.queue.fetch_sub(1, Ordering::Relaxed);
    }

    /// A certify request ended inconclusive (budget exhaustion, engine
    /// panic degraded to a contained verdict, ...).
    pub fn note_inconclusive(&self) {
        self.inconclusive.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds delta-seeded cell count from one request's cache traffic.
    pub fn add_delta_seeded(&self, n: u64) {
        if n > 0 {
            self.delta_seeded.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A certify request was shed at admission (queue full / tenant budget).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted certify was shed at pickup: its deadline expired queued.
    pub fn note_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection was accepted (or the stdio session started).
    pub fn conn_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection reader finished.
    pub fn conn_closed(&self) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// A write failure poisoned one connection; everything else lives on.
    pub fn note_conn_poisoned(&self) {
        self.conns_poisoned.fetch_add(1, Ordering::Relaxed);
    }

    /// A handler panic was contained to its request.
    pub fn note_request_poisoned(&self) {
        self.requests_poisoned.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests handled across every verb (including sheds).
    pub fn requests_total(&self) -> u64 {
        self.verbs.iter().map(|v| v.requests.load(Ordering::Relaxed)).sum()
    }

    /// Certify requests shed at admission.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Admitted certify requests shed at pickup on an expired deadline.
    pub fn deadline_shed_total(&self) -> u64 {
        self.deadline_shed.load(Ordering::Relaxed)
    }

    /// Connections poisoned by a failed or timed-out write.
    pub fn conns_poisoned(&self) -> u64 {
        self.conns_poisoned.load(Ordering::Relaxed)
    }

    /// Connections currently open (opened minus closed).
    pub fn conns_open(&self) -> u64 {
        self.conns_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.conns_closed.load(Ordering::Relaxed))
    }

    /// Milliseconds since the serve loop started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Configured worker-pool size.
    pub fn workers(&self) -> u64 {
        self.workers
    }

    /// Requests currently being handled by workers.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Requests accepted but not yet answered (includes the busy ones).
    pub fn queue_depth(&self) -> u64 {
        self.queue.load(Ordering::Relaxed)
    }

    /// Renders the full Prometheus text exposition, joining the verb/pool
    /// counters with `cache`'s store-wide traffic and occupancy.
    pub fn prometheus(&self, cache: &CertCache) -> String {
        let mut out = String::with_capacity(4096);
        let secs = |ns: u64| ns as f64 / 1e9;
        let _ = writeln!(
            out,
            "# HELP canvas_serve_uptime_seconds Seconds since the serve loop started."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "canvas_serve_uptime_seconds {:.3}",
            self.started.elapsed().as_secs_f64()
        );
        let _ = writeln!(out, "# HELP canvas_serve_workers Configured worker-pool size.");
        let _ = writeln!(out, "# TYPE canvas_serve_workers gauge");
        let _ = writeln!(out, "canvas_serve_workers {}", self.workers);
        let _ =
            writeln!(out, "# HELP canvas_serve_workers_busy Workers currently handling a request.");
        let _ = writeln!(out, "# TYPE canvas_serve_workers_busy gauge");
        let _ = writeln!(out, "canvas_serve_workers_busy {}", self.busy());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_queue_depth Requests accepted but not yet answered."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_queue_depth gauge");
        let _ = writeln!(out, "canvas_serve_queue_depth {}", self.queue_depth());
        let _ =
            writeln!(out, "# HELP canvas_serve_queue_capacity Bounded admission queue capacity.");
        let _ = writeln!(out, "# TYPE canvas_serve_queue_capacity gauge");
        let _ = writeln!(out, "canvas_serve_queue_capacity {}", self.queue_cap);
        let _ = writeln!(out, "# HELP canvas_serve_requests_total Requests handled, by verb.");
        let _ = writeln!(out, "# TYPE canvas_serve_requests_total counter");
        for (name, v) in VERBS.iter().zip(&self.verbs) {
            let _ = writeln!(
                out,
                "canvas_serve_requests_total{{verb=\"{name}\"}} {}",
                v.requests.load(Ordering::Relaxed)
            );
        }
        let _ =
            writeln!(out, "# HELP canvas_serve_errors_total Requests answered ok=false, by verb.");
        let _ = writeln!(out, "# TYPE canvas_serve_errors_total counter");
        for (name, v) in VERBS.iter().zip(&self.verbs) {
            let _ = writeln!(
                out,
                "canvas_serve_errors_total{{verb=\"{name}\"}} {}",
                v.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# HELP canvas_serve_request_latency_seconds Request latency summary, by verb (log2-histogram quantile estimates).");
        let _ = writeln!(out, "# TYPE canvas_serve_request_latency_seconds summary");
        for (name, v) in VERBS.iter().zip(&self.verbs) {
            let s = v.latency.stat();
            for (q, est) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "canvas_serve_request_latency_seconds{{verb=\"{name}\",quantile=\"{q}\"}} {:.9}",
                    secs(est)
                );
            }
            let _ = writeln!(
                out,
                "canvas_serve_request_latency_seconds_sum{{verb=\"{name}\"}} {:.9}",
                secs(s.sum)
            );
            let _ = writeln!(
                out,
                "canvas_serve_request_latency_seconds_count{{verb=\"{name}\"}} {}",
                s.count
            );
        }
        let _ = writeln!(
            out,
            "# HELP canvas_serve_inconclusive_total Certify requests that ended inconclusive."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_inconclusive_total counter");
        let _ = writeln!(
            out,
            "canvas_serve_inconclusive_total {}",
            self.inconclusive.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP canvas_serve_delta_seeded_total Cells re-solved from a stale fixpoint seed."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_delta_seeded_total counter");
        let _ = writeln!(
            out,
            "canvas_serve_delta_seeded_total {}",
            self.delta_seeded.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP canvas_serve_shed_total Certify requests shed at admission (queue full or tenant budget exhausted)."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_shed_total counter");
        let _ = writeln!(out, "canvas_serve_shed_total {}", self.shed_total());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_deadline_total Admitted certify requests shed at pickup on an expired deadline."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_deadline_total counter");
        let _ = writeln!(out, "canvas_serve_deadline_total {}", self.deadline_shed_total());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_connections_open Client connections currently open."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_connections_open gauge");
        let _ = writeln!(out, "canvas_serve_connections_open {}", self.conns_open());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_connections_poisoned_total Connections poisoned by a failed or timed-out write."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_connections_poisoned_total counter");
        let _ = writeln!(out, "canvas_serve_connections_poisoned_total {}", self.conns_poisoned());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_requests_poisoned_total Handler panics contained to their request."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_requests_poisoned_total counter");
        let _ = writeln!(
            out,
            "canvas_serve_requests_poisoned_total {}",
            self.requests_poisoned.load(Ordering::Relaxed)
        );
        let stats = cache.stats();
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_hits_total Cells answered from the certificate store."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_hits_total counter");
        let _ = writeln!(out, "canvas_serve_cache_hits_total {}", stats.hits);
        let _ = writeln!(out, "# HELP canvas_serve_cache_misses_total Cells that ran fresh.");
        let _ = writeln!(out, "# TYPE canvas_serve_cache_misses_total counter");
        let _ = writeln!(out, "canvas_serve_cache_misses_total {}", stats.misses);
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_stores_total Certificates written to the store."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_stores_total counter");
        let _ = writeln!(out, "canvas_serve_cache_stores_total {}", stats.stores);
        let _ = writeln!(out, "# HELP canvas_serve_cache_invalidations_total Stale entries displaced by a changed key.");
        let _ = writeln!(out, "# TYPE canvas_serve_cache_invalidations_total counter");
        let _ = writeln!(out, "canvas_serve_cache_invalidations_total {}", stats.invalidations);
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_entries Certificates currently resident in the store."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_entries gauge");
        let _ = writeln!(out, "canvas_serve_cache_entries {}", cache.len());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_evictions_total Hot-tier certificates evicted by the byte budget."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_evictions_total counter");
        let _ = writeln!(out, "canvas_serve_cache_evictions_total {}", stats.evictions);
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_spill_hits_total Lookups answered from the spill tier after a hot-tier eviction."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_spill_hits_total counter");
        let _ = writeln!(out, "canvas_serve_cache_spill_hits_total {}", stats.spill_hits);
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_bytes Byte occupancy of the hot in-memory certificate tier."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_bytes gauge");
        let _ = writeln!(out, "canvas_serve_cache_bytes {}", cache.memory_bytes());
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_budget_bytes Configured hot-tier byte budget (0 = unbounded)."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_budget_bytes gauge");
        let _ =
            writeln!(out, "canvas_serve_cache_budget_bytes {}", cache.budget_bytes().unwrap_or(0));
        let _ = writeln!(
            out,
            "# HELP canvas_serve_cache_hit_ratio Hits over lookups since the store opened."
        );
        let _ = writeln!(out, "# TYPE canvas_serve_cache_hit_ratio gauge");
        let lookups = stats.hits + stats.misses;
        let ratio = if lookups == 0 { 0.0 } else { stats.hits as f64 / lookups as f64 };
        let _ = writeln!(out, "canvas_serve_cache_hit_ratio {ratio:.4}");
        let _ = writeln!(out, "# HELP canvas_serve_log_events_dropped_total Structured-log records dropped from the ring buffer.");
        let _ = writeln!(out, "# TYPE canvas_serve_log_events_dropped_total counter");
        let _ = writeln!(
            out,
            "canvas_serve_log_events_dropped_total {}",
            canvas_telemetry::events::dropped()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_layout_is_complete_and_ordered() {
        let m = ServeMetrics::new(3, 64);
        m.enqueued();
        m.begin("certify");
        m.finish("certify", Duration::from_micros(250), false);
        m.enqueued();
        m.begin("nonsense");
        m.finish("nonsense", Duration::from_micros(10), true);
        m.note_inconclusive();
        m.add_delta_seeded(2);
        m.note_shed();
        m.note_deadline_shed();
        m.conn_opened();
        let cache = CertCache::in_memory();
        let text = m.prometheus(&cache);
        assert!(text.contains("canvas_serve_workers 3\n"), "{text}");
        assert!(text.contains("canvas_serve_queue_capacity 64\n"), "{text}");
        assert!(text.contains("canvas_serve_shed_total 1\n"), "{text}");
        assert!(text.contains("canvas_serve_deadline_total 1\n"), "{text}");
        assert!(text.contains("canvas_serve_connections_open 1\n"), "{text}");
        assert!(text.contains("canvas_serve_connections_poisoned_total 0\n"), "{text}");
        assert!(text.contains("canvas_serve_requests_poisoned_total 0\n"), "{text}");
        assert!(text.contains("canvas_serve_cache_evictions_total 0\n"), "{text}");
        assert!(text.contains("canvas_serve_cache_bytes 0\n"), "{text}");
        assert!(text.contains("canvas_serve_cache_budget_bytes 0\n"), "{text}");
        assert!(text.contains("canvas_serve_requests_total{verb=\"certify\"} 1\n"), "{text}");
        assert!(text.contains("canvas_serve_requests_total{verb=\"invalid\"} 1\n"), "{text}");
        assert!(text.contains("canvas_serve_errors_total{verb=\"invalid\"} 1\n"), "{text}");
        assert!(text.contains("canvas_serve_inconclusive_total 1\n"), "{text}");
        assert!(text.contains("canvas_serve_delta_seeded_total 2\n"), "{text}");
        assert!(text.contains("canvas_serve_cache_hit_ratio 0.0000\n"), "{text}");
        // every verb gets all three quantiles plus sum and count
        for verb in VERBS {
            for q in ["0.5", "0.9", "0.99"] {
                let line = format!(
                    "canvas_serve_request_latency_seconds{{verb=\"{verb}\",quantile=\"{q}\"}} "
                );
                assert!(text.contains(&line), "missing {line} in {text}");
            }
            assert!(text.contains(&format!(
                "canvas_serve_request_latency_seconds_count{{verb=\"{verb}\"}} "
            )));
        }
        // quantile estimate for the one certify sample sits in its bucket
        let p50 = text
            .lines()
            .find(|l| {
                l.starts_with(
                    "canvas_serve_request_latency_seconds{verb=\"certify\",quantile=\"0.5\"}",
                )
            })
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .expect("p50 line parses");
        assert!((125e-6..=500e-6).contains(&p50), "250µs sample, got {p50}");
        // queue drained
        assert!(text.contains("canvas_serve_queue_depth 0\n"), "{text}");
        assert!(text.contains("canvas_serve_workers_busy 0\n"), "{text}");
    }

    #[test]
    fn verb_index_maps_unknowns_to_invalid() {
        assert_eq!(ServeMetrics::verb_index("certify"), 0);
        assert_eq!(ServeMetrics::verb_index("health"), 3);
        assert_eq!(ServeMetrics::verb_index("garbage"), VERBS.len() - 1);
        assert_eq!(VERBS[ServeMetrics::verb_index("garbage")], "invalid");
    }
}
