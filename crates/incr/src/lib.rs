//! Incremental certification: a content-addressed certificate cache over
//! the staged certifier, plus the `canvas serve` request protocol.
//!
//! The staged pipeline already splits *certifier generation* (derive the
//! abstraction once per spec) from *client analysis* (run an engine per
//! client). This crate adds the third axis: *reuse across runs*. Every
//! `(method, entry, engine)` cell of a whole-program certification is keyed
//! by a content fingerprint of exactly what that cell's analysis can
//! observe ([`fingerprint`]), and its completed verdict is a certificate
//! stored in a [`store::CertCache`]. Editing one method re-runs only the
//! cells that could observe the edit; everything else is answered from the
//! cache, byte-identically (modulo wall-clock duration).
//!
//! [`service`] turns this into a long-lived `canvas serve` daemon speaking
//! newline-delimited JSON on stdin/stdout, with a warm shared cache across
//! concurrent requests.

use canvas_abstraction::{
    derived_digest, digest_str, CellSolution, CertCell, CertViolation, Certificate, EntryAssumption,
};
use canvas_core::{Certifier, CertifyError, Engine, PreparedProgram, Report, Witness};
use canvas_minijava::{MethodIr, Program};

pub mod fingerprint;
pub mod json;
pub mod lru;
pub mod net;
pub mod obs;
pub mod service;
pub mod store;

use fingerprint::{
    cell_key, fingerprint_config, fingerprint_derived, fingerprint_spec, Fingerprint, Hasher64,
    ProgramFingerprints,
};
use store::{CachedReport, CertCache};

/// Per-run cache traffic of one certification call (deterministic per
/// request even when other requests share the store concurrently).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunCacheStats {
    /// Cells answered from the certificate cache.
    pub hits: u64,
    /// Cells that ran fresh.
    pub misses: u64,
    /// Of the misses, cells whose FDS re-solve was seeded from a stale
    /// entry's pre-edit fixpoint (within-method delta re-solve) instead of
    /// restarting from ⊥.
    pub delta_seeded: u64,
}

/// A [`Certifier`] paired with a certificate cache: whole-program
/// certification that re-runs only the cells invalidated since the last
/// run with the same store.
pub struct IncrementalCertifier {
    certifier: Certifier,
    cache: std::sync::Arc<CertCache>,
    spec_fp: Fingerprint,
    derived_fp: Fingerprint,
}

impl IncrementalCertifier {
    /// Wraps `certifier` with `cache` (fingerprints the spec and the
    /// derived abstraction once, up front).
    pub fn new(certifier: Certifier, cache: CertCache) -> IncrementalCertifier {
        IncrementalCertifier::shared(certifier, std::sync::Arc::new(cache))
    }

    /// As [`IncrementalCertifier::new`], sharing an existing store (the
    /// serve daemon keeps one warm store across specs and requests).
    pub fn shared(certifier: Certifier, cache: std::sync::Arc<CertCache>) -> IncrementalCertifier {
        let spec_fp = fingerprint_spec(certifier.spec());
        let derived_fp = fingerprint_derived(certifier.derived());
        IncrementalCertifier { certifier, cache, spec_fp, derived_fp }
    }

    /// The wrapped certifier.
    pub fn certifier(&self) -> &Certifier {
        &self.certifier
    }

    /// The certificate store.
    pub fn cache(&self) -> &CertCache {
        &self.cache
    }

    /// A sibling certifier with a per-request budget, sharing this store.
    /// The budget is part of the cache key, so differently-budgeted
    /// requests never alias.
    pub fn with_budget(&self, budget: canvas_faults::Budget) -> IncrementalCertifier {
        IncrementalCertifier::shared(
            self.certifier.clone().with_budget(budget),
            std::sync::Arc::clone(&self.cache),
        )
    }

    /// Persists the store (see [`CertCache::persist`]).
    ///
    /// # Errors
    ///
    /// A `cache`-stage I/O error when the store file cannot be written.
    pub fn persist(&self) -> Result<(), canvas_core::CanvasError> {
        self.cache.persist()
    }

    /// Cached equivalent of [`Certifier::certify_program`]: `main` with
    /// clean entry plus every other method out of context, each cell
    /// answered from the store when its key matches.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_program_cached(
        &self,
        program: &Program,
        engine: Engine,
    ) -> Result<Report, CertifyError> {
        Ok(self.certify_program_cached_with_stats(program, engine)?.0)
    }

    /// As [`IncrementalCertifier::certify_program_cached`], also reporting
    /// this run's own hit/miss traffic.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_program_cached_with_stats(
        &self,
        program: &Program,
        engine: Engine,
    ) -> Result<(Report, RunCacheStats), CertifyError> {
        let fps = ProgramFingerprints::new(program);
        let config_fp = fingerprint_config(&self.certifier, engine);
        let mut run = RunCacheStats::default();

        // The interprocedural engine observes the whole program: one cell,
        // keyed on the whole-program fingerprint.
        if engine == Engine::ScmpInterproc {
            let key = cell_key(
                fps.program(),
                fps.environment(),
                self.spec_fp,
                self.derived_fp,
                config_fp,
                false,
            );
            if let Some(hit) = self.cache.lookup(key, "<whole-program>", false, "scmp-interproc") {
                run.hits += 1;
                return Ok((hit.to_report(engine), run));
            }
            run.misses += 1;
            let report = self.certifier.certify(program, engine)?;
            if let Some(cert) = CachedReport::from_report(&report) {
                self.cache.store(key, cert);
            }
            return Ok((report, run));
        }

        // Per-method cells, merged in the same order as
        // `certify_program_prepared` so the aggregate report matches the
        // uncached path byte for byte (modulo duration).
        let main = program.main_method().ok_or(CertifyError::NoMain)?;
        let prepared = PreparedProgram::new(program);
        let mut report = self.certify_cell(
            program,
            &prepared,
            &fps,
            main,
            engine,
            EntryAssumption::Clean,
            config_fp,
            &mut run,
        )?;
        for m in program.methods() {
            if m.id == main.id {
                continue;
            }
            let r = self.certify_cell(
                program,
                &prepared,
                &fps,
                m,
                engine,
                EntryAssumption::Unknown,
                config_fp,
                &mut run,
            )?;
            report.merge(r);
        }
        report.normalize();
        Ok((report, run))
    }

    /// Parses and certifies a source text (cached).
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify_source`].
    pub fn certify_source_cached(
        &self,
        src: &str,
        engine: Engine,
    ) -> Result<(Report, RunCacheStats), CertifyError> {
        let program = Program::parse(src, self.certifier.spec())?;
        self.certify_program_cached_with_stats(&program, engine)
    }

    #[allow(clippy::too_many_arguments)]
    fn certify_cell(
        &self,
        program: &Program,
        prepared: &PreparedProgram,
        fps: &ProgramFingerprints,
        method: &MethodIr,
        engine: Engine,
        entry: EntryAssumption,
        config_fp: Fingerprint,
        run: &mut RunCacheStats,
    ) -> Result<Report, CertifyError> {
        Ok(self
            .certify_cell_certified(
                program, prepared, fps, method, engine, entry, config_fp, run, false,
            )?
            .0)
    }

    /// One cell, cached, optionally demanding the replayable certificate
    /// cell. With `want_cert` a warm entry that predates solution storage
    /// (or whose run emitted none) degrades to a miss and re-runs — the
    /// store never serves a certificate it cannot back with a solution.
    #[allow(clippy::too_many_arguments)]
    fn certify_cell_certified(
        &self,
        program: &Program,
        prepared: &PreparedProgram,
        fps: &ProgramFingerprints,
        method: &MethodIr,
        engine: Engine,
        entry: EntryAssumption,
        config_fp: Fingerprint,
        run: &mut RunCacheStats,
        want_cert: bool,
    ) -> Result<(Report, Option<CertCell>), CertifyError> {
        let entry_unknown = entry == EntryAssumption::Unknown;
        let key = cell_key(
            fps.method(method.id),
            fps.deps(method.id),
            self.spec_fp,
            self.derived_fp,
            config_fp,
            entry_unknown,
        );
        let engine_name = engine.to_string();
        let (hit, stale) =
            self.cache.lookup_stale(key, &method.qualified_name(), entry_unknown, &engine_name);
        if let Some(hit) = hit {
            if !want_cert || hit.cell.is_some() {
                run.hits += 1;
                let cell = hit.cell.as_ref().map(|c| CertCell {
                    method: method.qualified_name(),
                    entry,
                    preds: c.preds,
                    bp_digest: c.bp_digest,
                    solution: c.solution.clone(),
                });
                return Ok((hit.to_report(engine), cell));
            }
        }
        run.misses += 1;
        // Within-method delta re-solve: an edit invalidated this cell, but
        // the stale entry still holds the pre-edit fixpoint. When it carries
        // both a may-be-1 solution and the recorded program shape, seed the
        // FDS re-solve from it — the changed region is re-solved, the rest
        // is carried (validated) — instead of restarting from ⊥.
        let seed = match (engine, stale) {
            (Engine::ScmpFds, Some(stale)) => stale.delta.and_then(|payload| {
                let cell = stale.cell?;
                match cell.solution {
                    CellSolution::MayOne { nodes } => Some(canvas_dataflow::DeltaSeed {
                        payload,
                        preds: cell.preds,
                        solution: nodes,
                    }),
                    _ => None,
                }
            }),
            _ => None,
        };
        if seed.is_some() {
            run.delta_seeded += 1;
        }
        let shared = prepared.shared(method, entry);
        let (report, cell) = self.certifier.certify_method_shared_certified_seeded(
            program,
            method,
            engine,
            entry,
            shared,
            seed.as_ref(),
        )?;
        // inconclusive verdicts are budget/wall-clock-dependent: never cached
        if let Some(mut cached) = CachedReport::from_certified(&report, cell.as_ref()) {
            // capture the program shape next to the solution, so the *next*
            // edit of this method can delta-seed from this run
            if engine == Engine::ScmpFds {
                cached.delta = shared.cached_boolprog().map(canvas_dataflow::DeltaPayload::of);
            }
            self.cache.store(key, cached);
        }
        Ok((report, cell))
    }

    /// Cached equivalent of [`Certifier::certify_with_certificate`]: the
    /// whole-program verdict plus a replayable [`Certificate`], with every
    /// solution-bearing cell answered from the store when its key matches.
    /// The certificate is bound to `source` by digest, so `source` must be
    /// the exact text `program` was parsed from.
    ///
    /// # Errors
    ///
    /// As [`Certifier::certify`].
    pub fn certify_program_certified(
        &self,
        source: &str,
        program: &Program,
        engine: Engine,
    ) -> Result<(Report, Certificate, RunCacheStats), CertifyError> {
        let mut run = RunCacheStats::default();
        let mut cells = Vec::new();
        let report = if let Some(reason) = engine.certificate_unsupported() {
            let (report, stats) = self.certify_program_cached_with_stats(program, engine)?;
            run = stats;
            cells.push(CertCell {
                method: "<whole-program>".to_string(),
                entry: EntryAssumption::Clean,
                preds: 0,
                bp_digest: 0,
                solution: CellSolution::Unavailable { reason: reason.to_string() },
            });
            report
        } else {
            let fps = ProgramFingerprints::new(program);
            let config_fp = fingerprint_config(&self.certifier, engine);
            let main = program.main_method().ok_or(CertifyError::NoMain)?;
            let prepared = PreparedProgram::new(program);
            // mirror `Certifier::certify_with_certificate`: a cell without a
            // solution (inconclusive run) is recorded as unavailable
            let mut push =
                |report: &Report, cell: Option<CertCell>, m: &MethodIr, entry: EntryAssumption| {
                    cells.push(cell.unwrap_or_else(|| CertCell {
                        method: m.qualified_name(),
                        entry,
                        preds: 0,
                        bp_digest: 0,
                        solution: CellSolution::Unavailable {
                            reason: format!(
                                "inconclusive run ({}): no post-fixpoint reached",
                                report.verdict.reason().unwrap_or("budget exhausted")
                            ),
                        },
                    }));
                };
            let (mut report, cell) = self.certify_cell_certified(
                program,
                &prepared,
                &fps,
                main,
                engine,
                EntryAssumption::Clean,
                config_fp,
                &mut run,
                true,
            )?;
            push(&report, cell, main, EntryAssumption::Clean);
            for m in program.methods() {
                if m.id == main.id {
                    continue;
                }
                let (r, cell) = self.certify_cell_certified(
                    program,
                    &prepared,
                    &fps,
                    m,
                    engine,
                    EntryAssumption::Unknown,
                    config_fp,
                    &mut run,
                    true,
                )?;
                push(&r, cell, m, EntryAssumption::Unknown);
                report.merge(r);
            }
            report.normalize();
            report
        };
        let certificate = Certificate {
            engine: engine.to_string(),
            spec: self.certifier.spec().name().to_string(),
            derived: derived_digest(self.certifier.derived()),
            source: digest_str(source),
            cells,
            violations: report
                .violations
                .iter()
                .map(|v| CertViolation {
                    method: v.method.clone(),
                    line: v.line,
                    col: v.col,
                    what: v.what.clone(),
                })
                .collect(),
        };
        Ok((report, certificate, run))
    }
}

/// A duration-independent digest of a report: everything the verdict,
/// violations (including witnesses) and deterministic stats say, excluding
/// wall-clock time and the work counter. Two certifications agree
/// semantically iff their digests are equal — the property the warm path
/// is tested against. Work units are excluded deliberately: a delta-seeded
/// re-solve reaches the same fixpoint, the same verdict, and the same
/// violations as a cold solve with strictly less work, and that saving
/// must not read as a semantic divergence.
pub fn report_digest(report: &Report) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_str(&report.engine.to_string());
    h.write_str(&format!("{:?}", report.verdict));
    h.write_usize(report.stats.predicates);
    h.write_usize(report.stats.max_states);
    h.write_bool(report.stats.exhausted);
    h.write_usize(report.violations.len());
    for v in &report.violations {
        h.write_str(&v.method);
        h.write_u32(v.line);
        h.write_u32(v.col);
        h.write_str(&v.what);
        match &v.witness {
            None => h.write_u8(0),
            Some(Witness::Unavailable(reason)) => {
                h.write_u8(1);
                h.write_str(reason);
            }
            Some(Witness::Trace(steps)) => {
                h.write_u8(2);
                h.write_usize(steps.len());
                for s in steps {
                    h.write_u32(s.line);
                    h.write_u32(s.col);
                    h.write_str(&s.what);
                    h.write_str(&s.fact);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        i1.next();
        v.add("x");
        if (true) { i1.next(); }
        i2.next();
    }
}
"#;

    const HELPERS: &str = r#"
class Main {
    static void poke(Set s) { s.add("x"); }
    static void scan(Set s) {
        Iterator i = s.iterator();
        i.next();
    }
    static void main() {
        Set v = new Set();
        Main.scan(v);
        Main.poke(v);
    }
}
"#;

    fn incr() -> IncrementalCertifier {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
        IncrementalCertifier::new(c, CertCache::in_memory())
    }

    fn parse(inc: &IncrementalCertifier, src: &str) -> Program {
        Program::parse(src, inc.certifier().spec()).expect("parses")
    }

    #[test]
    fn warm_run_is_all_hits_and_semantically_identical() {
        let inc = incr();
        let program = parse(&inc, FIG3);
        for engine in Engine::all() {
            let (cold, cs) = inc.certify_program_cached_with_stats(&program, engine).expect("cold");
            let (warm, ws) = inc.certify_program_cached_with_stats(&program, engine).expect("warm");
            assert_eq!(cs.hits, 0, "{engine}: first run must be cold");
            assert_eq!(ws.misses, 0, "{engine}: second run must be fully warm");
            assert_eq!(ws.hits, cs.misses, "{engine}");
            assert_eq!(report_digest(&cold), report_digest(&warm), "{engine}");
        }
    }

    #[test]
    fn cached_report_matches_the_uncached_path() {
        let inc = incr();
        let program = parse(&inc, HELPERS);
        for engine in Engine::all() {
            let reference = inc.certifier().certify_program(&program, engine).expect("reference");
            let cold = inc.certify_program_cached(&program, engine).expect("cold");
            let warm = inc.certify_program_cached(&program, engine).expect("warm");
            assert_eq!(report_digest(&reference), report_digest(&cold), "{engine}");
            assert_eq!(report_digest(&reference), report_digest(&warm), "{engine}");
        }
    }

    #[test]
    fn editing_one_method_reruns_only_its_cells() {
        let edited = HELPERS.replace(
            "static void poke(Set s) { s.add(\"x\"); }",
            "static void poke(Set s) { s.add(\"x\"); s.add(\"y\"); }",
        );
        assert_ne!(edited, HELPERS);
        let inc = incr();
        let before = parse(&inc, HELPERS);
        let after = parse(&inc, &edited);
        let engine = Engine::ScmpFds;
        inc.certify_program_cached(&before, engine).expect("cold");
        let (_, stats) = inc.certify_program_cached_with_stats(&after, engine).expect("edited");
        // exactly one cell (the edited method, out-of-context) re-runs: the
        // other methods' bodies, spans, and dependency sets are unchanged
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(inc.cache().stats().invalidations, 1);
    }

    #[test]
    fn interproc_uses_a_whole_program_cell() {
        let inc = incr();
        let program = parse(&inc, HELPERS);
        let engine = Engine::ScmpInterproc;
        let (_, cold) = inc.certify_program_cached_with_stats(&program, engine).expect("cold");
        assert_eq!((cold.hits, cold.misses), (0, 1));
        let (_, warm) = inc.certify_program_cached_with_stats(&program, engine).expect("warm");
        assert_eq!((warm.hits, warm.misses), (1, 0));
        // any body edit invalidates the whole-program cell
        let edited = parse(&inc, &HELPERS.replace("i.next();", "i.next(); i.next();"));
        let (_, e) = inc.certify_program_cached_with_stats(&edited, engine).expect("edited");
        assert_eq!((e.hits, e.misses), (0, 1));
    }

    #[test]
    fn per_request_budgets_do_not_alias_cache_keys() {
        let inc = incr();
        let program = parse(&inc, FIG3);
        inc.certify_program_cached(&program, Engine::ScmpFds).expect("cold");
        let budgeted = inc.with_budget(canvas_faults::Budget::unlimited().with_max_steps(1 << 20));
        let (_, stats) =
            budgeted.certify_program_cached_with_stats(&program, Engine::ScmpFds).expect("runs");
        assert_eq!(stats.hits, 0, "a different budget is a different certificate");
    }

    #[test]
    fn certificates_are_identical_warm_cold_and_uncached() {
        let inc = incr();
        let program = parse(&inc, HELPERS);
        for engine in [Engine::ScmpFds, Engine::ScmpRelational] {
            let (cold_r, cold_c, cs) =
                inc.certify_program_certified(HELPERS, &program, engine).expect("cold");
            let (warm_r, warm_c, ws) =
                inc.certify_program_certified(HELPERS, &program, engine).expect("warm");
            assert_eq!(cs.hits, 0, "{engine}");
            assert_eq!(ws.misses, 0, "{engine}: warm certificate must be all hits");
            assert_eq!(cold_c, warm_c, "{engine}: warm certificate must be byte-identical");
            assert_eq!(report_digest(&cold_r), report_digest(&warm_r), "{engine}");
            let (_, reference) = inc
                .certifier()
                .certify_with_certificate(HELPERS, &program, engine)
                .expect("reference");
            assert_eq!(cold_c, reference, "{engine}: cached path must match the uncached one");
        }
    }

    #[test]
    fn plain_runs_warm_the_certificate_path() {
        let inc = incr();
        let program = parse(&inc, HELPERS);
        inc.certify_program_cached(&program, Engine::ScmpFds).expect("plain cold");
        let (_, cert, stats) = inc
            .certify_program_certified(HELPERS, &program, Engine::ScmpFds)
            .expect("certificate run");
        assert_eq!(stats.misses, 0, "plain runs store solutions too: {stats:?}");
        assert!(cert.checkable());
    }

    #[test]
    fn unsupported_engines_emit_an_unavailable_whole_program_cell() {
        let inc = incr();
        let program = parse(&inc, FIG3);
        let (_, cert, _) =
            inc.certify_program_certified(FIG3, &program, Engine::TvlaRelational).expect("runs");
        assert!(!cert.checkable());
        assert_eq!(cert.cells.len(), 1);
        assert_eq!(cert.cells[0].method, "<whole-program>");
    }

    #[test]
    fn witnesses_survive_the_cache_round_trip() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp())
            .expect("cmp derives")
            .with_explain(true);
        let inc = IncrementalCertifier::new(c, CertCache::in_memory());
        let program = parse(&inc, FIG3);
        let (cold, _) = inc.certify_source_cached(FIG3, Engine::ScmpFds).expect("cold");
        let (warm, stats) =
            inc.certify_program_cached_with_stats(&program, Engine::ScmpFds).expect("warm");
        assert_eq!(stats.misses, 0);
        assert!(cold.violations.iter().any(|v| matches!(v.witness, Some(Witness::Trace(_)))));
        assert_eq!(report_digest(&cold), report_digest(&warm));
    }
}
