//! The `canvas serve` protocol: a long-lived certification daemon.
//!
//! Requests arrive as newline-delimited JSON objects on the input stream;
//! each gets exactly one JSON response line on the output stream, **in
//! request order** (responses are sequenced even though requests are
//! dispatched to a worker pool and certified concurrently against one
//! shared warm certificate cache).
//!
//! ```text
//! {"id":1,"cmd":"certify","file":"client.mj","engine":"scmp-fds"}
//! {"id":2,"cmd":"certify","source":"class Main { ... }","spec":"cmp"}
//! {"id":3,"cmd":"stats"}
//! {"id":4,"cmd":"shutdown"}
//! ```
//!
//! A `certify` request runs a whole-program certification (`main` plus
//! every method out of context) and reports its verdict, its violations,
//! and its own cache traffic (`{"cache":{"hits":..,"misses":..}}`) — the
//! traffic the request itself observed. Verdicts are always deterministic;
//! with several workers, *identical* concurrent requests race for who
//! computes a cell first, so their hit/miss attribution can swap (run
//! `--threads 1` when exact per-request traffic matters, as the CI
//! serve-smoke job does). Per-request
//! budgets (`"budget_steps"`, `"budget_ms"`) run the request under a
//! tighter resource governor; the budget is part of the cache key, so
//! budgeted and unbudgeted requests never alias. `"certificate": true`
//! asks for a proof-carrying certificate in-band: the response gains a
//! `"certificate"` field holding the serialized `canvas-cert/1` text, which
//! the client can revalidate offline with `canvas check` (solution-bearing
//! cells are answered from the warm store; cells cached before the store
//! held solutions re-run). `stats` reports the
//! store-wide counters; `shutdown` persists the store and ends the loop.
//! Malformed lines produce an `{"ok":false,...}` response and the daemon
//! keeps serving.
//!
//! The daemon is also a live observability surface ([`crate::obs`]): each
//! certify request runs under its own telemetry [`Scope`], so the response
//! carries an in-band `"stats"` object with the request's wall time and
//! per-phase latency breakdown, and its cache object reports
//! `{"hits","misses","delta_seeded"}`. A `metrics` request answers the
//! Prometheus text exposition (per-verb request counts and latency
//! quantiles, worker utilization, queue depth, cache hit-rate/occupancy)
//! in the `"metrics"` field; a `health` request answers a cheap liveness
//! probe. Serve-loop warnings go to the structured event log
//! ([`canvas_telemetry::events`], surfaced by `--log-json`) instead of raw
//! stderr.
//!
//! # Overload behavior
//!
//! The daemon degrades, never queues unboundedly. Certify requests pass
//! explicit *admission control* on their connection's reader thread: the
//! worker queue is a bounded channel, and each request draws one token
//! from its tenant's token bucket (the `"tenant"` request field; bucket
//! size `tenant_burst`, refill `tenant_rate` tokens/second — zero burst
//! disables tenant policing). A full queue or an empty bucket *sheds* the
//! request in-band as `{"verdict":"inconclusive","reason":"overloaded:
//! ...","shed":true}` — the paper's honest third verdict, not an error
//! and never a dropped connection. Admitted requests carry an absolute
//! deadline anchored at admission (`budget_ms`, capped by the server's
//! `default_deadline_ms`); a worker that picks up an already-expired
//! request sheds it as `Inconclusive{deadline}` without running, and a
//! live deadline propagates into the solver's armed [`Meter`] so a
//! late-admitted request still terminates on time. Control verbs
//! (`stats`/`metrics`/`health`/`shutdown`) bypass admission — probes must
//! answer precisely when the daemon is saturated.
//!
//! Connections are isolated: a torn or stalled client write poisons only
//! its own connection (responses for it are discarded; everyone else is
//! unaffected), a panicking request handler answers that request with
//! `error[certification/engine-panic]` and the worker survives, and torn
//! input (EOF mid-record, or a line over `max_line_bytes`) yields one
//! in-band `"error"` response followed by a clean close — never a hang.
//! `shutdown` (or SIGTERM in `--listen` mode, see [`crate::net`]) starts a
//! graceful drain: stop reading, finish or shed everything in flight,
//! persist the store, flush the event log, and emit a `drain complete`
//! record.
//!
//! [`Meter`]: canvas_faults::Meter

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use canvas_core::{CanvasError, Certifier, Engine, ErrorKind, Report, Stage, Verdict};
use canvas_easl::Spec;
use canvas_faults::{Budget, Fault};
use canvas_telemetry::events::{self, FieldValue};
use canvas_telemetry::{phase, Scope, ScopeSnapshot};

use crate::json::{obj, Json};
use crate::obs::ServeMetrics;
use crate::store::CertCache;
use crate::{IncrementalCertifier, RunCacheStats};

/// Certify requests shed at admission (queue full or tenant budget
/// exhausted). Deterministic for a scripted workload, so baseline-gated.
static SERVE_SHED: canvas_telemetry::Counter = canvas_telemetry::Counter::new("serve.shed_total");
/// Admitted certify requests shed at pickup because their deadline had
/// already passed.
static SERVE_DEADLINE: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("serve.deadline_total");

/// Configuration of one serve loop.
#[derive(Clone)]
pub struct ServeConfig {
    /// Concurrent certification workers (≥ 1).
    pub workers: usize,
    /// Directory of the persistent certificate store; `None` = in-memory.
    pub cache_dir: Option<PathBuf>,
    /// Hot-tier byte budget of the certificate cache (`None` = unbounded).
    pub cache_bytes: Option<u64>,
    /// Bounded worker-queue capacity; a certify request arriving while the
    /// queue is full is shed, not queued.
    pub queue_cap: usize,
    /// Token-bucket size per tenant (0 disables tenant admission control).
    pub tenant_burst: u64,
    /// Token-bucket refill rate per tenant, tokens per second.
    pub tenant_rate: u64,
    /// Server-side deadline applied to every certify request (`None` =
    /// only per-request `budget_ms` deadlines). A request's effective
    /// deadline is the tighter of the two, anchored at admission.
    pub default_deadline_ms: Option<u64>,
    /// Slow-client write timeout for `--listen` connections, milliseconds.
    pub write_timeout_ms: u64,
    /// Longest accepted request line; longer lines answer an in-band error
    /// and close the connection.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            cache_dir: None,
            cache_bytes: None,
            queue_cap: 64,
            tenant_burst: 0,
            tenant_rate: 0,
            default_deadline_ms: None,
            write_timeout_ms: 5_000,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Loads a spec by builtin name (`cmp`/`grp`/`imp`/`aop`) or file path.
///
/// # Errors
///
/// A `spec-load` error when the file cannot be read or parsed.
pub fn load_spec(name: &str) -> Result<Spec, CanvasError> {
    match name {
        "cmp" => Ok(canvas_easl::builtin::cmp()),
        "grp" => Ok(canvas_easl::builtin::grp()),
        "imp" => Ok(canvas_easl::builtin::imp()),
        "aop" => Ok(canvas_easl::builtin::aop()),
        path => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| CanvasError::io(Stage::SpecLoad, path, &e))?;
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("spec")
                .to_string();
            Spec::parse(stem, &src).map_err(|e| CanvasError::spec(&e))
        }
    }
}

/// One parsed request.
struct Request {
    id: Json,
    cmd: Cmd,
}

enum Cmd {
    Certify {
        source: Source,
        spec: String,
        engine: Engine,
        budget_steps: Option<u64>,
        budget_ms: Option<u64>,
        certificate: bool,
        /// Admission-control identity (`"tenant"` field; absent = the
        /// shared `"default"` bucket).
        tenant: String,
    },
    Stats,
    Metrics,
    Health,
    Shutdown,
}

impl Cmd {
    /// The verb name used for per-verb metrics attribution.
    fn verb(&self) -> &'static str {
        match self {
            Cmd::Certify { .. } => "certify",
            Cmd::Stats => "stats",
            Cmd::Metrics => "metrics",
            Cmd::Health => "health",
            Cmd::Shutdown => "shutdown",
        }
    }
}

enum Source {
    File(String),
    Inline(String),
}

fn parse_request(line: &str) -> Result<Request, CanvasError> {
    let bad = |m: String| CanvasError::new(Stage::Cli, canvas_core::ErrorKind::Parse, m);
    let json = Json::parse(line).map_err(|e| bad(format!("bad request JSON: {e}")))?;
    let id = json.get("id").cloned().unwrap_or(Json::Null);
    let str_field = |key: &str| match json.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let int_field = |key: &str| match json.get(key) {
        Some(Json::Int(n)) => Some(*n),
        _ => None,
    };
    let cmd = match str_field("cmd").as_deref() {
        Some("stats") => Cmd::Stats,
        Some("metrics") => Cmd::Metrics,
        Some("health") => Cmd::Health,
        Some("shutdown") => Cmd::Shutdown,
        Some("certify") => {
            let source = match (str_field("file"), str_field("source")) {
                (Some(path), None) => Source::File(path),
                (None, Some(src)) => Source::Inline(src),
                (Some(_), Some(_)) => {
                    return Err(bad("certify takes \"file\" or \"source\", not both".to_string()))
                }
                (None, None) => {
                    return Err(bad("certify needs a \"file\" or \"source\" field".to_string()))
                }
            };
            let engine_name = str_field("engine").unwrap_or_else(|| "scmp-fds".to_string());
            let engine = Engine::by_name(&engine_name)
                .ok_or_else(|| bad(format!("unknown engine {engine_name:?}")))?;
            Cmd::Certify {
                source,
                spec: str_field("spec").unwrap_or_else(|| "cmp".to_string()),
                engine,
                budget_steps: int_field("budget_steps"),
                budget_ms: int_field("budget_ms"),
                certificate: matches!(json.get("certificate"), Some(Json::Bool(true))),
                tenant: str_field("tenant").unwrap_or_else(|| "default".to_string()),
            }
        }
        Some(other) => return Err(bad(format!("unknown cmd {other:?}"))),
        None => return Err(bad("request has no \"cmd\" field".to_string())),
    };
    Ok(Request { id, cmd })
}

/// Shared serve-loop state: the warm store plus one incremental certifier
/// per spec, built on demand.
struct ServeState {
    cache: Arc<CertCache>,
    certifiers: Mutex<HashMap<String, Arc<IncrementalCertifier>>>,
    metrics: ServeMetrics,
}

impl ServeState {
    fn certifier_for(&self, spec_name: &str) -> Result<Arc<IncrementalCertifier>, CanvasError> {
        let mut map = self.certifiers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(inc) = map.get(spec_name) {
            return Ok(Arc::clone(inc));
        }
        let spec = load_spec(spec_name)?;
        let certifier = Certifier::from_spec(spec)?;
        let inc = Arc::new(IncrementalCertifier::shared(certifier, Arc::clone(&self.cache)));
        map.insert(spec_name.to_string(), Arc::clone(&inc));
        Ok(inc)
    }

    fn handle(&self, request: &Request, deadline: Option<Instant>) -> Json {
        match &request.cmd {
            Cmd::Stats => {
                let stats = self.cache.stats();
                ok_response(
                    &request.id,
                    vec![(
                        "cache",
                        obj(vec![
                            ("entries", Json::Int(self.cache.len() as u64)),
                            ("memory_entries", Json::Int(self.cache.memory_entries() as u64)),
                            ("memory_bytes", Json::Int(self.cache.memory_bytes())),
                            (
                                "budget_bytes",
                                match self.cache.budget_bytes() {
                                    Some(b) => Json::Int(b),
                                    None => Json::Null,
                                },
                            ),
                            ("hits", Json::Int(stats.hits)),
                            ("misses", Json::Int(stats.misses)),
                            ("stores", Json::Int(stats.stores)),
                            ("invalidations", Json::Int(stats.invalidations)),
                            ("evictions", Json::Int(stats.evictions)),
                            ("spill_hits", Json::Int(stats.spill_hits)),
                            ("loaded", Json::Int(stats.loaded)),
                            ("recovered", Json::Bool(stats.recovered_from_corruption)),
                        ]),
                    )],
                )
            }
            Cmd::Metrics => ok_response(
                &request.id,
                vec![("metrics", Json::Str(self.metrics.prometheus(&self.cache)))],
            ),
            Cmd::Health => ok_response(
                &request.id,
                vec![
                    ("status", Json::Str("ok".to_string())),
                    ("uptime_ms", Json::Int(self.metrics.uptime_ms())),
                    ("workers", Json::Int(self.metrics.workers())),
                    ("busy", Json::Int(self.metrics.busy())),
                    ("queue_depth", Json::Int(self.metrics.queue_depth())),
                    ("cache_entries", Json::Int(self.cache.len() as u64)),
                ],
            ),
            Cmd::Shutdown => ok_response(&request.id, vec![("shutdown", Json::Bool(true))]),
            Cmd::Certify { source, spec, engine, budget_steps, certificate, .. } => {
                // the request's own scope: counters/timers recorded while it
                // runs (including the phase.* breakdown) attribute here
                let scope = Scope::new(format!("certify#{}", request.id.render_compact()));
                let started = Instant::now();
                let result = {
                    let _in_scope = scope.enter();
                    self.certify(source, spec, *engine, *budget_steps, deadline, *certificate)
                };
                let total_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                match result {
                    Ok((report, cert, stats)) => {
                        self.metrics.add_delta_seeded(stats.delta_seeded);
                        if matches!(report.verdict, Verdict::Inconclusive { .. }) {
                            self.metrics.note_inconclusive();
                        }
                        certify_response(
                            &request.id,
                            &report,
                            cert.as_deref(),
                            stats,
                            &scope.snapshot(),
                            total_ns,
                        )
                    }
                    Err(e) => error_response(&request.id, &e),
                }
            }
        }
    }

    fn certify(
        &self,
        source: &Source,
        spec: &str,
        engine: Engine,
        budget_steps: Option<u64>,
        deadline: Option<Instant>,
        certificate: bool,
    ) -> Result<(Report, Option<String>, RunCacheStats), CanvasError> {
        let text = match source {
            Source::Inline(src) => src.clone(),
            Source::File(path) => std::fs::read_to_string(path)
                .map_err(|e| CanvasError::io(Stage::ClientFrontend, path, &e))?,
        };
        let base = self.certifier_for(spec)?;
        // the deadline is an absolute instant anchored at *admission*, so
        // time spent waiting in the queue counts against the request — a
        // late-admitted request terminates on time instead of overrunning
        let budgeted;
        let inc: &IncrementalCertifier = if budget_steps.is_some() || deadline.is_some() {
            let mut budget = Budget::unlimited();
            if let Some(n) = budget_steps {
                budget = budget.with_max_steps(n);
            }
            if let Some(d) = deadline {
                budget = budget.with_deadline_at(d);
            }
            budgeted = base.with_budget(budget);
            &budgeted
        } else {
            &base
        };
        let program = {
            let _parse = phase::PARSE.span();
            canvas_minijava::Program::parse(&text, inc.certifier().spec())
                .map_err(|e| CanvasError::client(&e))?
        };
        let result = if certificate {
            let (report, cert, stats) = inc
                .certify_program_certified(&text, &program, engine)
                .map_err(CanvasError::from)?;
            (report, Some(cert.to_text()), stats)
        } else {
            let (report, stats) = inc
                .certify_program_cached_with_stats(&program, engine)
                .map_err(CanvasError::from)?;
            (report, None, stats)
        };
        if let Err(e) = self.cache.persist() {
            events::warn("incr.serve", e.to_string());
        }
        Ok(result)
    }
}

fn ok_response(id: &Json, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("id", id.clone()), ("ok", Json::Bool(true))];
    pairs.extend(fields);
    obj(pairs)
}

fn error_response(id: &Json, error: &CanvasError) -> Json {
    obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(error.to_string())),
    ])
}

fn certify_response(
    id: &Json,
    report: &Report,
    certificate: Option<&str>,
    stats: RunCacheStats,
    scope: &ScopeSnapshot,
    total_ns: u64,
) -> Json {
    let (verdict, reason) = match &report.verdict {
        Verdict::Inconclusive { reason } => ("inconclusive", Some(reason.clone())),
        Verdict::Complete if report.certified() => ("certified", None),
        Verdict::Complete => ("violations", None),
    };
    let mut fields = vec![
        ("engine", Json::Str(report.engine.to_string())),
        ("verdict", Json::Str(verdict.to_string())),
    ];
    if let Some(reason) = reason {
        fields.push(("reason", Json::Str(reason)));
    }
    fields.push((
        "violations",
        Json::Arr(
            report
                .violations
                .iter()
                .map(|v| {
                    obj(vec![
                        ("method", Json::Str(v.method.clone())),
                        ("line", Json::Int(u64::from(v.line))),
                        ("col", Json::Int(u64::from(v.col))),
                        ("what", Json::Str(v.what.clone())),
                    ])
                })
                .collect(),
        ),
    ));
    if let Some(cert) = certificate {
        fields.push(("certificate", Json::Str(cert.to_string())));
    }
    fields.push((
        "cache",
        obj(vec![
            ("hits", Json::Int(stats.hits)),
            ("misses", Json::Int(stats.misses)),
            ("delta_seeded", Json::Int(stats.delta_seeded)),
        ]),
    ));
    // the request's own latency breakdown, from its scope's phase timers
    // (a fully warm request reports 0 for the phases it skipped)
    fields.push((
        "stats",
        obj(vec![
            ("total_ns", Json::Int(total_ns)),
            (
                "phases",
                obj(vec![
                    ("parse_ns", Json::Int(scope.sample_sum("phase.parse"))),
                    ("lower_ns", Json::Int(scope.sample_sum("phase.lower"))),
                    ("derive_ns", Json::Int(scope.sample_sum("phase.derive"))),
                    ("solve_ns", Json::Int(scope.sample_sum("phase.solve"))),
                    ("check_replay_ns", Json::Int(scope.sample_sum("phase.check_replay"))),
                ]),
            ),
        ]),
    ));
    ok_response(id, fields)
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// The fault-injection writer wrappers: `conn-drop` tears the connection
/// mid-way through its first response, `slow-client` models a client that
/// stopped reading (the write "times out"). Both leave the writer
/// permanently broken, exactly like the real failures they model.
enum WriterFault {
    ConnDrop,
    SlowClient,
}

struct FaultyWriter<W: Write> {
    inner: W,
    fault: WriterFault,
    fired: bool,
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.fired {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected fault: connection already torn",
            ));
        }
        self.fired = true;
        match self.fault {
            WriterFault::ConnDrop => {
                // half the response escapes, then the peer vanishes
                let _ = self.inner.write(&buf[..buf.len() / 2]);
                let _ = self.inner.flush();
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "injected fault: conn-drop",
                ))
            }
            WriterFault::SlowClient => {
                // the stalled write "times out" (kept short so tests stay
                // fast; a real stall is bounded by set_write_timeout)
                std::thread::sleep(Duration::from_millis(50));
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected fault: slow-client",
                ))
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.fired {
            return Ok(());
        }
        self.inner.flush()
    }
}

/// Boxes a connection writer, applying any active network-path fault.
pub(crate) fn boxed_writer<'a>(writer: impl Write + Send + 'a) -> Box<dyn Write + Send + 'a> {
    if canvas_faults::active(Fault::ConnDrop) {
        Box::new(FaultyWriter { inner: writer, fault: WriterFault::ConnDrop, fired: false })
    } else if canvas_faults::active(Fault::SlowClient) {
        Box::new(FaultyWriter { inner: writer, fault: WriterFault::SlowClient, fired: false })
    } else {
        Box::new(writer)
    }
}

struct ConnOut<'a> {
    next: usize,
    pending: BTreeMap<usize, String>,
    writer: Box<dyn Write + Send + 'a>,
    dead: bool,
}

/// One client connection: an in-order response sequencer over its writer.
/// Workers finish in any order; lines go out in request order. A failed or
/// timed-out write *poisons* the connection — its later responses are
/// computed but discarded — and touches nothing else.
pub(crate) struct Conn<'a> {
    id: u64,
    out: Mutex<ConnOut<'a>>,
}

impl<'a> Conn<'a> {
    pub(crate) fn new(id: u64, writer: Box<dyn Write + Send + 'a>) -> Conn<'a> {
        Conn {
            id,
            out: Mutex::new(ConnOut { next: 0, pending: BTreeMap::new(), writer, dead: false }),
        }
    }

    fn submit(&self, seq: usize, line: String, metrics: &ServeMetrics) {
        let mut out = self.out.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        out.pending.insert(seq, line);
        loop {
            let next = out.next;
            let Some(line) = out.pending.remove(&next) else { break };
            out.next += 1;
            if out.dead {
                continue;
            }
            let wrote = writeln!(out.writer, "{line}").and_then(|()| out.writer.flush());
            if let Err(e) = wrote {
                out.dead = true;
                metrics.note_conn_poisoned();
                events::warn(
                    "incr.serve",
                    format!(
                        "connection {} torn mid-response ({e}); poisoning only this connection",
                        self.id
                    ),
                );
            }
        }
    }
}

/// One admitted unit of work headed for the worker pool.
pub(crate) struct Job<'a> {
    seq: usize,
    conn: Arc<Conn<'a>>,
    parsed: Result<Request, CanvasError>,
    /// Absolute deadline anchored at admission (certify only).
    deadline: Option<Instant>,
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-tenant token buckets: `burst` tokens of capacity, `rate` tokens per
/// second of refill. `burst == 0` disables tenant admission entirely.
struct TenantBuckets {
    burst: u64,
    rate: u64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantBuckets {
    fn new(burst: u64, rate: u64) -> TenantBuckets {
        TenantBuckets { burst, rate, buckets: Mutex::new(HashMap::new()) }
    }

    /// Draws one token from `tenant`'s bucket; `false` = budget exhausted.
    fn try_take(&self, tenant: &str) -> bool {
        if self.burst == 0 {
            return true;
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket { tokens: self.burst as f64, last: now });
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.rate as f64).min(self.burst as f64);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// Everything one serve daemon's readers and workers share, regardless of
/// transport (stdio or TCP).
pub(crate) struct Daemon {
    state: ServeState,
    tenants: TenantBuckets,
    pub(crate) tuning: Tuning,
    draining: AtomicBool,
    conn_ids: AtomicU64,
}

/// The admission/IO knobs, copied out of [`ServeConfig`].
#[derive(Clone, Copy)]
pub(crate) struct Tuning {
    pub(crate) queue_cap: usize,
    pub(crate) workers: usize,
    pub(crate) default_deadline_ms: Option<u64>,
    pub(crate) write_timeout_ms: u64,
    pub(crate) max_line_bytes: usize,
}

impl Daemon {
    pub(crate) fn new(config: &ServeConfig) -> Daemon {
        // The daemon *is* an observability surface: request scopes and
        // phase timers only attribute while the metrics switch is on.
        canvas_telemetry::set_enabled(true);
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => CertCache::open_budgeted(dir, config.cache_bytes),
            None => CertCache::in_memory_budgeted(config.cache_bytes),
        });
        let workers = config.workers.max(1);
        let queue_cap = config.queue_cap.max(1);
        Daemon {
            state: ServeState {
                cache,
                certifiers: Mutex::new(HashMap::new()),
                metrics: ServeMetrics::new(workers, queue_cap),
            },
            tenants: TenantBuckets::new(config.tenant_burst, config.tenant_rate),
            tuning: Tuning {
                queue_cap,
                workers,
                default_deadline_ms: config.default_deadline_ms,
                write_timeout_ms: config.write_timeout_ms,
                max_line_bytes: config.max_line_bytes.max(1),
            },
            draining: AtomicBool::new(false),
            conn_ids: AtomicU64::new(0),
        }
    }

    pub(crate) fn metrics(&self) -> &ServeMetrics {
        &self.state.metrics
    }

    pub(crate) fn next_conn_id(&self) -> u64 {
        self.conn_ids.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts the graceful drain: readers stop accepting, the accept loop
    /// (if any) stops, workers finish what's queued.
    pub(crate) fn begin_drain(&self, why: &str) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            events::info_with(
                "incr.serve",
                format!("drain started: {why}"),
                vec![("why", FieldValue::Str(why.to_string()))],
            );
        }
    }

    /// Persists the store and emits the `drain complete` record. Called
    /// once, after every reader and worker has exited.
    pub(crate) fn finish(&self) -> Result<(), CanvasError> {
        let result = self.state.cache.persist();
        let m = &self.state.metrics;
        events::info_with(
            "incr.serve",
            format!(
                "drain complete: {} request(s) answered, {} shed, {} poisoned connection(s)",
                m.requests_total(),
                m.shed_total() + m.deadline_shed_total(),
                m.conns_poisoned()
            ),
            vec![
                ("answered", FieldValue::U64(m.requests_total())),
                ("shed", FieldValue::U64(m.shed_total() + m.deadline_shed_total())),
                ("poisoned_connections", FieldValue::U64(m.conns_poisoned())),
            ],
        );
        result
    }
}

// ---------------------------------------------------------------------------
// Torn-input-safe line reader
// ---------------------------------------------------------------------------

enum ReadEvent {
    /// One complete newline-terminated line (CR stripped, lossily decoded —
    /// invalid UTF-8 becomes a parse error in-band, not a torn connection).
    Line(String),
    /// Clean end of input at a record boundary.
    Eof,
    /// EOF (or a hard read error) mid-record: `n` bytes of partial line.
    Torn(usize),
    /// The line exceeded `max_line_bytes`.
    Oversized,
    /// A read timeout tick (TCP keepalive poll); caller checks drain state.
    Idle,
}

/// Reads the next NDJSON record with strict framing: a final line without
/// its terminator is *torn input*, not a record. `partial` persists
/// partially-read bytes across `Idle` ticks.
fn read_line_limited(reader: &mut dyn BufRead, max: usize, partial: &mut Vec<u8>) -> ReadEvent {
    loop {
        let (consumed, complete) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return ReadEvent::Idle;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // a hard read error tears the connection like EOF does
                    return if partial.is_empty() {
                        ReadEvent::Eof
                    } else {
                        ReadEvent::Torn(partial.len())
                    };
                }
            };
            if available.is_empty() {
                return if partial.is_empty() {
                    ReadEvent::Eof
                } else {
                    ReadEvent::Torn(partial.len())
                };
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    partial.extend_from_slice(&available[..pos]);
                    (pos + 1, true)
                }
                None => {
                    partial.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if partial.len() > max {
            partial.clear();
            return ReadEvent::Oversized;
        }
        if complete {
            if partial.last() == Some(&b'\r') {
                partial.pop();
            }
            let line = String::from_utf8_lossy(partial).into_owned();
            partial.clear();
            return ReadEvent::Line(line);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader / worker loops
// ---------------------------------------------------------------------------

fn shed_response(id: &Json, cmd: &Cmd, reason: &str) -> Json {
    let engine = match cmd {
        Cmd::Certify { engine, .. } => engine.to_string(),
        _ => "-".to_string(),
    };
    obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("engine", Json::Str(engine)),
        ("verdict", Json::Str("inconclusive".to_string())),
        ("reason", Json::Str(reason.to_string())),
        ("shed", Json::Bool(true)),
        ("violations", Json::Arr(Vec::new())),
    ])
}

/// Sheds one certify request from the reader thread: counted, answered
/// in-band, never enqueued.
fn shed_at_admission(
    daemon: &Daemon,
    conn: &Arc<Conn<'_>>,
    seq: usize,
    request: &Request,
    reason: &str,
    accepted: Instant,
) {
    let metrics = daemon.metrics();
    SERVE_SHED.incr();
    metrics.note_shed();
    metrics.enqueued();
    metrics.begin("certify");
    let response = shed_response(&request.id, &request.cmd, reason);
    metrics.finish("certify", accepted.elapsed(), false);
    conn.submit(seq, response.render_compact(), metrics);
}

enum Flow {
    Continue,
    Stop,
}

/// Admits (or sheds) one parsed request from a connection reader.
fn admit<'env>(
    daemon: &Daemon,
    conn: &Arc<Conn<'env>>,
    tx: &mpsc::SyncSender<Job<'env>>,
    seq: usize,
    parsed: Result<Request, CanvasError>,
    accepted: Instant,
) -> Flow {
    let is_certify = matches!(&parsed, Ok(Request { cmd: Cmd::Certify { .. }, .. }));
    if !is_certify {
        // control verbs, shutdown, and parse errors: cheap bounded work
        // that must answer even when the daemon is saturated, so they use
        // a blocking send instead of admission control (the reader stalls,
        // the connection's own backpressure)
        let job = Job { seq, conn: Arc::clone(conn), parsed, deadline: None };
        if tx.send(job).is_err() {
            return Flow::Stop;
        }
        daemon.metrics().enqueued();
        return Flow::Continue;
    }
    let Ok(request) = parsed else { unreachable!("is_certify implies parsed ok") };
    let Cmd::Certify { budget_ms, tenant, .. } = &request.cmd else {
        unreachable!("is_certify implies a certify cmd")
    };
    // the effective deadline is the tighter of the request's own budget_ms
    // and the server default, anchored *now* (admission)
    let allowed_ms = match (*budget_ms, daemon.tuning.default_deadline_ms) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    };
    let deadline = allowed_ms.map(|ms| accepted + Duration::from_millis(ms));
    if !daemon.tenants.try_take(tenant) {
        shed_at_admission(
            daemon,
            conn,
            seq,
            &request,
            "overloaded: tenant budget exhausted",
            accepted,
        );
        return Flow::Continue;
    }
    let job = Job { seq, conn: Arc::clone(conn), parsed: Ok(request), deadline };
    let sent = if canvas_faults::active(Fault::QueueFull) {
        Err(mpsc::TrySendError::Full(job))
    } else {
        tx.try_send(job)
    };
    match sent {
        Ok(()) => {
            daemon.metrics().enqueued();
            Flow::Continue
        }
        Err(mpsc::TrySendError::Full(job)) => {
            let Ok(request) = &job.parsed else { unreachable!("full jobs carry the request") };
            shed_at_admission(daemon, conn, seq, request, "overloaded: queue full", accepted);
            Flow::Continue
        }
        Err(mpsc::TrySendError::Disconnected(_)) => Flow::Stop,
    }
}

/// Reads one connection until EOF, torn input, or drain. Every request
/// gets exactly one in-band response line (through the connection's
/// sequencer); torn or oversized input answers an `"error"` response and
/// closes the connection cleanly.
pub(crate) fn run_connection<'env>(
    daemon: &Daemon,
    reader: &mut dyn BufRead,
    conn: &Arc<Conn<'env>>,
    tx: &mpsc::SyncSender<Job<'env>>,
) {
    let metrics = daemon.metrics();
    let mut seq = 0usize;
    let mut partial: Vec<u8> = Vec::new();
    loop {
        if daemon.draining() {
            break;
        }
        match read_line_limited(reader, daemon.tuning.max_line_bytes, &mut partial) {
            ReadEvent::Idle => continue,
            ReadEvent::Eof => break,
            ReadEvent::Torn(n) => {
                let started = Instant::now();
                metrics.enqueued();
                metrics.begin("invalid");
                let e = CanvasError::new(
                    Stage::Cli,
                    ErrorKind::Parse,
                    format!("torn input: stream ended mid-record after {n} byte(s)"),
                );
                metrics.finish("invalid", started.elapsed(), true);
                conn.submit(seq, error_response(&Json::Null, &e).render_compact(), metrics);
                break;
            }
            ReadEvent::Oversized => {
                let started = Instant::now();
                metrics.enqueued();
                metrics.begin("invalid");
                let e = CanvasError::new(
                    Stage::Cli,
                    ErrorKind::Parse,
                    format!(
                        "oversized request line (over {} bytes); closing connection",
                        daemon.tuning.max_line_bytes
                    ),
                );
                metrics.finish("invalid", started.elapsed(), true);
                conn.submit(seq, error_response(&Json::Null, &e).render_compact(), metrics);
                break;
            }
            ReadEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let accepted = Instant::now();
                let parsed = parse_request(&line);
                // flip the drain switch as soon as shutdown is *accepted*,
                // so every reader stops taking new work before the
                // response even goes out
                if matches!(&parsed, Ok(Request { cmd: Cmd::Shutdown, .. })) {
                    daemon.begin_drain("shutdown request");
                }
                match admit(daemon, conn, tx, seq, parsed, accepted) {
                    Flow::Continue => {}
                    Flow::Stop => break,
                }
                seq += 1;
            }
        }
    }
}

/// Handles one request with panic isolation: a panicking handler answers
/// *this* request with `error[certification/engine-panic]` and the worker
/// survives.
fn handle_isolated(daemon: &Daemon, request: &Request, deadline: Option<Instant>) -> Json {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        daemon.state.handle(request, deadline)
    }));
    match caught {
        Ok(response) => response,
        Err(_) => {
            daemon.metrics().note_request_poisoned();
            events::warn(
                "incr.serve",
                "request handler panicked; the panic is contained to this request".to_string(),
            );
            error_response(
                &request.id,
                &CanvasError::new(
                    Stage::Certification,
                    ErrorKind::EnginePanic,
                    "request handler panicked; the panic was contained to this request".to_string(),
                ),
            )
        }
    }
}

/// One worker: drains the bounded queue until every sender is gone.
pub(crate) fn worker_loop(daemon: &Daemon, rx: &Mutex<mpsc::Receiver<Job<'_>>>) {
    loop {
        let received = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();
        let Ok(job) = received else { break };
        let verb = match &job.parsed {
            Ok(request) => request.cmd.verb(),
            Err(_) => "invalid",
        };
        let metrics = daemon.metrics();
        metrics.begin(verb);
        let started = Instant::now();
        let response = match &job.parsed {
            Err(e) => error_response(&Json::Null, e),
            Ok(request) => {
                let expired = matches!(request.cmd, Cmd::Certify { .. })
                    && job.deadline.is_some_and(|d| Instant::now() >= d);
                if expired {
                    // admitted, but its whole allowance burned in the
                    // queue: shed instead of starting doomed work
                    SERVE_DEADLINE.incr();
                    metrics.note_deadline_shed();
                    shed_response(
                        &request.id,
                        &request.cmd,
                        "deadline: request expired while queued",
                    )
                } else {
                    handle_isolated(daemon, request, job.deadline)
                }
            }
        };
        let elapsed = started.elapsed();
        let is_error = matches!(response.get("ok"), Some(Json::Bool(false)));
        metrics.finish(verb, elapsed, is_error);
        if events::would_log(events::Level::Info) {
            events::info_with(
                "incr.serve",
                format!("{verb} request handled"),
                vec![
                    ("verb", FieldValue::Str(verb.to_string())),
                    ("conn", FieldValue::U64(job.conn.id)),
                    ("seq", FieldValue::U64(job.seq as u64)),
                    ("us", FieldValue::U64(elapsed.as_micros().min(u128::from(u64::MAX)) as u64)),
                    ("ok", FieldValue::U64(u64::from(!is_error))),
                ],
            );
        }
        job.conn.submit(job.seq, response.render_compact(), metrics);
    }
}

/// Runs the stdio serve loop until `shutdown` or end of input: one
/// connection over `input`/`output`, the same admission control, bounded
/// queue, and worker pool as the TCP front-end ([`crate::net`]). Persists
/// the store on the way out.
///
/// # Errors
///
/// A `cache`-stage error when the final persist fails; per-request errors
/// are answered in-band and never end the loop.
pub fn serve(
    input: impl BufRead,
    output: impl Write + Send,
    config: &ServeConfig,
) -> Result<(), CanvasError> {
    let daemon = Daemon::new(config);
    let mut input = input;
    let conn = Arc::new(Conn::new(daemon.next_conn_id(), boxed_writer(output)));
    daemon.metrics().conn_opened();
    let (tx, rx) = mpsc::sync_channel::<Job<'_>>(daemon.tuning.queue_cap);
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..daemon.tuning.workers {
            scope.spawn(|| worker_loop(&daemon, &rx));
        }
        run_connection(&daemon, &mut input, &conn, &tx);
        drop(tx);
    });
    // the stdio session counts as open until every queued response is out
    // (the reader sees EOF long before the workers finish), so the scrape
    // of a live session deterministically reports one open connection
    daemon.metrics().conn_closed();
    daemon.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "class Main { static void main() { Set v = new Set(); Iterator i = v.iterator(); v.add(\\\"x\\\"); i.next(); } }";

    fn run_script(script: &str, workers: usize) -> Vec<Json> {
        let mut out = Vec::new();
        serve(
            std::io::Cursor::new(script.to_string()),
            &mut out,
            &ServeConfig { workers, ..ServeConfig::default() },
        )
        .expect("serve runs");
        let text = String::from_utf8(out).expect("utf8");
        text.lines().map(|l| Json::parse(l).expect("response parses")).collect()
    }

    fn certify_line(id: u64) -> String {
        format!("{{\"id\":{id},\"cmd\":\"certify\",\"source\":\"{FIG3}\"}}")
    }

    #[test]
    fn certify_stats_shutdown_round_trip() {
        let script = format!(
            "{}\n{}\n{{\"id\":3,\"cmd\":\"stats\"}}\n{{\"id\":4,\"cmd\":\"shutdown\"}}\n",
            certify_line(1),
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.get("id"), Some(&Json::Int(i as u64 + 1)), "{r:?}");
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        }
        // cold then fully warm
        assert_eq!(responses[0].get("verdict"), Some(&Json::Str("violations".to_string())));
        let cold = responses[0].get("cache").expect("cache");
        let warm = responses[1].get("cache").expect("cache");
        assert_eq!(cold.get("hits"), Some(&Json::Int(0)));
        assert_eq!(warm.get("misses"), Some(&Json::Int(0)));
        assert_eq!(warm.get("hits"), cold.get("misses"));
        // no edits in this script: nothing delta-seeded
        assert_eq!(cold.get("delta_seeded"), Some(&Json::Int(0)));
        assert_eq!(warm.get("delta_seeded"), Some(&Json::Int(0)));
        // identical verdict payloads either way
        assert_eq!(responses[0].get("violations"), responses[1].get("violations"));
        let stats = responses[2].get("cache").expect("stats cache");
        assert_eq!(stats.get("hits"), warm.get("hits"));
        assert_eq!(responses[3].get("shutdown"), Some(&Json::Bool(true)));
    }

    #[test]
    fn responses_stay_in_request_order_under_concurrency() {
        let mut script = String::new();
        for id in 1..=6 {
            script.push_str(&certify_line(id));
            script.push('\n');
        }
        script.push_str("{\"id\":7,\"cmd\":\"shutdown\"}\n");
        let responses = run_script(&script, 4);
        assert_eq!(responses.len(), 7);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.get("id"), Some(&Json::Int(i as u64 + 1)), "{r:?}");
        }
    }

    #[test]
    fn certificate_requests_carry_the_certificate_in_band() {
        let script = format!(
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"certificate\":true}}\n\
             {}\n{{\"id\":3,\"cmd\":\"shutdown\"}}\n",
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        let Some(Json::Str(cert)) = responses[0].get("certificate") else {
            panic!("no certificate in {:?}", responses[0])
        };
        let parsed = canvas_abstraction::Certificate::parse(cert).expect("certificate parses");
        assert!(parsed.checkable(), "fds run must carry a replayable solution");
        // requests that did not ask for one don't get one
        assert!(responses[1].get("certificate").is_none(), "{:?}", responses[1]);
    }

    #[test]
    fn certify_responses_carry_in_band_phase_stats() {
        let script = format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1));
        let responses = run_script(&script, 1);
        let stats = responses[0].get("stats").expect("in-band stats");
        let Some(Json::Int(total)) = stats.get("total_ns") else {
            panic!("no total_ns in {stats:?}")
        };
        assert!(*total > 0);
        let phases = stats.get("phases").expect("phase breakdown");
        for key in ["parse_ns", "lower_ns", "derive_ns", "solve_ns", "check_replay_ns"] {
            assert!(matches!(phases.get(key), Some(Json::Int(_))), "missing {key}: {phases:?}");
        }
        // a cold certify must actually parse and solve
        assert_ne!(phases.get("parse_ns"), Some(&Json::Int(0)), "{phases:?}");
        assert_ne!(phases.get("solve_ns"), Some(&Json::Int(0)), "{phases:?}");
    }

    #[test]
    fn metrics_verb_answers_prometheus_exposition() {
        let script = format!(
            "{}\n{}\n{{\"id\":3,\"cmd\":\"metrics\"}}\n{{\"id\":4,\"cmd\":\"shutdown\"}}\n",
            certify_line(1),
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        let Some(Json::Str(text)) = responses[2].get("metrics") else {
            panic!("no metrics text in {:?}", responses[2])
        };
        // with one worker the two certifies complete before the scrape
        assert!(text.contains("canvas_serve_requests_total{verb=\"certify\"} 2\n"), "{text}");
        assert!(text.contains("canvas_serve_requests_total{verb=\"metrics\"} 1\n"), "{text}");
        assert!(
            text.contains(
                "canvas_serve_request_latency_seconds{verb=\"certify\",quantile=\"0.99\"}"
            ),
            "{text}"
        );
        assert!(text.contains("canvas_serve_cache_hit_ratio 0.5000\n"), "cold+warm: {text}");
        assert!(text.contains("canvas_serve_workers 1\n"), "{text}");
    }

    #[test]
    fn health_verb_reports_liveness() {
        let script = "{\"id\":1,\"cmd\":\"health\"}\n{\"id\":2,\"cmd\":\"shutdown\"}\n";
        let responses = run_script(script, 2);
        let r = &responses[0];
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("status"), Some(&Json::Str("ok".to_string())));
        assert_eq!(r.get("workers"), Some(&Json::Int(2)));
        assert!(matches!(r.get("uptime_ms"), Some(Json::Int(_))), "{r:?}");
        assert_eq!(r.get("cache_entries"), Some(&Json::Int(0)));
        // the probe itself is in flight while it answers
        let Some(Json::Int(busy)) = r.get("busy") else { panic!("{r:?}") };
        assert!(*busy >= 1, "{r:?}");
    }

    #[test]
    fn malformed_requests_do_not_kill_the_daemon() {
        let script =
            format!("this is not json\n{{\"id\":2,\"cmd\":\"frobnicate\"}}\n{}\n", certify_line(3));
        let responses = run_script(&script, 1);
        assert_eq!(responses.len(), 3);
        for r in &responses[..2] {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
            let Some(Json::Str(e)) = r.get("error") else { panic!("no error: {r:?}") };
            assert!(e.starts_with("error[cli/parse]"), "{e}");
        }
        assert_eq!(responses[2].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn unknown_specs_and_missing_files_answer_in_band() {
        let script = "{\"id\":1,\"cmd\":\"certify\",\"file\":\"/nonexistent/x.mj\"}\n\
                      {\"id\":2,\"cmd\":\"certify\",\"source\":\"class Main {}\",\"spec\":\"/nonexistent/s.easl\"}\n\
                      {\"id\":3,\"cmd\":\"shutdown\"}\n";
        let responses = run_script(script, 2);
        assert_eq!(responses.len(), 3);
        let Some(Json::Str(e1)) = responses[0].get("error") else { panic!() };
        assert!(e1.starts_with("error[client-frontend/io]"), "{e1}");
        let Some(Json::Str(e2)) = responses[1].get("error") else { panic!() };
        assert!(e2.starts_with("error[spec-load/io]"), "{e2}");
    }

    #[test]
    fn per_request_budget_is_honored_and_not_cached() {
        // an absurdly tight step budget forces an inconclusive verdict;
        // rerunning unbudgeted must not see a cached cell for it
        let script = format!(
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"budget_steps\":1}}\n{}\n{{\"id\":3,\"cmd\":\"shutdown\"}}\n",
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        assert_eq!(responses[0].get("verdict"), Some(&Json::Str("inconclusive".to_string())));
        let unbudgeted = responses[1].get("cache").expect("cache");
        assert_eq!(unbudgeted.get("hits"), Some(&Json::Int(0)), "budget keys must not alias");
        assert_eq!(responses[1].get("verdict"), Some(&Json::Str("violations".to_string())));
    }

    #[test]
    fn the_store_persists_across_serve_sessions() {
        let dir = std::env::temp_dir().join(format!("canvas-serve-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config =
            ServeConfig { workers: 1, cache_dir: Some(dir.clone()), ..ServeConfig::default() };
        let run = |script: &str| {
            let mut out = Vec::new();
            serve(std::io::Cursor::new(script.to_string()), &mut out, &config).expect("serves");
            let text = String::from_utf8(out).expect("utf8");
            text.lines().map(|l| Json::parse(l).expect("parses")).collect::<Vec<_>>()
        };
        let first = run(&format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1)));
        assert_eq!(first[0].get("cache").and_then(|c| c.get("hits")), Some(&Json::Int(0)));
        // a fresh daemon on the same directory starts warm
        let second = run(&format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1)));
        let cache = second[0].get("cache").expect("cache");
        assert_eq!(cache.get("misses"), Some(&Json::Int(0)), "{cache:?}");
        assert_eq!(second[0].get("violations"), first[0].get("violations"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn run_script_with(script: &str, config: &ServeConfig) -> Vec<Json> {
        let mut out = Vec::new();
        serve(std::io::Cursor::new(script.to_string()), &mut out, config).expect("serve runs");
        let text = String::from_utf8(out).expect("utf8");
        text.lines().map(|l| Json::parse(l).expect("response parses")).collect()
    }

    #[test]
    fn torn_final_line_answers_in_band_error_and_closes() {
        // no trailing newline on the second record: torn input, not a request
        let script = format!("{}\n{{\"id\":2,\"cmd\":\"cert", certify_line(1));
        let responses = run_script_with(&script, &ServeConfig::default());
        assert_eq!(responses.len(), 2, "{responses:?}");
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        let torn = &responses[1];
        assert_eq!(torn.get("ok"), Some(&Json::Bool(false)), "{torn:?}");
        let Some(Json::Str(e)) = torn.get("error") else { panic!("no error: {torn:?}") };
        assert!(e.contains("torn input"), "{e}");
    }

    #[test]
    fn oversized_line_answers_in_band_error_and_closes() {
        let huge = format!("{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{}\"}}\n", "x".repeat(256));
        let config = ServeConfig { max_line_bytes: 64, ..ServeConfig::default() };
        let responses = run_script_with(&huge, &config);
        assert_eq!(responses.len(), 1, "{responses:?}");
        let Some(Json::Str(e)) = responses[0].get("error") else { panic!("{responses:?}") };
        assert!(e.contains("oversized"), "{e}");
    }

    #[test]
    fn tenant_bucket_sheds_deterministically() {
        // burst 2, no refill: third certify from the same tenant sheds
        let mut script = String::new();
        for id in 1..=3 {
            script.push_str(&format!(
                "{{\"id\":{id},\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"tenant\":\"acme\"}}\n"
            ));
        }
        script.push_str("{\"id\":4,\"cmd\":\"shutdown\"}\n");
        let config = ServeConfig { tenant_burst: 2, tenant_rate: 0, ..ServeConfig::default() };
        let responses = run_script_with(&script, &config);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].get("shed"), None, "{:?}", responses[0]);
        assert_eq!(responses[1].get("shed"), None, "{:?}", responses[1]);
        let shed = &responses[2];
        assert_eq!(shed.get("ok"), Some(&Json::Bool(true)), "{shed:?}");
        assert_eq!(shed.get("verdict"), Some(&Json::Str("inconclusive".to_string())));
        assert_eq!(
            shed.get("reason"),
            Some(&Json::Str("overloaded: tenant budget exhausted".to_string()))
        );
        assert_eq!(shed.get("shed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn expired_deadline_sheds_at_pickup() {
        // budget_ms 0: the deadline is already due when a worker picks it up
        let script = format!(
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"budget_ms\":0}}\n\
             {{\"id\":2,\"cmd\":\"shutdown\"}}\n"
        );
        let responses = run_script_with(&script, &ServeConfig::default());
        let shed = &responses[0];
        assert_eq!(shed.get("verdict"), Some(&Json::Str("inconclusive".to_string())), "{shed:?}");
        assert_eq!(
            shed.get("reason"),
            Some(&Json::Str("deadline: request expired while queued".to_string()))
        );
        assert_eq!(shed.get("shed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn queue_full_fault_sheds_every_certify() {
        canvas_faults::force(Some(Fault::QueueFull));
        let script = format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1));
        let responses = run_script_with(&script, &ServeConfig::default());
        canvas_faults::unforce();
        assert_eq!(responses.len(), 2);
        let shed = &responses[0];
        assert_eq!(shed.get("ok"), Some(&Json::Bool(true)), "{shed:?}");
        assert_eq!(shed.get("reason"), Some(&Json::Str("overloaded: queue full".to_string())));
        // control verbs bypass admission: shutdown still answers
        assert_eq!(responses[1].get("shutdown"), Some(&Json::Bool(true)));
        // a fresh serve after unforce admits normally
        let after = run_script_with(&script, &ServeConfig::default());
        assert_eq!(after[0].get("shed"), None, "{:?}", after[0]);
    }

    #[test]
    fn conn_drop_fault_poisons_only_the_connection() {
        canvas_faults::force(Some(Fault::ConnDrop));
        let script = format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1));
        let mut out = Vec::new();
        let result = serve(std::io::Cursor::new(script), &mut out, &ServeConfig::default());
        canvas_faults::unforce();
        // the serve loop survives the torn connection and persists cleanly
        assert!(result.is_ok(), "{result:?}");
        let text = String::from_utf8_lossy(&out);
        assert!(!text.contains('\n'), "no complete line escapes a torn conn: {text}");
    }
}
