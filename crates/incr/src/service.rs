//! The `canvas serve` protocol: a long-lived certification daemon.
//!
//! Requests arrive as newline-delimited JSON objects on the input stream;
//! each gets exactly one JSON response line on the output stream, **in
//! request order** (responses are sequenced even though requests are
//! dispatched to a worker pool and certified concurrently against one
//! shared warm certificate cache).
//!
//! ```text
//! {"id":1,"cmd":"certify","file":"client.mj","engine":"scmp-fds"}
//! {"id":2,"cmd":"certify","source":"class Main { ... }","spec":"cmp"}
//! {"id":3,"cmd":"stats"}
//! {"id":4,"cmd":"shutdown"}
//! ```
//!
//! A `certify` request runs a whole-program certification (`main` plus
//! every method out of context) and reports its verdict, its violations,
//! and its own cache traffic (`{"cache":{"hits":..,"misses":..}}`) — the
//! traffic the request itself observed. Verdicts are always deterministic;
//! with several workers, *identical* concurrent requests race for who
//! computes a cell first, so their hit/miss attribution can swap (run
//! `--threads 1` when exact per-request traffic matters, as the CI
//! serve-smoke job does). Per-request
//! budgets (`"budget_steps"`, `"budget_ms"`) run the request under a
//! tighter resource governor; the budget is part of the cache key, so
//! budgeted and unbudgeted requests never alias. `"certificate": true`
//! asks for a proof-carrying certificate in-band: the response gains a
//! `"certificate"` field holding the serialized `canvas-cert/1` text, which
//! the client can revalidate offline with `canvas check` (solution-bearing
//! cells are answered from the warm store; cells cached before the store
//! held solutions re-run). `stats` reports the
//! store-wide counters; `shutdown` persists the store and ends the loop.
//! Malformed lines produce an `{"ok":false,...}` response and the daemon
//! keeps serving.
//!
//! The daemon is also a live observability surface ([`crate::obs`]): each
//! certify request runs under its own telemetry [`Scope`], so the response
//! carries an in-band `"stats"` object with the request's wall time and
//! per-phase latency breakdown, and its cache object reports
//! `{"hits","misses","delta_seeded"}`. A `metrics` request answers the
//! Prometheus text exposition (per-verb request counts and latency
//! quantiles, worker utilization, queue depth, cache hit-rate/occupancy)
//! in the `"metrics"` field; a `health` request answers a cheap liveness
//! probe. Serve-loop warnings go to the structured event log
//! ([`canvas_telemetry::events`], surfaced by `--log-json`) instead of raw
//! stderr.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use canvas_core::{CanvasError, Certifier, Engine, Report, Stage, Verdict};
use canvas_easl::Spec;
use canvas_faults::Budget;
use canvas_telemetry::events::{self, FieldValue};
use canvas_telemetry::{phase, Scope, ScopeSnapshot};

use crate::json::{obj, Json};
use crate::obs::ServeMetrics;
use crate::store::CertCache;
use crate::{IncrementalCertifier, RunCacheStats};

/// Configuration of one serve loop.
pub struct ServeConfig {
    /// Concurrent certification workers (≥ 1).
    pub workers: usize,
    /// Directory of the persistent certificate store; `None` = in-memory.
    pub cache_dir: Option<PathBuf>,
}

/// Loads a spec by builtin name (`cmp`/`grp`/`imp`/`aop`) or file path.
///
/// # Errors
///
/// A `spec-load` error when the file cannot be read or parsed.
pub fn load_spec(name: &str) -> Result<Spec, CanvasError> {
    match name {
        "cmp" => Ok(canvas_easl::builtin::cmp()),
        "grp" => Ok(canvas_easl::builtin::grp()),
        "imp" => Ok(canvas_easl::builtin::imp()),
        "aop" => Ok(canvas_easl::builtin::aop()),
        path => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| CanvasError::io(Stage::SpecLoad, path, &e))?;
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("spec")
                .to_string();
            Spec::parse(stem, &src).map_err(|e| CanvasError::spec(&e))
        }
    }
}

/// One parsed request.
struct Request {
    id: Json,
    cmd: Cmd,
}

enum Cmd {
    Certify {
        source: Source,
        spec: String,
        engine: Engine,
        budget_steps: Option<u64>,
        budget_ms: Option<u64>,
        certificate: bool,
    },
    Stats,
    Metrics,
    Health,
    Shutdown,
}

impl Cmd {
    /// The verb name used for per-verb metrics attribution.
    fn verb(&self) -> &'static str {
        match self {
            Cmd::Certify { .. } => "certify",
            Cmd::Stats => "stats",
            Cmd::Metrics => "metrics",
            Cmd::Health => "health",
            Cmd::Shutdown => "shutdown",
        }
    }
}

enum Source {
    File(String),
    Inline(String),
}

fn parse_request(line: &str) -> Result<Request, CanvasError> {
    let bad = |m: String| CanvasError::new(Stage::Cli, canvas_core::ErrorKind::Parse, m);
    let json = Json::parse(line).map_err(|e| bad(format!("bad request JSON: {e}")))?;
    let id = json.get("id").cloned().unwrap_or(Json::Null);
    let str_field = |key: &str| match json.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let int_field = |key: &str| match json.get(key) {
        Some(Json::Int(n)) => Some(*n),
        _ => None,
    };
    let cmd = match str_field("cmd").as_deref() {
        Some("stats") => Cmd::Stats,
        Some("metrics") => Cmd::Metrics,
        Some("health") => Cmd::Health,
        Some("shutdown") => Cmd::Shutdown,
        Some("certify") => {
            let source = match (str_field("file"), str_field("source")) {
                (Some(path), None) => Source::File(path),
                (None, Some(src)) => Source::Inline(src),
                (Some(_), Some(_)) => {
                    return Err(bad("certify takes \"file\" or \"source\", not both".to_string()))
                }
                (None, None) => {
                    return Err(bad("certify needs a \"file\" or \"source\" field".to_string()))
                }
            };
            let engine_name = str_field("engine").unwrap_or_else(|| "scmp-fds".to_string());
            let engine = Engine::by_name(&engine_name)
                .ok_or_else(|| bad(format!("unknown engine {engine_name:?}")))?;
            Cmd::Certify {
                source,
                spec: str_field("spec").unwrap_or_else(|| "cmp".to_string()),
                engine,
                budget_steps: int_field("budget_steps"),
                budget_ms: int_field("budget_ms"),
                certificate: matches!(json.get("certificate"), Some(Json::Bool(true))),
            }
        }
        Some(other) => return Err(bad(format!("unknown cmd {other:?}"))),
        None => return Err(bad("request has no \"cmd\" field".to_string())),
    };
    Ok(Request { id, cmd })
}

/// Shared serve-loop state: the warm store plus one incremental certifier
/// per spec, built on demand.
struct ServeState {
    cache: Arc<CertCache>,
    certifiers: Mutex<HashMap<String, Arc<IncrementalCertifier>>>,
    metrics: ServeMetrics,
}

impl ServeState {
    fn certifier_for(&self, spec_name: &str) -> Result<Arc<IncrementalCertifier>, CanvasError> {
        let mut map = self.certifiers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(inc) = map.get(spec_name) {
            return Ok(Arc::clone(inc));
        }
        let spec = load_spec(spec_name)?;
        let certifier = Certifier::from_spec(spec)?;
        let inc = Arc::new(IncrementalCertifier::shared(certifier, Arc::clone(&self.cache)));
        map.insert(spec_name.to_string(), Arc::clone(&inc));
        Ok(inc)
    }

    fn handle(&self, request: &Request) -> Json {
        match &request.cmd {
            Cmd::Stats => {
                let stats = self.cache.stats();
                ok_response(
                    &request.id,
                    vec![(
                        "cache",
                        obj(vec![
                            ("entries", Json::Int(self.cache.len() as u64)),
                            ("hits", Json::Int(stats.hits)),
                            ("misses", Json::Int(stats.misses)),
                            ("stores", Json::Int(stats.stores)),
                            ("invalidations", Json::Int(stats.invalidations)),
                            ("loaded", Json::Int(stats.loaded)),
                            ("recovered", Json::Bool(stats.recovered_from_corruption)),
                        ]),
                    )],
                )
            }
            Cmd::Metrics => ok_response(
                &request.id,
                vec![("metrics", Json::Str(self.metrics.prometheus(&self.cache)))],
            ),
            Cmd::Health => ok_response(
                &request.id,
                vec![
                    ("status", Json::Str("ok".to_string())),
                    ("uptime_ms", Json::Int(self.metrics.uptime_ms())),
                    ("workers", Json::Int(self.metrics.workers())),
                    ("busy", Json::Int(self.metrics.busy())),
                    ("queue_depth", Json::Int(self.metrics.queue_depth())),
                    ("cache_entries", Json::Int(self.cache.len() as u64)),
                ],
            ),
            Cmd::Shutdown => ok_response(&request.id, vec![("shutdown", Json::Bool(true))]),
            Cmd::Certify { source, spec, engine, budget_steps, budget_ms, certificate } => {
                // the request's own scope: counters/timers recorded while it
                // runs (including the phase.* breakdown) attribute here
                let scope = Scope::new(format!("certify#{}", request.id.render_compact()));
                let started = Instant::now();
                let result = {
                    let _in_scope = scope.enter();
                    self.certify(source, spec, *engine, *budget_steps, *budget_ms, *certificate)
                };
                let total_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                match result {
                    Ok((report, cert, stats)) => {
                        self.metrics.add_delta_seeded(stats.delta_seeded);
                        if matches!(report.verdict, Verdict::Inconclusive { .. }) {
                            self.metrics.note_inconclusive();
                        }
                        certify_response(
                            &request.id,
                            &report,
                            cert.as_deref(),
                            stats,
                            &scope.snapshot(),
                            total_ns,
                        )
                    }
                    Err(e) => error_response(&request.id, &e),
                }
            }
        }
    }

    fn certify(
        &self,
        source: &Source,
        spec: &str,
        engine: Engine,
        budget_steps: Option<u64>,
        budget_ms: Option<u64>,
        certificate: bool,
    ) -> Result<(Report, Option<String>, RunCacheStats), CanvasError> {
        let text = match source {
            Source::Inline(src) => src.clone(),
            Source::File(path) => std::fs::read_to_string(path)
                .map_err(|e| CanvasError::io(Stage::ClientFrontend, path, &e))?,
        };
        let base = self.certifier_for(spec)?;
        // the deadline clock starts when the request is picked up, not when
        // it was enqueued
        let budgeted;
        let inc: &IncrementalCertifier = if budget_steps.is_some() || budget_ms.is_some() {
            let mut budget = Budget::unlimited();
            if let Some(n) = budget_steps {
                budget = budget.with_max_steps(n);
            }
            if let Some(ms) = budget_ms {
                budget = budget.with_deadline_ms(ms);
            }
            budgeted = base.with_budget(budget);
            &budgeted
        } else {
            &base
        };
        let program = {
            let _parse = phase::PARSE.span();
            canvas_minijava::Program::parse(&text, inc.certifier().spec())
                .map_err(|e| CanvasError::client(&e))?
        };
        let result = if certificate {
            let (report, cert, stats) = inc
                .certify_program_certified(&text, &program, engine)
                .map_err(CanvasError::from)?;
            (report, Some(cert.to_text()), stats)
        } else {
            let (report, stats) = inc
                .certify_program_cached_with_stats(&program, engine)
                .map_err(CanvasError::from)?;
            (report, None, stats)
        };
        if let Err(e) = self.cache.persist() {
            events::warn("incr.serve", e.to_string());
        }
        Ok(result)
    }
}

fn ok_response(id: &Json, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("id", id.clone()), ("ok", Json::Bool(true))];
    pairs.extend(fields);
    obj(pairs)
}

fn error_response(id: &Json, error: &CanvasError) -> Json {
    obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(error.to_string())),
    ])
}

fn certify_response(
    id: &Json,
    report: &Report,
    certificate: Option<&str>,
    stats: RunCacheStats,
    scope: &ScopeSnapshot,
    total_ns: u64,
) -> Json {
    let (verdict, reason) = match &report.verdict {
        Verdict::Inconclusive { reason } => ("inconclusive", Some(reason.clone())),
        Verdict::Complete if report.certified() => ("certified", None),
        Verdict::Complete => ("violations", None),
    };
    let mut fields = vec![
        ("engine", Json::Str(report.engine.to_string())),
        ("verdict", Json::Str(verdict.to_string())),
    ];
    if let Some(reason) = reason {
        fields.push(("reason", Json::Str(reason)));
    }
    fields.push((
        "violations",
        Json::Arr(
            report
                .violations
                .iter()
                .map(|v| {
                    obj(vec![
                        ("method", Json::Str(v.method.clone())),
                        ("line", Json::Int(u64::from(v.line))),
                        ("col", Json::Int(u64::from(v.col))),
                        ("what", Json::Str(v.what.clone())),
                    ])
                })
                .collect(),
        ),
    ));
    if let Some(cert) = certificate {
        fields.push(("certificate", Json::Str(cert.to_string())));
    }
    fields.push((
        "cache",
        obj(vec![
            ("hits", Json::Int(stats.hits)),
            ("misses", Json::Int(stats.misses)),
            ("delta_seeded", Json::Int(stats.delta_seeded)),
        ]),
    ));
    // the request's own latency breakdown, from its scope's phase timers
    // (a fully warm request reports 0 for the phases it skipped)
    fields.push((
        "stats",
        obj(vec![
            ("total_ns", Json::Int(total_ns)),
            (
                "phases",
                obj(vec![
                    ("parse_ns", Json::Int(scope.sample_sum("phase.parse"))),
                    ("lower_ns", Json::Int(scope.sample_sum("phase.lower"))),
                    ("derive_ns", Json::Int(scope.sample_sum("phase.derive"))),
                    ("solve_ns", Json::Int(scope.sample_sum("phase.solve"))),
                    ("check_replay_ns", Json::Int(scope.sample_sum("phase.check_replay"))),
                ]),
            ),
        ]),
    ));
    ok_response(id, fields)
}

/// In-order response writer: workers finish in any order, lines go out in
/// request order.
struct Sequencer<W: Write> {
    next: usize,
    pending: BTreeMap<usize, String>,
    out: W,
}

impl<W: Write> Sequencer<W> {
    fn submit(&mut self, seq: usize, line: String) {
        self.pending.insert(seq, line);
        while let Some(line) = self.pending.remove(&self.next) {
            // a failed write means the client hung up; drop the response
            // (the daemon winds down when input closes too)
            let _ = writeln!(self.out, "{line}");
            let _ = self.out.flush();
            self.next += 1;
        }
    }
}

/// Runs the serve loop until `shutdown` or end of input. Persists the
/// store on the way out.
///
/// # Errors
///
/// A `cache`-stage error when the final persist fails; per-request errors
/// are answered in-band and never end the loop.
pub fn serve(
    input: impl BufRead,
    output: impl Write + Send,
    config: &ServeConfig,
) -> Result<(), CanvasError> {
    // The daemon *is* an observability surface: request scopes and phase
    // timers only attribute while the metrics switch is on.
    canvas_telemetry::set_enabled(true);
    let cache = Arc::new(match &config.cache_dir {
        Some(dir) => CertCache::open(dir),
        None => CertCache::in_memory(),
    });
    let workers = config.workers.max(1);
    let state = ServeState {
        cache: Arc::clone(&cache),
        certifiers: Mutex::new(HashMap::new()),
        metrics: ServeMetrics::new(workers),
    };
    let sequencer = Mutex::new(Sequencer { next: 0, pending: BTreeMap::new(), out: output });
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    let rx = Mutex::new(rx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let received = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();
                let Ok((seq, line)) = received else { break };
                let parsed = parse_request(&line);
                let verb = match &parsed {
                    Ok(request) => request.cmd.verb(),
                    Err(_) => "invalid",
                };
                state.metrics.begin(verb);
                let started = Instant::now();
                let response = match parsed {
                    Ok(request) => state.handle(&request),
                    Err(e) => error_response(&Json::Null, &e),
                };
                let elapsed = started.elapsed();
                let is_error = matches!(response.get("ok"), Some(Json::Bool(false)));
                state.metrics.finish(verb, elapsed, is_error);
                if events::would_log(events::Level::Info) {
                    events::info_with(
                        "incr.serve",
                        format!("{verb} request handled"),
                        vec![
                            ("verb", FieldValue::Str(verb.to_string())),
                            ("seq", FieldValue::U64(seq as u64)),
                            (
                                "us",
                                FieldValue::U64(
                                    elapsed.as_micros().min(u128::from(u64::MAX)) as u64
                                ),
                            ),
                            ("ok", FieldValue::U64(u64::from(!is_error))),
                        ],
                    );
                }
                sequencer
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .submit(seq, response.render_compact());
            });
        }
        let mut seq = 0;
        for line in input.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            // peek for shutdown on the reader thread so the loop stops
            // accepting input as soon as the request is *enqueued*
            let is_shutdown =
                matches!(parse_request(&line), Ok(Request { cmd: Cmd::Shutdown, .. }));
            if tx.send((seq, line)).is_err() {
                break;
            }
            state.metrics.enqueued();
            seq += 1;
            if is_shutdown {
                break;
            }
        }
        drop(tx);
    });
    cache.persist()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "class Main { static void main() { Set v = new Set(); Iterator i = v.iterator(); v.add(\\\"x\\\"); i.next(); } }";

    fn run_script(script: &str, workers: usize) -> Vec<Json> {
        let mut out = Vec::new();
        serve(
            std::io::Cursor::new(script.to_string()),
            &mut out,
            &ServeConfig { workers, cache_dir: None },
        )
        .expect("serve runs");
        let text = String::from_utf8(out).expect("utf8");
        text.lines().map(|l| Json::parse(l).expect("response parses")).collect()
    }

    fn certify_line(id: u64) -> String {
        format!("{{\"id\":{id},\"cmd\":\"certify\",\"source\":\"{FIG3}\"}}")
    }

    #[test]
    fn certify_stats_shutdown_round_trip() {
        let script = format!(
            "{}\n{}\n{{\"id\":3,\"cmd\":\"stats\"}}\n{{\"id\":4,\"cmd\":\"shutdown\"}}\n",
            certify_line(1),
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.get("id"), Some(&Json::Int(i as u64 + 1)), "{r:?}");
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        }
        // cold then fully warm
        assert_eq!(responses[0].get("verdict"), Some(&Json::Str("violations".to_string())));
        let cold = responses[0].get("cache").expect("cache");
        let warm = responses[1].get("cache").expect("cache");
        assert_eq!(cold.get("hits"), Some(&Json::Int(0)));
        assert_eq!(warm.get("misses"), Some(&Json::Int(0)));
        assert_eq!(warm.get("hits"), cold.get("misses"));
        // no edits in this script: nothing delta-seeded
        assert_eq!(cold.get("delta_seeded"), Some(&Json::Int(0)));
        assert_eq!(warm.get("delta_seeded"), Some(&Json::Int(0)));
        // identical verdict payloads either way
        assert_eq!(responses[0].get("violations"), responses[1].get("violations"));
        let stats = responses[2].get("cache").expect("stats cache");
        assert_eq!(stats.get("hits"), warm.get("hits"));
        assert_eq!(responses[3].get("shutdown"), Some(&Json::Bool(true)));
    }

    #[test]
    fn responses_stay_in_request_order_under_concurrency() {
        let mut script = String::new();
        for id in 1..=6 {
            script.push_str(&certify_line(id));
            script.push('\n');
        }
        script.push_str("{\"id\":7,\"cmd\":\"shutdown\"}\n");
        let responses = run_script(&script, 4);
        assert_eq!(responses.len(), 7);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.get("id"), Some(&Json::Int(i as u64 + 1)), "{r:?}");
        }
    }

    #[test]
    fn certificate_requests_carry_the_certificate_in_band() {
        let script = format!(
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"certificate\":true}}\n\
             {}\n{{\"id\":3,\"cmd\":\"shutdown\"}}\n",
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        let Some(Json::Str(cert)) = responses[0].get("certificate") else {
            panic!("no certificate in {:?}", responses[0])
        };
        let parsed = canvas_abstraction::Certificate::parse(cert).expect("certificate parses");
        assert!(parsed.checkable(), "fds run must carry a replayable solution");
        // requests that did not ask for one don't get one
        assert!(responses[1].get("certificate").is_none(), "{:?}", responses[1]);
    }

    #[test]
    fn certify_responses_carry_in_band_phase_stats() {
        let script = format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1));
        let responses = run_script(&script, 1);
        let stats = responses[0].get("stats").expect("in-band stats");
        let Some(Json::Int(total)) = stats.get("total_ns") else {
            panic!("no total_ns in {stats:?}")
        };
        assert!(*total > 0);
        let phases = stats.get("phases").expect("phase breakdown");
        for key in ["parse_ns", "lower_ns", "derive_ns", "solve_ns", "check_replay_ns"] {
            assert!(matches!(phases.get(key), Some(Json::Int(_))), "missing {key}: {phases:?}");
        }
        // a cold certify must actually parse and solve
        assert_ne!(phases.get("parse_ns"), Some(&Json::Int(0)), "{phases:?}");
        assert_ne!(phases.get("solve_ns"), Some(&Json::Int(0)), "{phases:?}");
    }

    #[test]
    fn metrics_verb_answers_prometheus_exposition() {
        let script = format!(
            "{}\n{}\n{{\"id\":3,\"cmd\":\"metrics\"}}\n{{\"id\":4,\"cmd\":\"shutdown\"}}\n",
            certify_line(1),
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        let Some(Json::Str(text)) = responses[2].get("metrics") else {
            panic!("no metrics text in {:?}", responses[2])
        };
        // with one worker the two certifies complete before the scrape
        assert!(text.contains("canvas_serve_requests_total{verb=\"certify\"} 2\n"), "{text}");
        assert!(text.contains("canvas_serve_requests_total{verb=\"metrics\"} 1\n"), "{text}");
        assert!(
            text.contains(
                "canvas_serve_request_latency_seconds{verb=\"certify\",quantile=\"0.99\"}"
            ),
            "{text}"
        );
        assert!(text.contains("canvas_serve_cache_hit_ratio 0.5000\n"), "cold+warm: {text}");
        assert!(text.contains("canvas_serve_workers 1\n"), "{text}");
    }

    #[test]
    fn health_verb_reports_liveness() {
        let script = "{\"id\":1,\"cmd\":\"health\"}\n{\"id\":2,\"cmd\":\"shutdown\"}\n";
        let responses = run_script(script, 2);
        let r = &responses[0];
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("status"), Some(&Json::Str("ok".to_string())));
        assert_eq!(r.get("workers"), Some(&Json::Int(2)));
        assert!(matches!(r.get("uptime_ms"), Some(Json::Int(_))), "{r:?}");
        assert_eq!(r.get("cache_entries"), Some(&Json::Int(0)));
        // the probe itself is in flight while it answers
        let Some(Json::Int(busy)) = r.get("busy") else { panic!("{r:?}") };
        assert!(*busy >= 1, "{r:?}");
    }

    #[test]
    fn malformed_requests_do_not_kill_the_daemon() {
        let script =
            format!("this is not json\n{{\"id\":2,\"cmd\":\"frobnicate\"}}\n{}\n", certify_line(3));
        let responses = run_script(&script, 1);
        assert_eq!(responses.len(), 3);
        for r in &responses[..2] {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
            let Some(Json::Str(e)) = r.get("error") else { panic!("no error: {r:?}") };
            assert!(e.starts_with("error[cli/parse]"), "{e}");
        }
        assert_eq!(responses[2].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn unknown_specs_and_missing_files_answer_in_band() {
        let script = "{\"id\":1,\"cmd\":\"certify\",\"file\":\"/nonexistent/x.mj\"}\n\
                      {\"id\":2,\"cmd\":\"certify\",\"source\":\"class Main {}\",\"spec\":\"/nonexistent/s.easl\"}\n\
                      {\"id\":3,\"cmd\":\"shutdown\"}\n";
        let responses = run_script(script, 2);
        assert_eq!(responses.len(), 3);
        let Some(Json::Str(e1)) = responses[0].get("error") else { panic!() };
        assert!(e1.starts_with("error[client-frontend/io]"), "{e1}");
        let Some(Json::Str(e2)) = responses[1].get("error") else { panic!() };
        assert!(e2.starts_with("error[spec-load/io]"), "{e2}");
    }

    #[test]
    fn per_request_budget_is_honored_and_not_cached() {
        // an absurdly tight step budget forces an inconclusive verdict;
        // rerunning unbudgeted must not see a cached cell for it
        let script = format!(
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"budget_steps\":1}}\n{}\n{{\"id\":3,\"cmd\":\"shutdown\"}}\n",
            certify_line(2)
        );
        let responses = run_script(&script, 1);
        assert_eq!(responses[0].get("verdict"), Some(&Json::Str("inconclusive".to_string())));
        let unbudgeted = responses[1].get("cache").expect("cache");
        assert_eq!(unbudgeted.get("hits"), Some(&Json::Int(0)), "budget keys must not alias");
        assert_eq!(responses[1].get("verdict"), Some(&Json::Str("violations".to_string())));
    }

    #[test]
    fn the_store_persists_across_serve_sessions() {
        let dir = std::env::temp_dir().join(format!("canvas-serve-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig { workers: 1, cache_dir: Some(dir.clone()) };
        let run = |script: &str| {
            let mut out = Vec::new();
            serve(std::io::Cursor::new(script.to_string()), &mut out, &config).expect("serves");
            let text = String::from_utf8(out).expect("utf8");
            text.lines().map(|l| Json::parse(l).expect("parses")).collect::<Vec<_>>()
        };
        let first = run(&format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1)));
        assert_eq!(first[0].get("cache").and_then(|c| c.get("hits")), Some(&Json::Int(0)));
        // a fresh daemon on the same directory starts warm
        let second = run(&format!("{}\n{{\"id\":2,\"cmd\":\"shutdown\"}}\n", certify_line(1)));
        let cache = second[0].get("cache").expect("cache");
        assert_eq!(cache.get("misses"), Some(&Json::Int(0)), "{cache:?}");
        assert_eq!(second[0].get("violations"), first[0].get("violations"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
