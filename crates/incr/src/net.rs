//! The TCP front-end of `canvas serve --listen`.
//!
//! A hand-rolled, zero-dependency listener speaking the same NDJSON
//! protocol as the stdio loop in [`crate::service`]: thread-per-connection
//! readers feed the shared bounded queue, the shared worker pool answers,
//! and every connection gets its own in-order response sequencer. All the
//! overload machinery — admission control, tenant buckets, deadline
//! propagation, shedding — lives in [`crate::service`] and applies
//! identically here; this module only owns sockets and signals.
//!
//! # Graceful drain
//!
//! The accept loop polls with a short accept timeout so it can notice a
//! drain promptly. A drain starts when any connection submits `shutdown`
//! or the process receives `SIGTERM`; the listener then stops accepting,
//! every connection reader stops at its next idle tick, queued work is
//! finished (or shed on its deadline), the store persists, and the
//! `drain complete` log record is the last thing out.
//!
//! # Slow clients
//!
//! Sockets get a write timeout (`--write-timeout-ms`). A client that stops
//! reading long enough to stall a response write gets its connection
//! poisoned — later responses for it are computed but discarded — and
//! affects nothing else.

use std::io::{BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use canvas_core::{CanvasError, ErrorKind, Stage};

use crate::service::{boxed_writer, run_connection, worker_loop, Conn, Daemon, Job, ServeConfig};

/// Set by the `SIGTERM` handler; checked by the accept loop each tick.
static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    // zero-dep signal(2): the handler only flips an AtomicBool, which is
    // async-signal-safe. SIG_ERR is ignored — worst case the daemon only
    // drains on `shutdown` requests.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGTERM_NO, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Binds `addr` and serves until drain. Prints the bound address on
/// stdout (so scripts binding port 0 learn the real port) before
/// accepting.
///
/// # Errors
///
/// A `cli`-stage error when the bind fails; a `cache`-stage error when the
/// final persist fails. Per-connection failures never end the loop.
pub fn serve_listen(addr: impl ToSocketAddrs, config: &ServeConfig) -> Result<(), CanvasError> {
    let listener = TcpListener::bind(addr).map_err(|e| {
        CanvasError::new(Stage::Cli, ErrorKind::Io, format!("cannot bind listener: {e}"))
    })?;
    if let Ok(local) = listener.local_addr() {
        println!("canvas serve: listening on {local}");
        let _ = std::io::stdout().flush();
    }
    serve_listener(listener, config)
}

/// Serves an already-bound listener until drain. Split out so tests and
/// the overload harness can bind port 0 in-process and learn the port
/// from `local_addr()` before the loop starts.
///
/// # Errors
///
/// A `cache`-stage error when the final persist fails.
pub fn serve_listener(listener: TcpListener, config: &ServeConfig) -> Result<(), CanvasError> {
    install_sigterm_handler();
    SIGTERM.store(false, Ordering::SeqCst);
    let daemon = Daemon::new(config);
    // non-blocking accepts + a sleep tick keep the loop responsive to
    // drain without a second wake-up mechanism
    let _ = listener.set_nonblocking(true);
    let (tx, rx) = mpsc::sync_channel::<Job<'_>>(daemon.tuning.queue_cap);
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..daemon.tuning.workers {
            scope.spawn(|| worker_loop(&daemon, &rx));
        }
        loop {
            if daemon.draining() {
                break;
            }
            if SIGTERM.load(Ordering::SeqCst) {
                daemon.begin_drain("SIGTERM");
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // one-line responses must not sit in Nagle's buffer
                    let _ = stream.set_nodelay(true);
                    // short read timeouts turn blocked reads into idle
                    // ticks so connection readers also notice the drain
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(
                        daemon.tuning.write_timeout_ms.max(1),
                    )));
                    let Ok(write_half) = stream.try_clone() else {
                        continue;
                    };
                    let conn = Arc::new(Conn::new(daemon.next_conn_id(), boxed_writer(write_half)));
                    let tx = tx.clone();
                    let daemon = &daemon;
                    scope.spawn(move || {
                        daemon.metrics().conn_opened();
                        let mut reader = BufReader::new(stream);
                        run_connection(daemon, &mut reader, &conn, &tx);
                        daemon.metrics().conn_closed();
                    });
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // a broken listener can't accept anyone else: drain
                    daemon.begin_drain("listener error");
                    break;
                }
            }
        }
        drop(tx);
    });
    daemon.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader as StdBufReader};
    use std::net::TcpStream;

    const FIG3: &str = "class Main { static void main() { Set v = new Set(); Iterator i = v.iterator(); v.add(\\\"x\\\"); i.next(); } }";

    fn spawn_server(config: ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            serve_listener(listener, &config).expect("serve");
        });
        (addr, handle)
    }

    #[test]
    fn tcp_round_trip_and_graceful_drain() {
        let (addr, handle) = spawn_server(ServeConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(
            stream,
            "{{\"id\":1,\"cmd\":\"certify\",\"source\":\"{FIG3}\",\"tenant\":\"acme\"}}"
        )
        .expect("write");
        writeln!(stream, "{{\"id\":2,\"cmd\":\"shutdown\"}}").expect("write");
        let mut reader = StdBufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read certify response");
        assert!(line.contains("\"verdict\":\"violations\""), "{line}");
        line.clear();
        reader.read_line(&mut line).expect("read shutdown response");
        assert!(line.contains("\"shutdown\":true"), "{line}");
        handle.join().expect("server drains");
    }

    #[test]
    fn second_connection_survives_first_connections_torn_input() {
        let config = ServeConfig { workers: 2, ..ServeConfig::default() };
        let (addr, handle) = spawn_server(config);
        // connection A sends a torn record (no newline) and hangs up
        let mut torn = TcpStream::connect(addr).expect("connect torn");
        torn.write_all(b"{\"id\":1,\"cmd\":\"cert").expect("write");
        drop(torn);
        // connection B still gets full service
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{{\"id\":1,\"cmd\":\"health\"}}").expect("write");
        let mut reader = StdBufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read health response");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        writeln!(stream, "{{\"id\":2,\"cmd\":\"shutdown\"}}").expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read shutdown response");
        assert!(line.contains("\"shutdown\":true"), "{line}");
        handle.join().expect("server drains");
    }
}
