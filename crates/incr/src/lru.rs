//! A sharded, size-budgeted LRU map — the hot tier of the certificate
//! cache.
//!
//! The map is generic over its value type so the policy is testable in
//! isolation; the certificate store instantiates it with decoded
//! certificates and charges each entry its byte-accurate
//! `canvas-cert-cache/2` store-line cost, so "occupancy" means exactly
//! "bytes this cache would write to disk".
//!
//! Design constraints, in order:
//!
//! * **Bounded**: the sum of per-shard occupancies never exceeds the
//!   configured budget. The budget is split evenly across shards (integer
//!   division, so the split can only round *down*), and an entry larger
//!   than a whole shard budget is refused rather than admitted over
//!   budget.
//! * **Concurrent**: one mutex per shard; a key always hashes to the same
//!   shard, so two requests for different keys usually touch different
//!   locks.
//! * **Deterministic**: shard selection is a pure function of the key and
//!   the shard count, and eviction order within a shard is strict
//!   recency, so a fixed sequential workload always evicts the same
//!   entries in the same order.
//!
//! Eviction is the *caller's* policy decision: [`ShardedLru::insert`]
//! returns the evicted `(key, value)` pairs (least-recent first) and the
//! store decides whether they spill to the disk tier or are simply
//! forgotten.

use std::collections::HashMap;
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// Shards smaller than this are pointless: a single certificate line is
/// a few hundred bytes, so tiny budgets collapse to fewer shards instead
/// of starving every shard below the size of one entry.
const MIN_SHARD_BYTES: u64 = 4096;

struct Node<V> {
    key: u64,
    value: V,
    cost: usize,
    prev: usize,
    next: usize,
}

struct Shard<V> {
    map: HashMap<u64, usize>,
    slab: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    /// Most-recently-used slot (`NIL` when empty).
    head: usize,
    /// Least-recently-used slot (`NIL` when empty).
    tail: usize,
    bytes: usize,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.slab[idx].as_ref().expect("linked slot");
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let n = self.slab[idx].as_mut().expect("slot");
            n.prev = NIL;
            n.next = self.head;
        }
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].as_mut().expect("head slot").prev = idx,
        }
        self.head = idx;
    }

    fn promote(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Removes and returns the least-recently-used entry.
    fn pop_lru(&mut self) -> Option<(u64, V)> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        self.unlink(idx);
        let node = self.slab[idx].take().expect("tail slot");
        self.free.push(idx);
        self.map.remove(&node.key);
        self.bytes -= node.cost;
        Some((node.key, node.value))
    }

    fn remove(&mut self, key: u64) -> Option<(V, usize)> {
        let idx = self.map.remove(&key)?;
        self.unlink(idx);
        let node = self.slab[idx].take().expect("mapped slot");
        self.free.push(idx);
        self.bytes -= node.cost;
        Some((node.value, node.cost))
    }

    fn insert_front(&mut self, key: u64, value: V, cost: usize) {
        let node = Node { key, value, cost, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.bytes += cost;
        self.push_front(idx);
    }
}

/// A concurrent LRU map with a global byte budget split across shards.
///
/// `None` budget means unbounded: nothing is ever evicted and the map
/// behaves like a plain concurrent hash map with recency tracking.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard byte budget (`None` = unbounded).
    shard_budget: Option<usize>,
    /// The configured global budget, for reporting.
    budget: Option<u64>,
}

impl<V: Clone> ShardedLru<V> {
    /// Builds a map with at most `shards` shards and a global byte budget.
    ///
    /// Small budgets collapse to fewer shards (at least one) so no shard's
    /// slice rounds down below the size of a typical entry.
    #[must_use]
    pub fn new(budget: Option<u64>, shards: usize) -> Self {
        let requested = shards.max(1);
        let nshards = match budget {
            None => requested,
            Some(b) => {
                let supportable = usize::try_from(b / MIN_SHARD_BYTES).unwrap_or(usize::MAX);
                requested.min(supportable.max(1))
            }
        };
        let shard_budget =
            budget.map(|b| usize::try_from(b / nshards as u64).unwrap_or(usize::MAX));
        ShardedLru {
            shards: (0..nshards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget,
            budget,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        // the store's keys are already fingerprint hashes, so plain modulo
        // spreads them evenly; the shard count is fixed at construction,
        // making shard selection deterministic
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn lock(m: &Mutex<Shard<V>>) -> std::sync::MutexGuard<'_, Shard<V>> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks `key` up and promotes it to most-recently-used.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut shard = Self::lock(self.shard(key));
        let idx = *shard.map.get(&key)?;
        shard.promote(idx);
        Some(shard.slab[idx].as_ref().expect("mapped slot").value.clone())
    }

    /// Looks `key` up without touching recency (for stale-seed reads).
    pub fn peek(&self, key: u64) -> Option<V> {
        let shard = Self::lock(self.shard(key));
        let idx = *shard.map.get(&key)?;
        Some(shard.slab[idx].as_ref().expect("mapped slot").value.clone())
    }

    /// Inserts `value` under `key` at `cost` bytes, evicting
    /// least-recently-used entries until the shard fits its budget again.
    ///
    /// Returns the evicted `(key, value)` pairs, least-recent first. An
    /// entry costlier than a whole shard budget cannot fit and comes
    /// straight back in the eviction list (after evicting nothing else);
    /// re-inserting an existing key replaces it in place (a replacement is
    /// not an eviction).
    pub fn insert(&self, key: u64, value: V, cost: usize) -> Vec<(u64, V)> {
        let mut shard = Self::lock(self.shard(key));
        shard.remove(key);
        let mut evicted = Vec::new();
        if let Some(budget) = self.shard_budget {
            if cost > budget {
                // too big for the shard even when empty: refuse admission
                // rather than blow the budget (the caller spills it)
                evicted.push((key, value));
                return evicted;
            }
            while shard.bytes + cost > budget {
                match shard.pop_lru() {
                    Some(kv) => evicted.push(kv),
                    None => break,
                }
            }
        }
        shard.insert_front(key, value, cost);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: u64) -> Option<V> {
        Self::lock(self.shard(key)).remove(key).map(|(v, _)| v)
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// Whether no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current occupancy in (store-line) bytes, summed across shards.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| Self::lock(s).bytes as u64).sum()
    }

    /// The configured global budget (`None` = unbounded).
    #[must_use]
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget
    }

    /// The number of shards actually in use.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Clones out every resident entry (order unspecified).
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, V)> {
        let mut all = Vec::with_capacity(self.len());
        for s in &self.shards {
            let shard = Self::lock(s);
            let mut idx = shard.head;
            while idx != NIL {
                let n = shard.slab[idx].as_ref().expect("linked slot");
                all.push((n.key, n.value.clone()));
                idx = n.next;
            }
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_map_never_evicts() {
        let lru: ShardedLru<String> = ShardedLru::new(None, 4);
        for k in 0..100u64 {
            assert!(lru.insert(k, format!("v{k}"), 1000).is_empty());
        }
        assert_eq!(lru.len(), 100);
        assert_eq!(lru.bytes(), 100_000);
        assert_eq!(lru.get(7), Some("v7".to_string()));
    }

    #[test]
    fn single_shard_evicts_in_recency_order() {
        let lru: ShardedLru<u64> = ShardedLru::new(Some(4096), 1);
        // three entries of 1500 bytes: the third insert overflows 4096
        assert!(lru.insert(1, 10, 1500).is_empty());
        assert!(lru.insert(2, 20, 1500).is_empty());
        let evicted = lru.insert(3, 30, 1500);
        assert_eq!(evicted, vec![(1, 10)], "least-recently-used goes first");
        // touching 2 makes 3 the LRU
        assert_eq!(lru.get(2), Some(20));
        let evicted = lru.insert(4, 40, 1500);
        assert_eq!(evicted, vec![(3, 30)]);
        assert!(lru.bytes() <= 4096);
    }

    #[test]
    fn oversized_entries_are_refused_not_admitted() {
        let lru: ShardedLru<u64> = ShardedLru::new(Some(4096), 1);
        lru.insert(1, 10, 100);
        let evicted = lru.insert(2, 20, 5000);
        assert_eq!(evicted, vec![(2, 20)], "the oversized entry itself bounces");
        assert_eq!(lru.len(), 1, "resident entries are untouched");
        assert_eq!(lru.get(1), Some(10));
    }

    #[test]
    fn replacement_is_not_an_eviction() {
        let lru: ShardedLru<u64> = ShardedLru::new(Some(4096), 1);
        lru.insert(1, 10, 2000);
        let evicted = lru.insert(1, 11, 3000);
        assert!(evicted.is_empty());
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.bytes(), 3000);
        assert_eq!(lru.get(1), Some(11));
    }

    #[test]
    fn tiny_budgets_collapse_to_fewer_shards() {
        let lru: ShardedLru<u64> = ShardedLru::new(Some(4096), 8);
        assert_eq!(lru.shard_count(), 1, "4 KiB cannot support 8 useful shards");
        // the whole budget is usable, not 1/8th of it
        assert!(lru.insert(1, 10, 3000).is_empty());
        let big: ShardedLru<u64> = ShardedLru::new(Some(1 << 20), 8);
        assert_eq!(big.shard_count(), 8);
    }

    #[test]
    fn peek_does_not_promote() {
        let lru: ShardedLru<u64> = ShardedLru::new(Some(4096), 1);
        lru.insert(1, 10, 1500);
        lru.insert(2, 20, 1500);
        assert_eq!(lru.peek(1), Some(10));
        // 1 is still the LRU despite the peek
        let evicted = lru.insert(3, 30, 1500);
        assert_eq!(evicted, vec![(1, 10)]);
    }

    #[test]
    fn entries_walk_every_shard() {
        let lru: ShardedLru<u64> = ShardedLru::new(Some(1 << 20), 4);
        for k in 0..32u64 {
            lru.insert(k, k * 2, 64);
        }
        let mut all = lru.entries();
        all.sort_unstable();
        assert_eq!(all.len(), 32);
        assert!(all.iter().all(|&(k, v)| v == k * 2));
    }
}
