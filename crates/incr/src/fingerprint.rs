//! Content fingerprints and cache keys for the incremental certifier.
//!
//! A certificate may be reused only when *everything the analysis could
//! observe* is unchanged. The observable inputs of one `(method, entry,
//! engine)` cell are:
//!
//! * the lowered body of the method itself (hashed by a canonical IR walk
//!   that names variables instead of using program-wide ids, so inserting
//!   a method earlier in the file does not shift every other fingerprint);
//! * the EASL spec and the abstraction derived from it;
//! * the program *environment* the intraprocedural engines consult outside
//!   the body: static variables, class field layouts, the component-type
//!   set, and the S-CMP shape flag;
//! * the *signatures* (not bodies) of directly called client methods — a
//!   client call is havoced from its signature, so editing a callee body
//!   must not invalidate its callers' intraprocedural certificates;
//! * the engine and the budget/explain configuration.
//!
//! The interprocedural engine observes the whole program, so its key uses
//! the whole-program fingerprint. The hash is a hand-rolled 64-bit FNV-1a
//! (zero-dep, deterministic across runs and platforms); strings are
//! length-prefixed so concatenation cannot alias.

use std::fmt;

use canvas_core::{Certifier, Engine};
use canvas_easl::Spec;
use canvas_minijava::{AllocSite, Instr, MethodId, MethodIr, Program, VarId};
use canvas_wp::Derived;

/// Version of the key-derivation scheme; bumped whenever the canonical walk
/// or the composition below changes, so stale stores miss instead of
/// colliding.
pub const KEY_VERSION: u32 = 1;

/// A 64-bit content fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

/// An incremental 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Hasher64 {
    state: u64,
}

impl Hasher64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher64 {
        Hasher64 { state: Self::OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// Absorbs a `u32`.
    pub fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    /// Absorbs a `usize`.
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Absorbs a single tag byte (instruction/format discriminants).
    pub fn write_u8(&mut self, n: u8) {
        self.write(&[n]);
    }

    /// Absorbs a boolean.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a previously computed fingerprint.
    pub fn write_fp(&mut self, fp: Fingerprint) {
        self.write_u64(fp.0);
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64::new()
    }
}

/// Fingerprint of the EASL spec (name + full class/method structure; the
/// `Debug` form resolves interned symbols to their names, so it is stable
/// across runs).
pub fn fingerprint_spec(spec: &Spec) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_str(spec.name());
    h.write_str(&format!("{:?}", spec.classes()));
    h.finish()
}

/// Fingerprint of the derived abstraction (families + statement
/// abstractions + derivation stats). Fully determined by the spec in
/// practice, but hashed separately so a derivation-algorithm change
/// invalidates certificates even under an unchanged spec.
pub fn fingerprint_derived(derived: &Derived) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_str(&format!("{derived:?}"));
    h.finish()
}

/// Fingerprint of the engine + budget configuration of `certifier`. State
/// budgets and governor limits shape the *output* (exhaustion degradation,
/// inconclusive cut-offs), so certificates are keyed on them; the deadline
/// is reduced to its presence (the instant itself is wall-clock).
pub fn fingerprint_config(certifier: &Certifier, engine: Engine) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_u32(KEY_VERSION);
    h.write_str(&engine.to_string());
    let (relational, tvla) = certifier.budgets();
    h.write_usize(relational);
    h.write_usize(tvla);
    h.write_bool(certifier.explain());
    let budget = certifier.budget();
    h.write_u64(budget.max_steps.unwrap_or(u64::MAX));
    h.write_usize(budget.max_states.unwrap_or(usize::MAX));
    h.write_bool(budget.deadline.is_some());
    h.finish()
}

/// Canonical per-method operand numbering: variables and allocation sites
/// are program-wide in the IR, so their raw ids shift when *other* methods
/// change. The walk writes each operand's first-seen ordinal plus its name
/// and type instead, making the fingerprint a function of this method's
/// body (and the statics it touches) only.
struct Canon<'a> {
    program: &'a Program,
    vars: Vec<VarId>,
    sites: Vec<AllocSite>,
}

impl<'a> Canon<'a> {
    fn new(program: &'a Program) -> Self {
        Canon { program, vars: Vec::new(), sites: Vec::new() }
    }

    fn var(&mut self, h: &mut Hasher64, id: VarId) {
        let ordinal = match self.vars.iter().position(|&v| v == id) {
            Some(i) => i,
            None => {
                self.vars.push(id);
                self.vars.len() - 1
            }
        };
        let v = self.program.var(id);
        h.write_usize(ordinal);
        h.write_str(&v.name);
        h.write_str(&v.ty.to_string());
        h.write_bool(v.owner.is_none()); // statics are shared environment
    }

    fn opt_var(&mut self, h: &mut Hasher64, id: Option<VarId>) {
        match id {
            Some(id) => {
                h.write_bool(true);
                self.var(h, id);
            }
            None => h.write_bool(false),
        }
    }

    fn site(&mut self, h: &mut Hasher64, site: AllocSite) {
        let ordinal = match self.sites.iter().position(|&s| s == site) {
            Some(i) => i,
            None => {
                self.sites.push(site);
                self.sites.len() - 1
            }
        };
        h.write_usize(ordinal);
    }
}

fn write_at(h: &mut Hasher64, at: &canvas_minijava::Site) {
    // spans are part of the certificate (violation lines come from them):
    // moving a call to another line must miss, even if structure is equal
    h.write_u32(at.span.line);
    h.write_u32(at.span.col);
    h.write_str(&at.what);
}

/// Fingerprint of one lowered method body via the canonical IR walk.
pub fn fingerprint_method(program: &Program, method: &MethodIr) -> Fingerprint {
    let mut h = Hasher64::new();
    let mut canon = Canon::new(program);
    h.write_str(&method.qualified_name());
    h.write_bool(method.is_static);
    h.write_u32(method.span.line);
    h.write_u32(method.span.col);
    h.write_u32(method.end_line);
    h.write_usize(method.params.len());
    for &p in &method.params {
        canon.var(&mut h, p);
    }
    canon.opt_var(&mut h, method.ret_var);
    h.write_usize(method.cfg.node_count());
    h.write_usize(method.cfg.edges().len());
    for e in method.cfg.edges() {
        h.write_usize(e.from.0);
        h.write_usize(e.to.0);
        match &e.instr {
            Instr::Copy { dst, src } => {
                h.write_u8(0);
                canon.var(&mut h, *dst);
                canon.var(&mut h, *src);
            }
            Instr::New { dst, ty, site, args, at } => {
                h.write_u8(1);
                canon.var(&mut h, *dst);
                h.write_str(&ty.to_string());
                canon.site(&mut h, *site);
                h.write_usize(args.len());
                for &a in args {
                    canon.var(&mut h, a);
                }
                write_at(&mut h, at);
            }
            Instr::Load { dst, base, field } => {
                h.write_u8(2);
                canon.var(&mut h, *dst);
                canon.var(&mut h, *base);
                h.write_str(field);
            }
            Instr::Store { base, field, src } => {
                h.write_u8(3);
                canon.var(&mut h, *base);
                h.write_str(field);
                canon.var(&mut h, *src);
            }
            Instr::CallComponent { dst, recv, method, args, known, at } => {
                h.write_u8(4);
                canon.opt_var(&mut h, *dst);
                canon.var(&mut h, *recv);
                h.write_str(method);
                h.write_usize(args.len());
                for &a in args {
                    canon.var(&mut h, a);
                }
                h.write_bool(*known);
                write_at(&mut h, at);
            }
            Instr::CallClient { dst, callee, args, at } => {
                h.write_u8(5);
                canon.opt_var(&mut h, *dst);
                // the callee by name, not id: ids shift with edits elsewhere
                h.write_str(&program.method(*callee).qualified_name());
                h.write_usize(args.len());
                for &a in args {
                    canon.var(&mut h, a);
                }
                write_at(&mut h, at);
            }
            Instr::Nullify { dst } => {
                h.write_u8(6);
                canon.var(&mut h, *dst);
            }
            Instr::Nop => h.write_u8(7),
        }
    }
    h.finish()
}

/// The callable *signature* of a method — what a caller's intraprocedural
/// analysis can observe about it (a client call is havoced from the
/// signature; the body is not consulted).
pub fn fingerprint_signature(program: &Program, method: &MethodIr) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_str(&method.qualified_name());
    h.write_bool(method.is_static);
    h.write_usize(method.params.len());
    for &p in &method.params {
        let v = program.var(p);
        h.write_str(&v.name);
        h.write_str(&v.ty.to_string());
    }
    match method.ret_var {
        Some(r) => {
            h.write_bool(true);
            h.write_str(&program.var(r).ty.to_string());
        }
        None => h.write_bool(false),
    }
    h.finish()
}

/// The shared program *environment* every method's analysis can observe
/// outside its own body: statics, class field layouts, component types, and
/// the S-CMP shape flag. Method bodies are deliberately excluded (they are
/// covered per-method).
pub fn fingerprint_environment(program: &Program) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_bool(program.is_scmp_shaped());
    for ty in program.component_types() {
        h.write_str(&ty.to_string());
    }
    for v in program.static_vars() {
        h.write_str(&v.name);
        h.write_str(&v.ty.to_string());
    }
    for c in program.classes() {
        h.write_str(&c.name.to_string());
        h.write_usize(c.fields.len());
        for f in &c.fields {
            h.write_str(&f.name);
            h.write_str(&f.ty.to_string());
        }
        h.write_usize(c.statics.len());
        for f in &c.statics {
            h.write_str(&f.name);
            h.write_str(&f.ty.to_string());
        }
    }
    h.finish()
}

/// All fingerprints of one parsed program: per-method body hashes, the
/// shared environment, per-method dependency sets (direct-callee
/// signatures), and the whole-program hash used by the interprocedural
/// engine.
#[derive(Clone, Debug)]
pub struct ProgramFingerprints {
    methods: Vec<Fingerprint>,
    deps: Vec<Fingerprint>,
    environment: Fingerprint,
    program: Fingerprint,
}

impl ProgramFingerprints {
    /// Computes every fingerprint for `program`.
    pub fn new(program: &Program) -> ProgramFingerprints {
        let methods: Vec<Fingerprint> =
            program.methods().iter().map(|m| fingerprint_method(program, m)).collect();
        let signatures: Vec<Fingerprint> =
            program.methods().iter().map(|m| fingerprint_signature(program, m)).collect();
        let environment = fingerprint_environment(program);
        let call_graph = program.call_graph();
        let deps = program
            .methods()
            .iter()
            .map(|m| {
                let mut h = Hasher64::new();
                h.write_fp(environment);
                if let Some(callees) = call_graph.get(&m.id) {
                    for c in callees {
                        h.write_fp(signatures[c.0]);
                    }
                }
                h.finish()
            })
            .collect();
        let mut h = Hasher64::new();
        h.write_fp(environment);
        for &m in &methods {
            h.write_fp(m);
        }
        let program_fp = h.finish();
        ProgramFingerprints { methods, deps, environment, program: program_fp }
    }

    /// The body fingerprint of `method`.
    pub fn method(&self, id: MethodId) -> Fingerprint {
        self.methods[id.0]
    }

    /// The dependency fingerprint of `method` (environment + direct-callee
    /// signatures).
    pub fn deps(&self, id: MethodId) -> Fingerprint {
        self.deps[id.0]
    }

    /// The shared environment fingerprint.
    pub fn environment(&self) -> Fingerprint {
        self.environment
    }

    /// The whole-program fingerprint (environment + every method body).
    pub fn program(&self) -> Fingerprint {
        self.program
    }
}

/// Fingerprint of a raw source text (length-prefixed, so it composes into
/// manifests without aliasing). This is the per-program digest recorded in
/// a fleet corpus manifest: it identifies the *bytes* handed to the
/// frontend, not the parsed IR, so a manifest can be checked without
/// parsing anything.
pub fn fingerprint_source(source: &str) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_str(source);
    h.finish()
}

/// Fingerprint of a corpus manifest: the ordered sequence of
/// `(program name, source fingerprint)` entries. Order is part of the
/// digest — a manifest is a concrete file listing, and two listings that
/// disagree on order are different artifacts.
pub fn fingerprint_manifest<'a>(
    entries: impl IntoIterator<Item = (&'a str, Fingerprint)>,
) -> Fingerprint {
    let mut h = Hasher64::new();
    let mut n: u64 = 0;
    for (name, fp) in entries {
        h.write_str(name);
        h.write_fp(fp);
        n += 1;
    }
    h.write_u64(n);
    h.finish()
}

/// The cache key of one `(method, entry, engine)` cell: the method body,
/// its dependency set, the spec + derived abstraction, the entry
/// assumption, and the engine/budget configuration.
pub fn cell_key(
    method: Fingerprint,
    deps: Fingerprint,
    spec: Fingerprint,
    derived: Fingerprint,
    config: Fingerprint,
    entry_unknown: bool,
) -> Fingerprint {
    let mut h = Hasher64::new();
    h.write_fp(method);
    h.write_fp(deps);
    h.write_fp(spec);
    h.write_fp(derived);
    h.write_fp(config);
    h.write_bool(entry_unknown);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        i1.next();
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#;

    fn parse(src: &str) -> Program {
        Program::parse(src, &canvas_easl::builtin::cmp()).expect("parses")
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let p1 = parse(FIG3);
        let p2 = parse(FIG3);
        let f1 = ProgramFingerprints::new(&p1);
        let f2 = ProgramFingerprints::new(&p2);
        assert_eq!(f1.program(), f2.program());
        let m = p1.main_method().expect("main");
        assert_eq!(f1.method(m.id), f2.method(m.id));
        let spec = canvas_easl::builtin::cmp();
        assert_eq!(fingerprint_spec(&spec), fingerprint_spec(&spec));
    }

    #[test]
    fn editing_a_method_changes_only_its_fingerprint() {
        let base = r#"
class Main {
    static void helper(Set s) { s.add("x"); }
    static void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        i.next();
    }
}
"#;
        let edited = r#"
class Main {
    static void helper(Set s) { s.add("x"); s.add("y"); }
    static void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        i.next();
    }
}
"#;
        let pb = parse(base);
        let pe = parse(edited);
        let fb = ProgramFingerprints::new(&pb);
        let fe = ProgramFingerprints::new(&pe);
        let helper_b = pb.method_named("Main.helper").expect("helper").id;
        let helper_e = pe.method_named("Main.helper").expect("helper").id;
        let main_b = pb.main_method().expect("main").id;
        let main_e = pe.main_method().expect("main").id;
        assert_ne!(fb.method(helper_b), fe.method(helper_e), "edited body must re-hash");
        assert_eq!(fb.method(main_b), fe.method(main_e), "untouched body must not");
        // main does not call helper, so its dependency set is unchanged too
        assert_eq!(fb.deps(main_b), fe.deps(main_e));
        assert_ne!(fb.program(), fe.program(), "whole-program hash sees the edit");
    }

    #[test]
    fn callee_signature_change_invalidates_the_caller_deps() {
        let base = r#"
class Main {
    static void helper(Set s) { s.add("x"); }
    static void main() {
        Set v = new Set();
        Main.helper(v);
    }
}
"#;
        let resigned = r#"
class Main {
    static void helper(Set s, Set t) { s.add("x"); }
    static void main() {
        Set v = new Set();
        Main.helper(v, v);
    }
}
"#;
        let pb = parse(base);
        let pr = parse(resigned);
        let fb = ProgramFingerprints::new(&pb);
        let fr = ProgramFingerprints::new(&pr);
        let main_b = pb.main_method().expect("main").id;
        let main_r = pr.main_method().expect("main").id;
        assert_ne!(fb.deps(main_b), fr.deps(main_r), "caller deps must see the new signature");
    }

    #[test]
    fn spans_are_part_of_the_key() {
        let shifted = FIG3.replacen("class Main", "\nclass Main", 1);
        let p1 = parse(FIG3);
        let p2 = parse(&shifted);
        let f1 = ProgramFingerprints::new(&p1);
        let f2 = ProgramFingerprints::new(&p2);
        let m1 = p1.main_method().expect("main").id;
        let m2 = p2.main_method().expect("main").id;
        assert_ne!(f1.method(m1), f2.method(m2), "violation lines come from spans");
    }

    #[test]
    fn config_and_engine_distinguish_keys() {
        let c = Certifier::from_spec(canvas_easl::builtin::cmp()).expect("cmp derives");
        let fds = fingerprint_config(&c, Engine::ScmpFds);
        let rel = fingerprint_config(&c, Engine::ScmpRelational);
        assert_ne!(fds, rel);
        let tighter = Certifier::from_spec(canvas_easl::builtin::cmp())
            .expect("cmp derives")
            .with_budgets(64, 64);
        assert_ne!(fds, fingerprint_config(&tighter, Engine::ScmpFds));
        let explaining = Certifier::from_spec(canvas_easl::builtin::cmp())
            .expect("cmp derives")
            .with_explain(true);
        assert_ne!(fds, fingerprint_config(&explaining, Engine::ScmpFds));
    }

    #[test]
    fn manifest_fingerprints_see_content_order_and_length() {
        let a = fingerprint_source("class A {}");
        let b = fingerprint_source("class B {}");
        assert_ne!(a, b);
        assert_eq!(a, fingerprint_source("class A {}"));
        let m1 = fingerprint_manifest([("p0.mj", a), ("p1.mj", b)]);
        assert_eq!(m1, fingerprint_manifest([("p0.mj", a), ("p1.mj", b)]));
        assert_ne!(m1, fingerprint_manifest([("p1.mj", b), ("p0.mj", a)]), "order matters");
        assert_ne!(m1, fingerprint_manifest([("p0.mj", a)]), "length matters");
        assert_ne!(m1, fingerprint_manifest([("p0.mj", b), ("p1.mj", a)]), "contents matter");
    }

    #[test]
    fn fingerprint_display_round_trips() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef);
        assert_eq!(fp.to_string(), "0123456789abcdef");
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse("0123"), None);
    }
}
