//! The certificate store: an in-memory map of content-addressed
//! certificates with an optional versioned on-disk mirror.
//!
//! The disk format is deliberately line-oriented so a torn write degrades
//! gracefully: a `canvas-cert-cache/1` header line followed by one
//! `<key-hex> <compact-json>` line per certificate. Loading tolerates any
//! corruption — a bad header drops the whole file, a bad line drops that
//! line and everything after it (a truncated tail is the common tear) —
//! and *always* comes back as a usable store; corruption is a warm-start
//! miss, never an error. The `cache-corrupt` fault-injection point
//! simulates a torn file so CI can prove the recovery path.
//!
//! Only **complete** verdicts are stored. Inconclusive verdicts depend on
//! wall-clock deadlines and would make cache behavior time-dependent;
//! re-running them is the sound choice.
//!
//! Since format 2 a cached cell can carry the engine's replayable fixpoint
//! solution ([`CachedCell`]) alongside the verdict, so a warm store can
//! serve proof-carrying certificates without re-running the engine; cells
//! cached without a solution degrade to a miss when a certificate is
//! requested.
//!
//! The in-memory tier is a sharded, size-budgeted LRU ([`crate::lru`]):
//! each certificate is charged its byte-accurate store-line cost, and when
//! the hot tier overflows its `--cache-bytes` budget the least-recently
//! used certificates are *evicted*. Eviction is sound by construction —
//! every resident entry is a complete verdict that any later request can
//! recompute from scratch, so losing one can cost latency but never change
//! an answer. On a disk-backed store the evicted line spills to a cold map
//! that [`CertCache::persist`] still writes (the disk tier keeps everything);
//! an in-memory store simply forgets it, and the next lookup is a cold miss.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use canvas_abstraction::{CellSolution, CertCell};
use canvas_core::{
    CanvasError, Engine, ErrorKind, Report, Stage, Stats, Verdict, Violation, Witness, WitnessStep,
};

use crate::fingerprint::Fingerprint;
use crate::json::{obj, Json};

/// Header line of the on-disk store; bumped together with
/// [`crate::fingerprint::KEY_VERSION`] on breaking changes.
pub const STORE_FORMAT: &str = "canvas-cert-cache/2";

const FILE_NAME: &str = "certs.v2";

// Cache traffic is deterministic for a fixed sequential workload (the eval
// incremental stage), so the counters are baseline-gated.
static CACHE_HITS: canvas_telemetry::Counter = canvas_telemetry::Counter::new("incr.cache_hits");
static CACHE_MISSES: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("incr.cache_misses");
static CACHE_STORES: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("incr.cache_stores");
static CACHE_INVALIDATIONS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("incr.cache_invalidations");
static CACHE_EVICTIONS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("incr.cache_evictions");
/// Cumulative store-line bytes admitted to the hot tier (monotonic, so it
/// stays a baseline-gated counter; *live* occupancy is the
/// `canvas_serve_cache_bytes` gauge).
static CACHE_BYTES: canvas_telemetry::Counter = canvas_telemetry::Counter::new("incr.cache_bytes");
/// Certificates copied in by [`CertCache::merge_from`]. Which shard of a
/// fleet run computed (and therefore donates) a given cell depends on
/// work-stealing order, so the split between merged and duplicate entries
/// is schedule-dependent: recorded, never gated.
static CACHE_MERGED: canvas_telemetry::Counter =
    canvas_telemetry::Counter::non_deterministic("incr.cache_merged");

/// The engines' known static witness-unavailability reasons.
/// `Witness::Unavailable` holds a `&'static str`, so a reason loaded from
/// disk must be mapped back onto one of these (or a generic fallback).
const KNOWN_REASONS: &[&str] = &[
    "the TVLA engines do not record provenance",
    "the allocation-site baseline does not record provenance",
];

fn static_reason(reason: &str) -> &'static str {
    KNOWN_REASONS
        .iter()
        .copied()
        .find(|&k| k == reason)
        .unwrap_or("witness detail not retained by the certificate cache")
}

/// The serializable certificate of one complete `(method, entry, engine)`
/// run: the verdict payload without the wall-clock duration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedReport {
    /// Engine name (sanity-checked on reuse).
    pub engine: String,
    /// Predicate instances in play.
    pub predicates: u64,
    /// Deterministic engine work units.
    pub work: u64,
    /// Peak per-node abstract-state size.
    pub max_states: u64,
    /// Whether a state budget degraded the result to conservative.
    pub exhausted: bool,
    /// The violations, in normalized order.
    pub violations: Vec<CachedViolation>,
    /// The replayable fixpoint solution, when the engine emitted one.
    pub cell: Option<CachedCell>,
    /// The boolean program's delta-diff shape (node/edge structure), when
    /// the run captured one: together with the solution it lets a later
    /// edit of the same method seed its re-solve from this fixpoint
    /// instead of ⊥ ([`canvas_dataflow::delta`]). Optional and absent in
    /// pre-delta stores — a missing payload only disables seeding.
    pub delta: Option<canvas_dataflow::DeltaPayload>,
}

/// The replayable solution of a cached cell: everything a
/// [`CertCell`] needs except the method name and entry assumption, which
/// the cache key (and lookup site) already determine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedCell {
    /// Predicate-instance count (the solution's bit width).
    pub preds: u32,
    /// Digest of the boolean program the solution is a fixpoint of.
    pub bp_digest: u64,
    /// The solution payload.
    pub solution: CellSolution,
}

/// One serialized violation (witness provenance included).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedViolation {
    /// Qualified method name.
    pub method: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable call description.
    pub what: String,
    /// Serialized witness (`None` = no witness recorded).
    pub witness: Option<CachedWitness>,
}

/// Serialized witness evidence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CachedWitness {
    /// A fact-establishment trace.
    Trace(Vec<CachedStep>),
    /// The engine reported no witness, with its reason.
    Unavailable(String),
}

/// One serialized witness step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedStep {
    /// 1-based source line (0 = no location).
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// The establishing instruction.
    pub what: String,
    /// The established fact.
    pub fact: String,
}

impl CachedReport {
    /// Extracts the cacheable certificate from a report, or `None` when the
    /// verdict is inconclusive (never cached — see the module docs).
    pub fn from_report(report: &Report) -> Option<CachedReport> {
        if report.verdict != Verdict::Complete {
            return None;
        }
        let violations = report
            .violations
            .iter()
            .map(|v| CachedViolation {
                method: v.method.clone(),
                line: v.line,
                col: v.col,
                what: v.what.clone(),
                witness: v.witness.as_ref().map(|w| match w {
                    Witness::Trace(steps) => CachedWitness::Trace(
                        steps
                            .iter()
                            .map(|s| CachedStep {
                                line: s.line,
                                col: s.col,
                                what: s.what.clone(),
                                fact: s.fact.clone(),
                            })
                            .collect(),
                    ),
                    Witness::Unavailable(reason) => CachedWitness::Unavailable(reason.to_string()),
                }),
            })
            .collect();
        Some(CachedReport {
            engine: report.engine.to_string(),
            predicates: report.stats.predicates as u64,
            work: report.stats.work as u64,
            max_states: report.stats.max_states as u64,
            exhausted: report.stats.exhausted,
            violations,
            cell: None,
            delta: None,
        })
    }

    /// As [`CachedReport::from_report`], also capturing the engine's
    /// certificate cell so the warm path can serve proof-carrying
    /// certificates.
    pub fn from_certified(report: &Report, cell: Option<&CertCell>) -> Option<CachedReport> {
        let mut cached = Self::from_report(report)?;
        cached.cell = cell.map(|c| CachedCell {
            preds: c.preds,
            bp_digest: c.bp_digest,
            solution: c.solution.clone(),
        });
        Some(cached)
    }

    /// Rehydrates the certificate as a [`Report`] (duration zero — the
    /// whole point is that no time was spent).
    pub fn to_report(&self, engine: Engine) -> Report {
        let violations = self
            .violations
            .iter()
            .map(|v| Violation {
                method: v.method.clone(),
                line: v.line,
                col: v.col,
                what: v.what.clone(),
                witness: v.witness.as_ref().map(|w| match w {
                    CachedWitness::Trace(steps) => Witness::Trace(
                        steps
                            .iter()
                            .map(|s| WitnessStep {
                                line: s.line,
                                col: s.col,
                                what: s.what.clone(),
                                fact: s.fact.clone(),
                            })
                            .collect(),
                    ),
                    CachedWitness::Unavailable(reason) => {
                        Witness::Unavailable(static_reason(reason))
                    }
                }),
            })
            .collect();
        Report {
            engine,
            violations,
            stats: Stats {
                duration: std::time::Duration::ZERO,
                predicates: self.predicates as usize,
                work: self.work as usize,
                max_states: self.max_states as usize,
                exhausted: self.exhausted,
            },
            verdict: Verdict::Complete,
        }
    }

    /// The compact JSON form stored on disk (one line).
    pub fn to_json(&self) -> Json {
        let witness = |w: &Option<CachedWitness>| match w {
            None => Json::Null,
            Some(CachedWitness::Unavailable(reason)) => {
                obj(vec![("unavailable", Json::Str(reason.clone()))])
            }
            Some(CachedWitness::Trace(steps)) => obj(vec![(
                "trace",
                Json::Arr(
                    steps
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("line", Json::Int(u64::from(s.line))),
                                ("col", Json::Int(u64::from(s.col))),
                                ("what", Json::Str(s.what.clone())),
                                ("fact", Json::Str(s.fact.clone())),
                            ])
                        })
                        .collect(),
                ),
            )]),
        };
        let indices =
            |row: &[u32]| Json::Arr(row.iter().map(|&b| Json::Int(u64::from(b))).collect());
        let cell = match &self.cell {
            None => Json::Null,
            Some(c) => {
                let solution = match &c.solution {
                    CellSolution::MayOne { nodes } => obj(vec![(
                        "may",
                        Json::Arr(nodes.iter().map(|row| indices(row)).collect()),
                    )]),
                    CellSolution::Relational { nodes } => obj(vec![(
                        "rel",
                        Json::Arr(
                            nodes
                                .iter()
                                .map(|vals| Json::Arr(vals.iter().map(|v| indices(v)).collect()))
                                .collect(),
                        ),
                    )]),
                    CellSolution::Unavailable { reason } => {
                        obj(vec![("unavailable", Json::Str(reason.clone()))])
                    }
                };
                obj(vec![
                    ("preds", Json::Int(u64::from(c.preds))),
                    ("bp", Json::Int(c.bp_digest)),
                    ("solution", solution),
                ])
            }
        };
        let delta = match &self.delta {
            None => Json::Null,
            Some(d) => obj(vec![
                ("nodes", Json::Int(u64::from(d.nodes))),
                ("entry", Json::Int(u64::from(d.entry))),
                ("eu", indices(&d.entry_unknown)),
                (
                    "edges",
                    Json::Arr(
                        d.edges
                            .iter()
                            .map(|e| {
                                Json::Arr(vec![
                                    Json::Int(u64::from(e.from)),
                                    Json::Int(u64::from(e.to)),
                                    Json::Int(e.digest),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        obj(vec![
            ("engine", Json::Str(self.engine.clone())),
            ("predicates", Json::Int(self.predicates)),
            ("work", Json::Int(self.work)),
            ("max_states", Json::Int(self.max_states)),
            ("exhausted", Json::Bool(self.exhausted)),
            ("cell", cell),
            ("delta", delta),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            obj(vec![
                                ("method", Json::Str(v.method.clone())),
                                ("line", Json::Int(u64::from(v.line))),
                                ("col", Json::Int(u64::from(v.col))),
                                ("what", Json::Str(v.what.clone())),
                                ("witness", witness(&v.witness)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the compact JSON form, strictly: a missing or mistyped field
    /// is corruption, reported as `Err` so the loader can drop the line.
    pub fn from_json(json: &Json) -> Result<CachedReport, String> {
        let str_of = |j: &Json, key: &str| -> Result<String, String> {
            match j.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing string field {key:?}")),
            }
        };
        let int_of = |j: &Json, key: &str| -> Result<u64, String> {
            match j.get(key) {
                Some(Json::Int(n)) => Ok(*n),
                _ => Err(format!("missing integer field {key:?}")),
            }
        };
        let bool_of = |j: &Json, key: &str| -> Result<bool, String> {
            match j.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("missing boolean field {key:?}")),
            }
        };
        let line_col = |n: u64, key: &str| -> Result<u32, String> {
            u32::try_from(n).map_err(|_| format!("{key} out of range"))
        };
        let Some(Json::Arr(raw_violations)) = json.get("violations") else {
            return Err("missing violations array".to_string());
        };
        let mut violations = Vec::with_capacity(raw_violations.len());
        for rv in raw_violations {
            let witness = match rv.get("witness") {
                Some(Json::Null) | None => None,
                Some(w) => {
                    if let Some(Json::Str(reason)) = w.get("unavailable") {
                        Some(CachedWitness::Unavailable(reason.clone()))
                    } else if let Some(Json::Arr(raw_steps)) = w.get("trace") {
                        let mut steps = Vec::with_capacity(raw_steps.len());
                        for rs in raw_steps {
                            steps.push(CachedStep {
                                line: line_col(int_of(rs, "line")?, "step line")?,
                                col: line_col(int_of(rs, "col")?, "step col")?,
                                what: str_of(rs, "what")?,
                                fact: str_of(rs, "fact")?,
                            });
                        }
                        Some(CachedWitness::Trace(steps))
                    } else {
                        return Err("malformed witness".to_string());
                    }
                }
            };
            violations.push(CachedViolation {
                method: str_of(rv, "method")?,
                line: line_col(int_of(rv, "line")?, "line")?,
                col: line_col(int_of(rv, "col")?, "col")?,
                what: str_of(rv, "what")?,
                witness,
            });
        }
        let indices = |j: &Json| -> Result<Vec<u32>, String> {
            let Json::Arr(row) = j else { return Err("solution row is not an array".to_string()) };
            row.iter()
                .map(|b| match b {
                    Json::Int(n) => {
                        u32::try_from(*n).map_err(|_| "solution index out of range".to_string())
                    }
                    _ => Err("solution index is not an integer".to_string()),
                })
                .collect()
        };
        let cell = match json.get("cell") {
            Some(Json::Null) | None => None,
            Some(c) => {
                let Some(sol) = c.get("solution") else {
                    return Err("cell without solution".to_string());
                };
                let solution = if let Some(Json::Arr(nodes)) = sol.get("may") {
                    CellSolution::MayOne {
                        nodes: nodes.iter().map(&indices).collect::<Result<_, _>>()?,
                    }
                } else if let Some(Json::Arr(nodes)) = sol.get("rel") {
                    let mut rows = Vec::with_capacity(nodes.len());
                    for vals in nodes {
                        let Json::Arr(vals) = vals else {
                            return Err("rel node is not an array".to_string());
                        };
                        rows.push(vals.iter().map(&indices).collect::<Result<_, _>>()?);
                    }
                    CellSolution::Relational { nodes: rows }
                } else if let Some(Json::Str(reason)) = sol.get("unavailable") {
                    CellSolution::Unavailable { reason: reason.clone() }
                } else {
                    return Err("malformed cell solution".to_string());
                };
                Some(CachedCell {
                    preds: line_col(int_of(c, "preds")?, "cell preds")?,
                    bp_digest: int_of(c, "bp")?,
                    solution,
                })
            }
        };
        // optional: absent in pre-delta stores (only disables seeding), so
        // `None`/`Null` is not corruption — but a *present* malformed
        // payload is, like every other field
        let delta = match json.get("delta") {
            Some(Json::Null) | None => None,
            Some(d) => {
                let eu = match d.get("eu") {
                    Some(row) => indices(row)?,
                    None => return Err("delta without eu".to_string()),
                };
                let Some(Json::Arr(raw_edges)) = d.get("edges") else {
                    return Err("delta without edges".to_string());
                };
                let mut edges = Vec::with_capacity(raw_edges.len());
                for re in raw_edges {
                    let Json::Arr(triple) = re else {
                        return Err("delta edge is not an array".to_string());
                    };
                    let [Json::Int(from), Json::Int(to), Json::Int(digest)] = triple.as_slice()
                    else {
                        return Err("delta edge is not [from, to, digest]".to_string());
                    };
                    edges.push(canvas_dataflow::delta::DeltaEdge {
                        from: line_col(*from, "delta edge from")?,
                        to: line_col(*to, "delta edge to")?,
                        digest: *digest,
                    });
                }
                Some(canvas_dataflow::DeltaPayload {
                    nodes: line_col(int_of(d, "nodes")?, "delta nodes")?,
                    entry: line_col(int_of(d, "entry")?, "delta entry")?,
                    entry_unknown: eu,
                    edges,
                })
            }
        };
        Ok(CachedReport {
            engine: str_of(json, "engine")?,
            predicates: int_of(json, "predicates")?,
            work: int_of(json, "work")?,
            max_states: int_of(json, "max_states")?,
            exhausted: bool_of(json, "exhausted")?,
            violations,
            cell,
            delta,
        })
    }
}

/// Hit/miss/invalidation accounting of one store, mirrored into the
/// `incr.cache_*` telemetry counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that fell through to a fresh run.
    pub misses: u64,
    /// Certificates inserted.
    pub stores: u64,
    /// Misses where the same `(method, entry, engine)` cell was previously
    /// cached under a different key — i.e. an edit invalidated it.
    pub invalidations: u64,
    /// Certificates evicted from the hot tier by the byte budget.
    pub evictions: u64,
    /// Hits answered from the spill (evicted-but-disk-backed) tier.
    pub spill_hits: u64,
    /// Certificates loaded from disk at open time.
    pub loaded: u64,
    /// Certificates copied in from other stores by [`CertCache::merge_from`].
    pub merged: u64,
    /// Whether the on-disk file was corrupt (fully or partially dropped).
    pub recovered_from_corruption: bool,
}

/// Outcome of one [`CertCache::merge_from`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MergeStats {
    /// Entries the donor held that the receiver did not: copied over.
    pub merged: u64,
    /// Entries both stores already held byte-identically: skipped.
    pub duplicates: u64,
    /// Keys held by both stores under *different* bytes (a fingerprint
    /// collision or corruption): the receiver's entry wins.
    pub conflicts: u64,
}

/// One hot-tier entry: the decoded certificate plus the exact store line
/// it serializes to. Keeping the line makes the byte accounting exact,
/// persist allocation-free per entry, and the spill handoff a pointer copy.
#[derive(Clone)]
struct HotEntry {
    report: CachedReport,
    line: std::sync::Arc<str>,
}

/// The canvas-cert-cache/2 cost of one entry: `<16-hex-key> <line>\n`.
fn line_cost(line: &str) -> usize {
    16 + 1 + line.len() + 1
}

fn decode_line(line: &str) -> Result<CachedReport, String> {
    let json = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    CachedReport::from_json(&json)
}

/// Default shard count for the hot tier; small budgets collapse to fewer
/// shards inside [`crate::lru::ShardedLru`].
const HOT_SHARDS: usize = 8;

struct Inner {
    /// Last key seen per `(method, entry_unknown, engine)` cell, for
    /// invalidation accounting.
    last_keys: HashMap<(String, bool, String), u64>,
    /// Serialized lines of entries evicted from the hot tier. Only
    /// disk-backed stores spill (the disk tier keeps everything); an
    /// in-memory store forgets evictees. Disjoint from the hot tier by
    /// construction.
    spill: HashMap<u64, std::sync::Arc<str>>,
    stats: CacheStats,
    dirty: bool,
}

/// A thread-safe certificate store. Construction never fails: a missing,
/// unreadable, or corrupt disk file is a cold (or partially warm) start.
///
/// Lock order is `inner` before any hot-tier shard, everywhere.
pub struct CertCache {
    hot: crate::lru::ShardedLru<HotEntry>,
    inner: Mutex<Inner>,
    path: Option<PathBuf>,
}

impl CertCache {
    /// A purely in-memory, unbounded store ([`CertCache::persist`] is a
    /// no-op).
    pub fn in_memory() -> CertCache {
        Self::in_memory_budgeted(None)
    }

    /// An in-memory store with a hot-tier byte budget. With no disk tier
    /// behind it, an evicted certificate is simply gone and the next
    /// lookup for it is a cold miss.
    pub fn in_memory_budgeted(cache_bytes: Option<u64>) -> CertCache {
        CertCache {
            hot: crate::lru::ShardedLru::new(cache_bytes, HOT_SHARDS),
            inner: Mutex::new(Inner {
                last_keys: HashMap::new(),
                spill: HashMap::new(),
                stats: CacheStats::default(),
                dirty: false,
            }),
            path: None,
        }
    }

    /// Opens (or cold-starts) the unbounded store under `dir`. Any disk
    /// problem — missing file, unreadable file, bad header, torn lines —
    /// degrades to fewer warm entries, with a `warning: error[cache/...]`
    /// diagnostic on stderr for anything that was actually dropped.
    pub fn open(dir: &Path) -> CertCache {
        Self::open_budgeted(dir, None)
    }

    /// As [`CertCache::open`], with a hot-tier byte budget. Certificates
    /// beyond the budget live in the spill tier: still persisted, still
    /// hit-able (at a decode cost), just not resident.
    pub fn open_budgeted(dir: &Path, cache_bytes: Option<u64>) -> CertCache {
        let path = dir.join(FILE_NAME);
        let mut entries = HashMap::new();
        let mut stats = CacheStats::default();
        match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                // readable-but-failing is worth a warning; still cold-start
                warn(&CanvasError::io(Stage::Cache, &path.display().to_string(), &e));
                stats.recovered_from_corruption = true;
            }
            Ok(text) => {
                // fault-injection point: simulate a torn write by handing
                // the parser only the first half of the file
                let text = if canvas_faults::active(canvas_faults::Fault::CacheCorrupt) {
                    let mut cut = text.len() / 2;
                    while cut > 0 && !text.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    text[..cut].to_string()
                } else {
                    text
                };
                match Self::parse_store(&text) {
                    Ok((loaded, dropped)) => {
                        stats.loaded = loaded.len() as u64;
                        entries = loaded;
                        if let Some(why) = dropped {
                            warn(&CanvasError::new(
                                Stage::Cache,
                                ErrorKind::Parse,
                                format!(
                                    "{}: {why}; kept {} valid certificate(s)",
                                    path.display(),
                                    stats.loaded
                                ),
                            ));
                            stats.recovered_from_corruption = true;
                        }
                    }
                    Err(why) => {
                        warn(&CanvasError::new(
                            Stage::Cache,
                            ErrorKind::Parse,
                            format!("{}: {why}; starting cold", path.display()),
                        ));
                        stats.recovered_from_corruption = true;
                    }
                }
            }
        }
        // Deterministic placement: admit in sorted-key order, and let
        // whatever overflows the budget start life in the spill tier (not
        // counted as an eviction — nothing was lost, it just never became
        // resident).
        let hot = crate::lru::ShardedLru::new(cache_bytes, HOT_SHARDS);
        let mut spill = HashMap::new();
        let mut keys: Vec<u64> = entries.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let Some(report) = entries.remove(&key) else { continue };
            let line: std::sync::Arc<str> = std::sync::Arc::from(report.to_json().render_compact());
            let cost = line_cost(&line);
            for (k, e) in hot.insert(key, HotEntry { report, line }, cost) {
                spill.insert(k, e.line);
            }
        }
        CertCache {
            hot,
            inner: Mutex::new(Inner { last_keys: HashMap::new(), spill, stats, dirty: false }),
            path: Some(path),
        }
    }

    /// Parses the store text. `Err` = nothing salvageable (bad header);
    /// `Ok((entries, Some(why)))` = a valid prefix with the tail dropped.
    fn parse_store(text: &str) -> Result<(HashMap<u64, CachedReport>, Option<String>), String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(header) if header == STORE_FORMAT => {}
            Some(other) => {
                return Err(format!("unrecognized store header {other:?} (want {STORE_FORMAT})"))
            }
            None => return Err("empty store file".to_string()),
        }
        let mut entries = HashMap::new();
        for (i, line) in lines.enumerate() {
            let parsed = (|| -> Result<(u64, CachedReport), String> {
                let (key_hex, json_text) =
                    line.split_once(' ').ok_or("line is not `<key> <json>`")?;
                let key = Fingerprint::parse(key_hex).ok_or("bad key hex")?;
                let json = Json::parse(json_text).map_err(|e| format!("bad JSON: {e}"))?;
                Ok((key.0, CachedReport::from_json(&json)?))
            })();
            match parsed {
                Ok((key, report)) => {
                    entries.insert(key, report);
                }
                // drop this line AND the rest: mid-file corruption means the
                // tail cannot be trusted either (torn writes tear the tail)
                Err(why) => return Ok((entries, Some(format!("line {}: {why}", i + 2)))),
            }
        }
        Ok((entries, None))
    }

    /// Looks a cell's certificate up, doing hit/miss/invalidation
    /// accounting. `method`/`entry_unknown`/`engine` identify the logical
    /// cell, so a key change for a cell the store answered before is
    /// counted as an invalidation.
    pub fn lookup(
        &self,
        key: Fingerprint,
        method: &str,
        entry_unknown: bool,
        engine: &str,
    ) -> Option<CachedReport> {
        self.lookup_stale(key, method, entry_unknown, engine).0
    }

    /// As [`CertCache::lookup`], additionally returning — on a miss — the
    /// certificate the same logical cell was last answered from, under its
    /// previous key. That *stale* entry is exactly the pre-edit fixpoint
    /// the delta re-solve seeds from. Since the hot tier became evictable
    /// the previous key may no longer resolve; a lost seed only means the
    /// re-solve starts cold, which is sound. Accounting is identical to
    /// `lookup`.
    pub fn lookup_stale(
        &self,
        key: Fingerprint,
        method: &str,
        entry_unknown: bool,
        engine: &str,
    ) -> (Option<CachedReport>, Option<CachedReport>) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let cell = (method.to_string(), entry_unknown, engine.to_string());
        let previous = inner.last_keys.insert(cell, key.0);
        let mut found = self.hot.get(key.0).map(|e| e.report);
        let mut from_spill = false;
        if found.is_none() {
            if let Some(line) = inner.spill.remove(&key.0) {
                // a decode failure is unreachable short of in-process
                // memory corruption (we wrote that line ourselves), and
                // degrades to a miss all the same
                if let Ok(report) = decode_line(&line) {
                    // promote back into the hot tier; whatever that
                    // displaces takes its place in the spill
                    from_spill = true;
                    let entry = HotEntry { report: report.clone(), line: line.clone() };
                    for (k, e) in self.hot.insert(key.0, entry, line_cost(&line)) {
                        inner.stats.evictions += 1;
                        CACHE_EVICTIONS.incr();
                        inner.spill.insert(k, e.line);
                    }
                    found = Some(report);
                }
            }
        }
        let mut stale = None;
        match &found {
            Some(_) => {
                inner.stats.hits += 1;
                CACHE_HITS.incr();
                if from_spill {
                    inner.stats.spill_hits += 1;
                }
            }
            None => {
                inner.stats.misses += 1;
                CACHE_MISSES.incr();
                if previous.is_some_and(|p| p != key.0) {
                    inner.stats.invalidations += 1;
                    CACHE_INVALIDATIONS.incr();
                    stale = previous.and_then(|p| {
                        self.hot
                            .peek(p)
                            .map(|e| e.report)
                            .or_else(|| inner.spill.get(&p).and_then(|line| decode_line(line).ok()))
                    });
                }
            }
        }
        (found, stale)
    }

    /// Inserts a certificate under `key`, evicting least-recently-used
    /// entries if the hot tier outgrows its byte budget.
    pub fn store(&self, key: Fingerprint, report: CachedReport) {
        let line: std::sync::Arc<str> = std::sync::Arc::from(report.to_json().render_compact());
        let cost = line_cost(&line);
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.spill.remove(&key.0);
        inner.stats.stores += 1;
        CACHE_STORES.incr();
        CACHE_BYTES.add(cost as u64);
        for (k, e) in self.hot.insert(key.0, HotEntry { report, line }, cost) {
            inner.stats.evictions += 1;
            CACHE_EVICTIONS.incr();
            if self.path.is_some() {
                inner.spill.insert(k, e.line);
            }
        }
        inner.dirty = true;
    }

    /// Every certificate line currently held (hot tier plus spill), in
    /// sorted key order — exactly the lines [`CertCache::persist`] would
    /// write. The export is the store's merge interchange format: entries
    /// are content-addressed, so a line is a self-contained certificate.
    pub fn export_lines(&self) -> Vec<(Fingerprint, std::sync::Arc<str>)> {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut lines: Vec<(u64, std::sync::Arc<str>)> =
            inner.spill.iter().map(|(k, l)| (*k, l.clone())).collect();
        lines.extend(self.hot.entries().into_iter().map(|(k, e)| (k, e.line)));
        drop(inner);
        lines.sort_unstable_by_key(|(k, _)| *k);
        lines.into_iter().map(|(k, l)| (Fingerprint(k), l)).collect()
    }

    /// Copies every certificate of `other` that this store does not
    /// already hold. The merge is *lossless* — no entry of either store is
    /// dropped — and *order-independent*: entries are content-addressed,
    /// so a key present in both stores names the same certificate and the
    /// duplicate is skipped, whichever store donated first. A key present
    /// in both under *different* bytes is counted as a conflict (it can
    /// be benign: a delta-seeded re-solve records different `work` for
    /// the same verdict) and resolved deterministically in favor of the
    /// lexicographically smaller line, keeping the merge commutative.
    pub fn merge_from(&self, other: &CertCache) -> MergeStats {
        // snapshot before taking our own lock: two stores merging into
        // each other concurrently must not deadlock on crossed inner locks
        let donor = other.export_lines();
        let mut out = MergeStats::default();
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (key, line) in donor {
            let in_hot = self.hot.peek(key.0).map(|e| e.line);
            let existing = in_hot.clone().or_else(|| inner.spill.get(&key.0).cloned());
            if let Some(mine) = existing {
                if *mine == *line {
                    out.duplicates += 1;
                } else {
                    // Same key, different bytes. This is benign when two
                    // runs solved the same cell along different paths (a
                    // delta-seeded re-solve records different `work` than a
                    // from-⊥ solve). Resolve deterministically — keep the
                    // lexicographically smaller line — so merge is
                    // commutative: merge(a, b) and merge(b, a) persist
                    // byte-identical stores even under conflicts.
                    out.conflicts += 1;
                    if *line < *mine {
                        if let Ok(report) = decode_line(&line) {
                            if in_hot.is_some() {
                                let cost = line_cost(&line);
                                CACHE_BYTES.add(cost as u64);
                                for (k, e) in self.hot.insert(
                                    key.0,
                                    HotEntry { report, line: line.clone() },
                                    cost,
                                ) {
                                    inner.stats.evictions += 1;
                                    CACHE_EVICTIONS.incr();
                                    if self.path.is_some() {
                                        inner.spill.insert(k, e.line);
                                    }
                                }
                            }
                            if inner.spill.contains_key(&key.0) {
                                inner.spill.insert(key.0, line.clone());
                            }
                            inner.dirty = true;
                        }
                    }
                }
                continue;
            }
            // a decode failure is unreachable (the donor wrote that line
            // itself); counted as a conflict rather than admitted blindly
            let Ok(report) = decode_line(&line) else {
                out.conflicts += 1;
                continue;
            };
            let cost = line_cost(&line);
            CACHE_MERGED.incr();
            CACHE_BYTES.add(cost as u64);
            for (k, e) in self.hot.insert(key.0, HotEntry { report, line: line.clone() }, cost) {
                inner.stats.evictions += 1;
                CACHE_EVICTIONS.incr();
                if self.path.is_some() {
                    inner.spill.insert(k, e.line);
                }
            }
            inner.stats.merged += 1;
            out.merged += 1;
            inner.dirty = true;
        }
        out
    }

    /// Number of certificates currently held (hot tier plus spill).
    pub fn len(&self) -> usize {
        let spill =
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).spill.len();
        self.hot.len() + spill
    }

    /// Number of certificates resident in the hot tier.
    pub fn memory_entries(&self) -> usize {
        self.hot.len()
    }

    /// Hot-tier occupancy in store-line bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.hot.bytes()
    }

    /// The configured hot-tier byte budget (`None` = unbounded).
    pub fn budget_bytes(&self) -> Option<u64> {
        self.hot.budget_bytes()
    }

    /// Whether the store holds no certificates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the accounting counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats
    }

    /// Resets the hit/miss/invalidation counters (entries are kept).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let loaded = inner.stats.loaded;
        let recovered = inner.stats.recovered_from_corruption;
        inner.stats =
            CacheStats { loaded, recovered_from_corruption: recovered, ..CacheStats::default() };
    }

    /// Writes the store to disk (no-op for in-memory stores or when nothing
    /// changed since the last persist). Keys are written in sorted order so
    /// the file is byte-stable for identical contents.
    ///
    /// # Errors
    ///
    /// A `cache`-stage I/O error when the directory or file cannot be
    /// written; callers typically warn and continue.
    pub fn persist(&self) -> Result<(), CanvasError> {
        let Some(path) = &self.path else { return Ok(()) };
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !inner.dirty {
            return Ok(());
        }
        // the disk tier is the union of both in-memory tiers: eviction
        // never loses a disk-backed certificate
        let mut lines: Vec<(u64, std::sync::Arc<str>)> =
            inner.spill.iter().map(|(k, l)| (*k, l.clone())).collect();
        lines.extend(self.hot.entries().into_iter().map(|(k, e)| (k, e.line)));
        lines.sort_unstable_by_key(|(k, _)| *k);
        let mut out = String::with_capacity(64 * lines.len());
        out.push_str(STORE_FORMAT);
        out.push('\n');
        for (key, line) in lines {
            out.push_str(&Fingerprint(key).to_string());
            out.push(' ');
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CanvasError::io(Stage::Cache, &dir.display().to_string(), &e))?;
        }
        std::fs::write(path, out)
            .map_err(|e| CanvasError::io(Stage::Cache, &path.display().to_string(), &e))?;
        inner.dirty = false;
        Ok(())
    }
}

/// Store corruption is tolerated, not hidden: every dropped entry or
/// cold-start is a structured warn-level record (which the event log still
/// echoes to stderr as `warning: error[cache/...]: ...` for TTY use).
fn warn(e: &CanvasError) {
    canvas_telemetry::events::warn("incr.store", e.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CachedReport {
        CachedReport {
            engine: "scmp-fds".to_string(),
            predicates: 12,
            work: 345,
            max_states: 1,
            exhausted: false,
            violations: vec![
                CachedViolation {
                    method: "Main.main".to_string(),
                    line: 10,
                    col: 21,
                    what: "i1.next()".to_string(),
                    witness: Some(CachedWitness::Trace(vec![CachedStep {
                        line: 9,
                        col: 9,
                        what: "v.add(\"x\")".to_string(),
                        fact: "stale{i1}".to_string(),
                    }])),
                },
                CachedViolation {
                    method: "Main.main".to_string(),
                    line: 13,
                    col: 21,
                    what: "i1.next()".to_string(),
                    witness: Some(CachedWitness::Unavailable(
                        "the TVLA engines do not record provenance".to_string(),
                    )),
                },
                CachedViolation {
                    method: "Main.main".to_string(),
                    line: 14,
                    col: 1,
                    what: "i2.next()".to_string(),
                    witness: None,
                },
            ],
            cell: None,
            delta: None,
        }
    }

    fn sample_with_cell(solution: CellSolution) -> CachedReport {
        CachedReport {
            cell: Some(CachedCell { preds: 4, bp_digest: 0xfeed_f00d_dead_beef, solution }),
            ..sample()
        }
    }

    #[test]
    fn cell_solutions_round_trip_through_json() {
        for solution in [
            CellSolution::MayOne { nodes: vec![vec![], vec![0, 2], vec![1, 3]] },
            CellSolution::Relational {
                nodes: vec![vec![vec![], vec![0, 1]], vec![], vec![vec![2]]],
            },
            CellSolution::Unavailable { reason: "no solution".to_string() },
        ] {
            let r = sample_with_cell(solution);
            let line = r.to_json().render_compact();
            assert!(!line.contains('\n'));
            let back =
                CachedReport::from_json(&Json::parse(&line).expect("parses")).expect("decodes");
            assert_eq!(back, r);
        }
    }

    #[test]
    fn cached_report_json_round_trips() {
        let r = sample();
        let line = r.to_json().render_compact();
        assert!(!line.contains('\n'));
        let back = CachedReport::from_json(&Json::parse(&line).expect("parses")).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn report_round_trip_preserves_everything_but_duration() {
        let cached = sample();
        let report = cached.to_report(Engine::ScmpFds);
        assert_eq!(report.stats.duration, std::time::Duration::ZERO);
        assert_eq!(report.stats.work, 345);
        assert_eq!(report.lines(), vec![10, 13, 14]);
        let back = CachedReport::from_report(&report).expect("complete");
        assert_eq!(back, cached);
    }

    #[test]
    fn inconclusive_reports_are_never_cached() {
        let r = Report::inconclusive(Engine::ScmpFds, "deadline".to_string(), Stats::default());
        assert_eq!(CachedReport::from_report(&r), None);
    }

    #[test]
    fn unknown_unavailable_reasons_degrade_to_the_generic_static() {
        let cached = CachedReport {
            violations: vec![CachedViolation {
                method: "M.m".to_string(),
                line: 1,
                col: 1,
                what: "x".to_string(),
                witness: Some(CachedWitness::Unavailable("made-up reason".to_string())),
            }],
            ..sample()
        };
        let report = cached.to_report(Engine::ScmpFds);
        match &report.violations[0].witness {
            Some(Witness::Unavailable(reason)) => {
                assert_eq!(*reason, "witness detail not retained by the certificate cache");
            }
            other => panic!("expected unavailable witness, got {other:?}"),
        }
    }

    #[test]
    fn lookup_accounts_hits_misses_and_invalidations() {
        let cache = CertCache::in_memory();
        let k1 = Fingerprint(1);
        let k2 = Fingerprint(2);
        assert!(cache.lookup(k1, "Main.main", false, "scmp-fds").is_none());
        cache.store(k1, sample());
        assert!(cache.lookup(k1, "Main.main", false, "scmp-fds").is_some());
        // same cell, new key: the miss is an invalidation
        assert!(cache.lookup(k2, "Main.main", false, "scmp-fds").is_none());
        // different cell, first sighting: a plain miss
        assert!(cache.lookup(k2, "Main.other", false, "scmp-fds").is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 3, 1));
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn persist_and_reopen_round_trips() {
        let dir = std::env::temp_dir().join(format!("canvas-incr-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CertCache::open(&dir);
        assert!(cache.is_empty());
        cache.store(Fingerprint(42), sample());
        cache.persist().expect("writes");
        let reopened = CertCache::open(&dir);
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.stats().loaded, 1);
        assert!(!reopened.stats().recovered_from_corruption);
        assert_eq!(
            reopened.lookup(Fingerprint(42), "Main.main", false, "scmp-fds"),
            Some(sample())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_files_degrade_to_cold_or_partial_misses() {
        let dir = std::env::temp_dir().join(format!("canvas-incr-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(FILE_NAME);
        // bad header: everything dropped
        std::fs::write(&path, "some-other-format/9\n").expect("write");
        let cache = CertCache::open(&dir);
        assert!(cache.is_empty());
        assert!(cache.stats().recovered_from_corruption);
        // valid first line, torn second line: the prefix survives
        let good = format!("{} {}", Fingerprint(7), sample().to_json().render_compact());
        std::fs::write(&path, format!("{STORE_FORMAT}\n{good}\n0bad hex {{\"trunc"))
            .expect("write");
        let cache = CertCache::open(&dir);
        assert_eq!(cache.len(), 1);
        assert!(cache.stats().recovered_from_corruption);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_in_memory_store_evicts_and_stays_within_budget() {
        let line = sample().to_json().render_compact();
        let cost = (line.len() + 18) as u64;
        // room for two entries, not three
        let budget = cost * 2 + cost / 2;
        let cache = CertCache::in_memory_budgeted(Some(budget));
        for k in 1..=3 {
            cache.store(Fingerprint(k), sample());
        }
        assert!(cache.memory_bytes() <= budget, "occupancy within budget");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.memory_entries(), 2);
        // no disk tier: the evicted certificate is a cold miss
        assert!(cache.lookup(Fingerprint(1), "Main.main", false, "scmp-fds").is_none());
        assert!(cache.lookup(Fingerprint(3), "Main.x3", false, "scmp-fds").is_some());
        assert_eq!(cache.stats().spill_hits, 0);
    }

    #[test]
    fn disk_backed_eviction_spills_and_refetches_byte_identically() {
        let dir = std::env::temp_dir().join(format!("canvas-incr-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let line = sample().to_json().render_compact();
        let cost = (line.len() + 18) as u64;
        let budget = cost * 2 + cost / 2;
        {
            let cache = CertCache::open_budgeted(&dir, Some(budget));
            for k in 1..=3 {
                cache.store(Fingerprint(k), sample());
            }
            assert_eq!(cache.stats().evictions, 1);
            assert_eq!((cache.memory_entries(), cache.len()), (2, 3));
            // the evicted key still answers, from the spill tier, with a
            // byte-identical certificate
            let back = cache.lookup(Fingerprint(1), "Main.main", false, "scmp-fds");
            assert_eq!(back.as_ref().map(|r| r.to_json().render_compact()), Some(line.clone()));
            let stats = cache.stats();
            assert_eq!((stats.hits, stats.spill_hits), (1, 1));
            // the promotion displaced another entry, so occupancy still fits
            assert!(cache.memory_bytes() <= budget);
            cache.persist().expect("writes");
        }
        // eviction never loses a disk-backed certificate
        let reopened = CertCache::open(&dir);
        assert_eq!(reopened.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_open_places_overflow_in_spill_without_counting_evictions() {
        let dir = std::env::temp_dir().join(format!("canvas-incr-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = CertCache::open(&dir);
            for k in 1..=4 {
                cache.store(Fingerprint(k), sample());
            }
            cache.persist().expect("writes");
        }
        let line = sample().to_json().render_compact();
        let cost = (line.len() + 18) as u64;
        let budget = cost * 2 + cost / 2;
        let cache = CertCache::open_budgeted(&dir, Some(budget));
        assert_eq!(cache.len(), 4, "all four certificates are addressable");
        assert_eq!(cache.memory_entries(), 2, "only two fit the hot tier");
        assert_eq!(cache.stats().evictions, 0, "load placement is not an eviction");
        assert!(cache.memory_bytes() <= budget);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_lossless_and_order_independent() {
        let sample2 = CachedReport { work: 999, ..sample() };
        let build = |keys: &[(u64, &CachedReport)]| {
            let c = CertCache::in_memory();
            for (k, r) in keys {
                c.store(Fingerprint(*k), (*r).clone());
            }
            c
        };
        let render = |c: &CertCache| {
            c.export_lines()
                .into_iter()
                .map(|(k, l)| format!("{k} {l}"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // overlapping stores: 1,2 vs 2,3 (key 2 identical in both)
        let ab = build(&[(1, &sample()), (2, &sample2)]);
        let stats = ab.merge_from(&build(&[(2, &sample2), (3, &sample())]));
        assert_eq!(stats, MergeStats { merged: 1, duplicates: 1, conflicts: 0 });
        let ba = build(&[(2, &sample2), (3, &sample())]);
        ba.merge_from(&build(&[(1, &sample()), (2, &sample2)]));
        assert_eq!(render(&ab), render(&ba), "merge must be order-independent");
        assert_eq!(ab.len(), 3);
        // every cell answerable from either input is answerable post-merge
        for k in [1, 2, 3] {
            assert!(ab.lookup(Fingerprint(k), &format!("M.m{k}"), false, "scmp-fds").is_some());
        }
        assert_eq!(ab.stats().merged, 1);
        // a colliding key under different bytes: counted as a conflict and
        // resolved to the lexicographically smaller line on both merge
        // orders, so even conflicted merges stay commutative
        let x = build(&[(7, &sample())]);
        let conflict = x.merge_from(&build(&[(7, &sample2)]));
        assert_eq!(conflict, MergeStats { merged: 0, duplicates: 0, conflicts: 1 });
        let y = build(&[(7, &sample2)]);
        let conflict = y.merge_from(&build(&[(7, &sample())]));
        assert_eq!(conflict, MergeStats { merged: 0, duplicates: 0, conflicts: 1 });
        assert_eq!(render(&x), render(&y), "conflict resolution must be order-independent");
        // `sample()`'s line happens to be the smaller one ("work":345 <
        // "work":999), so both stores converge on it
        for c in [&x, &y] {
            assert_eq!(
                c.lookup(Fingerprint(7), "M.c", false, "scmp-fds").map(|r| r.work),
                Some(sample().work)
            );
        }
    }

    #[test]
    fn injected_cache_corruption_forces_recovery() {
        let dir = std::env::temp_dir().join(format!("canvas-incr-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CertCache::open(&dir);
        for k in 0..8 {
            cache.store(Fingerprint(k), sample());
        }
        cache.persist().expect("writes");
        canvas_faults::force(Some(canvas_faults::Fault::CacheCorrupt));
        let torn = CertCache::open(&dir);
        canvas_faults::unforce();
        // the torn store recovered (some prefix, strictly fewer entries)
        assert!(torn.stats().recovered_from_corruption);
        assert!(torn.len() < 8, "half the file must be gone, got {}", torn.len());
        // and without the fault the full store is intact
        let intact = CertCache::open(&dir);
        assert_eq!(intact.len(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
