//! A minimal JSON value, emitter, and parser shared by the metrics
//! documents (`BENCH_eval.json`), the certificate store, and the `canvas
//! serve` newline-delimited protocol (the workspace builds offline, so no
//! serde).
//!
//! The schemas need only unsigned 64-bit integers (counters, nanosecond
//! totals), strings, booleans, arrays, and objects; object keys keep
//! insertion order so the emitted documents are byte-stable run-to-run.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (the schema has no floats or negatives).
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Builds an object from `(key, value)` pairs (insertion order preserved).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Json {
    /// The value under `key`, if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — the form required by
    /// newline-delimited protocols (`canvas serve`) and the line-oriented
    /// certificate store, where one value must be one line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input (including
    /// floats and negative numbers, which the schema never produces).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(format!("unsupported non-integer number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Int)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad codepoint at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar (the input is a valid &str)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Structural differences between two documents, as `path: a != b` lines
/// (empty when identical). Object keys are matched by name, arrays by index.
pub fn diff(a: &Json, b: &Json) -> Vec<String> {
    let mut out = Vec::new();
    diff_into(a, b, "$", &mut out);
    out
}

fn diff_into(a: &Json, b: &Json, path: &str, out: &mut Vec<String>) {
    match (a, b) {
        (Json::Obj(pa), Json::Obj(pb)) => {
            for (k, va) in pa {
                match b.get(k) {
                    Some(vb) => diff_into(va, vb, &format!("{path}.{k}"), out),
                    None => out.push(format!("{path}.{k}: present vs missing")),
                }
            }
            for (k, _) in pb {
                if a.get(k).is_none() {
                    out.push(format!("{path}.{k}: missing vs present"));
                }
            }
        }
        (Json::Arr(xa), Json::Arr(xb)) => {
            if xa.len() != xb.len() {
                out.push(format!("{path}: length {} vs {}", xa.len(), xb.len()));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff_into(va, vb, &format!("{path}[{i}]"), out);
            }
        }
        _ if a == b => {}
        _ => out.push(format!("{path}: {} vs {}", scalar(a), scalar(b))),
    }
}

fn scalar(v: &Json) -> String {
    match v {
        Json::Arr(_) | Json::Obj(_) => "<composite>".to_string(),
        other => {
            let mut s = String::new();
            other.render_into(&mut s, 0);
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        obj(vec![
            ("schema", Json::Str("canvas-bench-eval/1".to_string())),
            (
                "cells",
                Json::Arr(vec![
                    obj(vec![
                        ("name", Json::Str("fig3 \"quoted\"\n".to_string())),
                        ("work", Json::Int(u64::MAX)),
                        ("failed", Json::Bool(false)),
                    ]),
                    Json::Null,
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ])
    }

    #[test]
    fn roundtrip_is_identity() {
        let d = doc();
        let text = d.render();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back, d);
        // and re-rendering is byte-stable
        assert_eq!(back.render(), text);
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let d = doc();
        let line = d.render_compact();
        assert!(!line.contains('\n'), "{line:?}");
        assert!(!line.contains(": "), "no pretty separators: {line:?}");
        assert_eq!(Json::parse(&line), Ok(d));
        assert_eq!(Json::Obj(vec![]).render_compact(), "{}");
        assert_eq!(Json::Arr(vec![]).render_compact(), "[]");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1.5", "-3", "nul", "\"abc", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage_after_the_top_level_value() {
        // a valid prefix must not parse prefix-only; the error names the
        // byte offset of the first trailing character
        for (input, at) in
            [("{} {}", 3), ("[1] 2", 4), ("true false", 5), ("null,", 4), ("\"s\"x", 3)]
        {
            let err = Json::parse(input).expect_err(input);
            assert!(
                err.contains(&format!("trailing input at byte {at}")),
                "{input:?}: error {err:?} should point at byte {at}"
            );
        }
        // trailing *whitespace* is not garbage
        assert_eq!(Json::parse("42 \n"), Ok(Json::Int(42)));
    }

    #[test]
    fn parse_error_paths_report_offsets() {
        for (bad, needle) in [
            ("{\"k\" 1}", "expected ':'"),
            ("[1 2]", "expected ',' or ']'"),
            ("{\"a\":1 \"b\":2}", "expected ',' or '}'"),
            ("\"\\q\"", "bad escape"),
            ("\"\\u12\"", "bad \\u escape"),
            ("\"\\ud800\"", "bad codepoint"),
            ("1e3", "non-integer"),
            ("99999999999999999999", "bad number"),
            ("tru", "expected \"true\""),
            ("\"open", "unterminated string"),
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?}: error {err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn diff_reports_paths() {
        let a = obj(vec![("x", Json::Int(1)), ("y", Json::Arr(vec![Json::Int(2)]))]);
        let b = obj(vec![("x", Json::Int(3)), ("y", Json::Arr(vec![Json::Int(2)]))]);
        let d = diff(&a, &b);
        assert_eq!(d, vec!["$.x: 1 vs 3".to_string()]);
        assert!(diff(&a, &a).is_empty());
        let c = obj(vec![("x", Json::Int(1))]);
        let d = diff(&a, &c);
        assert_eq!(d, vec!["$.y: present vs missing".to_string()]);
    }

    #[test]
    fn get_looks_up_object_keys() {
        let d = doc();
        assert_eq!(d.get("schema"), Some(&Json::Str("canvas-bench-eval/1".to_string())));
        assert_eq!(d.get("nope"), None);
        assert_eq!(Json::Int(3).get("x"), None);
    }
}
