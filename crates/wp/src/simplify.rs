//! DNF minimization under a precondition assumption.
//!
//! After computing a raw weakest precondition, the derivation procedure
//! simplifies it *modulo the method's own precondition* (the paper assumes
//! the `requires` of the executing method held on entry — a violation would
//! already have been reported). This is what turns the exact WP of
//! `j.remove()` on `stale(i)`,
//! `(i!=j && i.set==j.set) || (i!=j && i.set!=j.set && stale(i))`,
//! into the paper's `stale(i) || mutx(i,j)`.

use canvas_logic::{models::ModelEnv, Dnf, Formula, Literal, TypeOracle};

/// Simplifies formulas to minimized DNF under an assumption, sharing one
/// [`ModelEnv`] across all the entailment queries of a single WP result.
pub struct Simplifier<'a> {
    oracle: &'a dyn TypeOracle,
}

impl<'a> Simplifier<'a> {
    /// Creates a simplifier using `oracle` for field types (pass the spec's
    /// oracle so typing prunes the model space).
    pub fn new(oracle: &'a dyn TypeOracle) -> Self {
        Simplifier { oracle }
    }

    /// Returns the disjuncts (conjunctions of literals) of a minimized DNF
    /// of `f`, where minimality and equivalence are judged *under
    /// `assumption`*. `vec![]` means `false`; a disjunct equal to
    /// `Formula::True` means the whole formula is `true`.
    pub fn minimized_disjuncts(&self, f: &Formula, assumption: &Formula) -> Vec<Formula> {
        let dnf = f.to_dnf_cached();
        if dnf.is_false() {
            return Vec::new();
        }
        if dnf.is_true() {
            return vec![Formula::True];
        }
        let original = dnf.to_formula();
        let env = ModelEnv::new([&original, assumption], self.oracle);

        // working copy: vector of literal-vectors
        let mut conjs: Vec<Vec<Literal>> =
            dnf.conjuncts().iter().map(|c| c.iter().cloned().collect()).collect();

        // 1. drop conjuncts unsatisfiable under the assumption
        conjs.retain(|c| env.satisfiable_under(assumption, &conj_formula(c)));

        // 2. greedy literal elimination, preserving equivalence under the
        //    assumption
        for ci in 0..conjs.len() {
            let mut li = 0;
            while li < conjs[ci].len() {
                let mut trial = conjs.clone();
                trial[ci].remove(li);
                let trial_f = dnf_formula(&trial);
                if env.equivalent_under(assumption, &trial_f, &original) {
                    conjs = trial;
                } else {
                    li += 1;
                }
            }
        }

        // 3. drop conjuncts implied by the remaining ones
        let mut ci = 0;
        while ci < conjs.len() {
            if conjs.len() == 1 {
                break;
            }
            let mut trial = conjs.clone();
            trial.remove(ci);
            let trial_f = dnf_formula(&trial);
            if env.equivalent_under(assumption, &trial_f, &original) {
                conjs = trial;
            } else {
                ci += 1;
            }
        }

        // 4. canonicalize through Dnf once more (dedup, ordering)
        let mut out = Dnf::fals();
        for c in &conjs {
            match Dnf::from_formula(&conj_formula(c)) {
                d if d.is_true() => return vec![Formula::True],
                d => {
                    for conj in d.conjuncts() {
                        out.push_conjunct(conj.clone());
                    }
                }
            }
        }
        out.conjuncts().iter().map(|c| Formula::and(c.iter().map(Literal::to_formula))).collect()
    }

    /// Whether `f` and `g` agree under `assumption`.
    pub fn equivalent(&self, assumption: &Formula, f: &Formula, g: &Formula) -> bool {
        canvas_logic::models::equivalent(self.oracle, assumption, f, g)
    }
}

fn conj_formula(lits: &[Literal]) -> Formula {
    Formula::and(lits.iter().map(Literal::to_formula))
}

fn dnf_formula(conjs: &[Vec<Literal>]) -> Formula {
    Formula::or(conjs.iter().map(|c| conj_formula(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_logic::{AccessPath, TypeName, Var};

    fn oracle(owner: &TypeName, field: &str) -> Option<TypeName> {
        match (owner.as_str(), field) {
            ("Iterator", "set") => Some(TypeName::new("Set")),
            ("Iterator", "defVer") | ("Set", "ver") => Some(TypeName::new("Version")),
            _ => None,
        }
    }

    fn iv(n: &str) -> Var {
        Var::new(n, TypeName::new("Iterator"))
    }

    fn stale(n: &str) -> Formula {
        Formula::ne(
            AccessPath::of(iv(n)).field("defVer"),
            AccessPath::of(iv(n)).field("set").field("ver"),
        )
    }

    #[test]
    fn paper_remove_simplification() {
        let ivar = AccessPath::of(iv("i"));
        let jvar = AccessPath::of(iv("j"));
        let iset = AccessPath::of(iv("i")).field("set");
        let jset = AccessPath::of(iv("j")).field("set");
        let exact = Formula::or([
            Formula::and([
                Formula::ne(ivar.clone(), jvar.clone()),
                Formula::eq(iset.clone(), jset.clone()),
            ]),
            Formula::and([
                Formula::ne(ivar.clone(), jvar.clone()),
                Formula::ne(iset.clone(), jset.clone()),
                stale("i"),
            ]),
        ]);
        let assumption = Formula::not(stale("j"));
        let s = Simplifier::new(&oracle);
        let ds = s.minimized_disjuncts(&exact, &assumption);
        assert_eq!(ds.len(), 2, "{ds:?}");
        let strs: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
        // one disjunct is stale(i), the other is mutx(i,j)
        assert!(strs.iter().any(|s| s == "i.defVer != i.set.ver"), "{strs:?}");
        assert!(strs.iter().any(|s| s.contains("i.set == j.set") && s.contains("!=")), "{strs:?}");
    }

    #[test]
    fn constants() {
        let s = Simplifier::new(&oracle);
        assert!(s.minimized_disjuncts(&Formula::False, &Formula::True).is_empty());
        assert_eq!(s.minimized_disjuncts(&Formula::True, &Formula::True), vec![Formula::True]);
        // contradiction collapses to false
        let f = Formula::and([stale("i"), Formula::not(stale("i"))]);
        assert!(s.minimized_disjuncts(&f, &Formula::True).is_empty());
        // tautology collapses to true
        let f = Formula::or([stale("i"), Formula::not(stale("i"))]);
        assert_eq!(s.minimized_disjuncts(&f, &Formula::True), vec![Formula::True]);
    }

    #[test]
    fn subsumed_disjunct_dropped() {
        // stale(i) || (stale(i) && stale(j))  →  stale(i)
        let f = Formula::or([stale("i"), Formula::and([stale("i"), stale("j")])]);
        let s = Simplifier::new(&oracle);
        let ds = s.minimized_disjuncts(&f, &Formula::True);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].to_string(), "i.defVer != i.set.ver");
    }
}
