//! Weakest preconditions and staged abstraction derivation (paper §4).
//!
//! This crate implements the paper's core contribution: from an EASL
//! component specification, *derive* a specialized abstraction consisting of
//!
//! * **instrumentation predicate families** (§4.1) — e.g. for CMP the four
//!   families `stale(i)`, `iterof(i,v)`, `mutx(i,j)`, `same(v,w)` of Fig. 4 —
//!   obtained by iterated symbolic weakest-precondition computation from the
//!   `requires` clauses, with disjunct splitting (rule 2) so that a cheap
//!   independent-attribute analysis retains relational precision; and
//! * **component method abstractions** (§4.2) — update rules
//!   `p0 := p1 ∨ … ∨ pk` per client-visible statement form (component call,
//!   allocation, reference copy), the machine form of the paper's Fig. 5.
//!
//! The derivation runs entirely at *certifier-generation time*: it may use
//! the (exponential-ish) small-model equivalence checks of
//! [`canvas_logic::models`] freely without affecting client-analysis cost.
//!
//! # Example
//!
//! ```
//! use canvas_wp::derive_abstraction;
//!
//! let spec = canvas_easl::builtin::cmp();
//! let derived = derive_abstraction(&spec)?;
//! let names: Vec<&str> = derived.families().iter().map(|f| f.name()).collect();
//! assert_eq!(names, ["stale", "iterof", "mutx", "same"]);
//! # Ok::<(), canvas_wp::DeriveError>(())
//! ```

// the panic-free frontier: code reachable from external input must
// return typed errors, never panic (test code is exempt)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod derive;
mod simplify;
mod sym;

// The data model lives in `canvas_abstraction::derived` (so the trusted
// certificate checker can read abstractions without depending on this
// crate); re-exported here so downstream code keeps one import path.
pub use canvas_abstraction::{
    CheckInst, DerivationStats, Derived, Family, FamilyId, RuleRhs, RuleVar, StmtAbstraction,
    StmtForm, UpdateRule,
};
pub use derive::{derive_abstraction, derive_conservative, derive_with_budget, DeriveError};
pub use simplify::Simplifier;
pub use sym::{client_stmt_actions, wp_through_actions, Action, OperandBinding};
