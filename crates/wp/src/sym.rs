//! Symbolic execution of EASL bodies as *action lists*, and backward
//! weakest-precondition transformation of alias formulas through them.
//!
//! A client-visible statement form (component call, allocation, copy) is
//! first compiled — by inlining the EASL method and constructor bodies — into
//! a straight-line list of [`Action`]s over logic terms:
//!
//! * `AssignVar x := ρ` — the client variable `x` is bound to the value of
//!   path `ρ` (used for copies and for binding call results);
//! * `HeapWrite ρ.f := σ` — the component field `f` of the object denoted by
//!   `ρ` is overwritten with the value of `σ`.
//!
//! Allocations introduce *fresh variables* (`$newK`), which behave as
//! ordinary path roots during the backward pass and are resolved to
//! [`canvas_logic::AllocToken`]s at the end — at which point freshness
//! collapses `path == token` atoms to `false` (an allocation never aliases a
//! pre-existing value).
//!
//! The backward pass is the textbook WP for heap assignments: reading `t.f`
//! after `P.f := V` yields `ite(t == P, V, t.f)`, lifted from terms to
//! formulas through [`CondTerm`].

use std::collections::HashMap;

use canvas_easl::{ClassSpec, MethodSpec, Spec, SpecExpr, SpecStmt};
use canvas_logic::{AccessPath, AllocToken, Formula, Term, TypeName, Var};

/// One primitive state change of a component statement form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// `var := value-of(path)` — binds a client variable.
    AssignVar {
        /// The assigned client variable.
        var: Var,
        /// The path whose (pre-action) value is stored.
        path: AccessPath,
    },
    /// `target.f := value-of(path)` where `target` is the full field path
    /// (e.g. `this.set.ver`); the written field is the last one.
    HeapWrite {
        /// Path to the written location (last field is the written field).
        target: AccessPath,
        /// The path whose (pre-action) value is stored.
        value: AccessPath,
    },
}

/// How the client statement's operands bind to logic variables.
///
/// The receiver is `recv`, arguments are `args`, and `lhs` is the client
/// variable the result is assigned to (if any).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OperandBinding {
    /// Receiver variable (`None` for allocations and copies).
    pub recv: Option<Var>,
    /// Argument variables.
    pub args: Vec<Var>,
    /// Result-bound client variable.
    pub lhs: Option<Var>,
}

/// Builds the action list for a client-visible statement form.
///
/// * `method: Some(m)` — `[lhs =] recv.m(args)`;
/// * `method: None` with `class: Some(c)` — `lhs = new c(args)`;
/// * both `None` — the copy `lhs = args[0]`.
///
/// Returns the actions plus the number of fresh `$new` variables introduced.
///
/// # Panics
///
/// Panics if the binding does not provide the operands the form needs; the
/// derivation driver constructs bindings consistently.
#[allow(clippy::expect_used)] // the documented contract above
pub fn client_stmt_actions(
    spec: &Spec,
    class: Option<&ClassSpec>,
    method: Option<&MethodSpec>,
    binding: &OperandBinding,
) -> Vec<Action> {
    let mut b = ActionBuilder { spec, actions: Vec::new(), fresh_count: 0 };
    match (class, method) {
        (Some(c), Some(m)) => {
            let recv = binding.recv.expect("calls need a receiver");
            let recv_path = AccessPath::of(recv);
            let args: Vec<AccessPath> = binding.args.iter().cloned().map(AccessPath::of).collect();
            b.inline_method(c, m, recv_path, &args, binding.lhs);
        }
        (Some(c), None) => {
            let lhs = binding.lhs.expect("allocations bind a result");
            let args: Vec<AccessPath> = binding.args.iter().cloned().map(AccessPath::of).collect();
            let fresh = b.inline_new(c, &args);
            b.actions.push(Action::AssignVar { var: lhs, path: AccessPath::of(fresh) });
        }
        (None, None) => {
            let lhs = binding.lhs.expect("copies bind a result");
            let src = binding.args.first().cloned().expect("copies read one operand");
            b.actions.push(Action::AssignVar { var: lhs, path: AccessPath::of(src) });
        }
        (None, Some(_)) => unreachable!("a method implies a class"),
    }
    b.actions
}

struct ActionBuilder<'a> {
    spec: &'a Spec,
    actions: Vec<Action>,
    fresh_count: usize,
}

impl ActionBuilder<'_> {
    /// A fresh `$newK` variable of the given type.
    fn fresh_var(&mut self, ty: TypeName) -> Var {
        let v = Var::new(format!("$new{}", self.fresh_count), ty);
        self.fresh_count += 1;
        v
    }

    /// Emits the body of `m` with `this ↦ recv` and params bound to `args`,
    /// then binds `lhs` to the return value if requested.
    fn inline_method(
        &mut self,
        class: &ClassSpec,
        m: &MethodSpec,
        recv: AccessPath,
        args: &[AccessPath],
        lhs: Option<Var>,
    ) {
        assert_eq!(m.params().len(), args.len(), "argument arity mismatch");
        let env = Env { this: recv, params: args.to_vec() };
        for stmt in m.body() {
            let SpecStmt::Assign { lhs: target, rhs } = stmt;
            let target = env.resolve_spec_path(m, class, target);
            let value = self.eval_expr(rhs, &env, m, class);
            self.actions.push(Action::HeapWrite { target, value });
        }
        if let Some(x) = lhs {
            if let Some(r) = m.ret() {
                let path = self.eval_expr(r, &env, m, class);
                self.actions.push(Action::AssignVar { var: x, path });
            }
            // a method with no return expression leaves `x` unconstrained;
            // callers only bind lhs for methods that return.
        }
    }

    /// Emits `new C(args)` (constructor inlining) and returns the fresh var.
    fn inline_new(&mut self, class: &ClassSpec, args: &[AccessPath]) -> Var {
        let fresh = self.fresh_var(*class.name());
        if let Some(ctor) = class.ctor() {
            self.inline_method(class, ctor, AccessPath::of(fresh), args, None);
        }
        fresh
    }

    /// Evaluates a spec expression to a path (allocations yield `$new` vars).
    // `new T(..)` inside a spec body names a spec class: checked at resolve
    // time, so the lookup cannot miss on a resolved spec
    #[allow(clippy::expect_used)]
    fn eval_expr(
        &mut self,
        e: &SpecExpr,
        env: &Env,
        m: &MethodSpec,
        class: &ClassSpec,
    ) -> AccessPath {
        match e {
            SpecExpr::Path(p) => env.resolve_spec_path(m, class, p),
            SpecExpr::New { ty, args } => {
                let c = self.spec.class(ty.as_str()).expect("resolved at parse time");
                let arg_paths: Vec<AccessPath> =
                    args.iter().map(|a| self.eval_expr(a, env, m, class)).collect();
                AccessPath::of(self.inline_new(c, &arg_paths))
            }
        }
    }
}

struct Env {
    this: AccessPath,
    params: Vec<AccessPath>,
}

impl Env {
    // `sp` is rooted at exactly the variable we rebase from, so the rebase
    // cannot fail
    #[allow(clippy::expect_used)]
    fn resolve_spec_path(
        &self,
        m: &MethodSpec,
        class: &ClassSpec,
        p: &canvas_easl::SpecPath,
    ) -> AccessPath {
        let this_var = m.this_var(class);
        let sp = p.to_access_path(m, class);
        let base = match p.base() {
            canvas_easl::SpecVar::This => &self.this,
            canvas_easl::SpecVar::Param(k) => &self.params[k],
        };
        // rebase: replace the variable root by the bound path
        let root = AccessPath::of(match p.base() {
            canvas_easl::SpecVar::This => this_var,
            canvas_easl::SpecVar::Param(k) => {
                let (n, t) = &m.params()[k];
                Var::new(n.clone(), *t)
            }
        });
        sp.rebase(&root, base).expect("path roots at its own base")
    }
}

/// Substitutes a method's `requires` formula with the operand binding
/// (`this ↦ recv`, params ↦ args).
pub(crate) fn bind_requires(
    class: &ClassSpec,
    m: &MethodSpec,
    binding: &OperandBinding,
) -> Option<Formula> {
    let req = m.requires()?;
    let this_var = m.this_var(class);
    let recv = binding.recv?;
    let param_vars = m.param_vars();
    Some(req.rename_vars(&|v: &Var| {
        if *v == this_var {
            return recv;
        }
        if let Some(k) = param_vars.iter().position(|pv| pv == v) {
            if let Some(a) = binding.args.get(k) {
                return *a;
            }
        }
        *v
    }))
}

// ---------------------------------------------------------------------------
// Backward WP
// ---------------------------------------------------------------------------

/// A term-level conditional tree produced by heap-write substitution.
#[derive(Clone, Debug)]
enum CondTerm {
    Leaf(Term),
    Ite { lhs: Term, rhs: Term, then: Box<CondTerm>, els: Box<CondTerm> },
}

impl CondTerm {
    /// Extends every leaf by field `g`, applying the pending write
    /// `P.f := V` when `g == f`.
    fn extend(self, g: &str, write: &(Term, String, Term), fresh: &mut FreshFields) -> CondTerm {
        match self {
            CondTerm::Leaf(t) => {
                let (p, f, v) = write;
                if g == f {
                    // reading `t.g` after `P.g := V`: ite(t == P, V, t.g)
                    match canvas_logic::Literal::new(true, t.clone(), p.clone()) {
                        Err(true) => CondTerm::Leaf(v.clone()),
                        Err(false) => CondTerm::Leaf(field_of(&t, g, fresh)),
                        Ok(_) => CondTerm::Ite {
                            lhs: t.clone(),
                            rhs: p.clone(),
                            then: Box::new(CondTerm::Leaf(v.clone())),
                            els: Box::new(CondTerm::Leaf(field_of(&t, g, fresh))),
                        },
                    }
                } else {
                    CondTerm::Leaf(field_of(&t, g, fresh))
                }
            }
            CondTerm::Ite { lhs, rhs, then, els } => CondTerm::Ite {
                lhs,
                rhs,
                then: Box::new(then.extend(g, write, fresh)),
                els: Box::new(els.extend(g, write, fresh)),
            },
        }
    }

    /// Lifts an equality between two conditional terms into a formula.
    fn equate(a: &CondTerm, b: &CondTerm) -> Formula {
        match (a, b) {
            (CondTerm::Leaf(x), CondTerm::Leaf(y)) => Formula::Eq(x.clone(), y.clone()),
            (CondTerm::Ite { lhs, rhs, then, els }, other)
            | (other, CondTerm::Ite { lhs, rhs, then, els }) => Formula::ite(
                Formula::Eq(lhs.clone(), rhs.clone()),
                CondTerm::equate(then, other),
                CondTerm::equate(els, other),
            ),
        }
    }
}

/// Allocates deterministic tokens for reads of uninitialized fields of fresh
/// objects and for the fresh `$new` roots themselves.
struct FreshFields {
    next: u32,
    map: HashMap<(Term, String), Term>,
}

impl FreshFields {
    fn new() -> Self {
        FreshFields { next: 1_000_000, map: HashMap::new() }
    }

    fn token_for(&mut self, key: (Term, String), ty: TypeName) -> Term {
        let next = &mut self.next;
        self.map
            .entry(key)
            .or_insert_with(|| {
                let t = Term::Alloc(AllocToken::new(*next, ty));
                *next += 1;
                t
            })
            .clone()
    }
}

/// Reading field `g` of term `t` with no pending write on `g`.
fn field_of(t: &Term, g: &str, fresh: &mut FreshFields) -> Term {
    match t {
        Term::Path(p) => Term::Path(p.clone().field(g)),
        Term::Alloc(a) => {
            // an uninitialized field of a fresh object: a value fresh in its
            // own right (denotes `null`, which aliases nothing we compare)
            let ty = *a.ty();
            fresh.token_for((t.clone(), g.to_string()), ty)
        }
    }
}

/// Computes WP of `phi` through `actions` (executed forward), resolving
/// `$new` variables to allocation tokens at the end.
// heap-write actions are built from field assignments only (see
// `ActionBuilder`), so their target paths always end in a field
#[allow(clippy::expect_used)]
pub fn wp_through_actions(phi: &Formula, actions: &[Action]) -> Formula {
    let mut f = phi.clone();
    let mut fresh = FreshFields::new();
    for a in actions.iter().rev() {
        f = match a {
            Action::AssignVar { var, path } => rebase_var(&f, var, path),
            Action::HeapWrite { target, value } => {
                let p_obj = Term::Path(target.parent().expect("writes target a field"));
                let field = target.last_field().expect("writes target a field").to_string();
                let v = Term::Path(value.clone());
                let write = (p_obj, field, v);
                substitute_write(&f, &write, &mut fresh)
            }
        };
    }
    resolve_fresh(&f, &mut fresh)
}

/// Replaces paths rooted at `var` by the same path rooted at `path`.
// the guard `p.base() == var` is exactly the rebase precondition
#[allow(clippy::expect_used)]
fn rebase_var(f: &Formula, var: &Var, path: &AccessPath) -> Formula {
    let root = AccessPath::of(*var);
    f.map_terms(&mut |t| match t {
        Term::Path(p) if p.base() == var => {
            Term::Path(p.rebase(&root, path).expect("base matches"))
        }
        other => other.clone(),
    })
}

/// Applies the heap-write substitution to every atom of `f`.
fn substitute_write(f: &Formula, write: &(Term, String, Term), fresh: &mut FreshFields) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Eq(a, b) => {
            let ca = subst_term(a, write, fresh);
            let cb = subst_term(b, write, fresh);
            CondTerm::equate(&ca, &cb)
        }
        Formula::Ne(a, b) => {
            Formula::not(substitute_write(&Formula::Eq(a.clone(), b.clone()), write, fresh))
        }
        Formula::Not(inner) => Formula::not(substitute_write(inner, write, fresh)),
        Formula::And(fs) => Formula::and(fs.iter().map(|g| substitute_write(g, write, fresh))),
        Formula::Or(fs) => Formula::or(fs.iter().map(|g| substitute_write(g, write, fresh))),
    }
}

/// Builds the conditional pre-state term for the post-state term `t`.
fn subst_term(t: &Term, write: &(Term, String, Term), fresh: &mut FreshFields) -> CondTerm {
    match t {
        Term::Alloc(_) => CondTerm::Leaf(t.clone()),
        Term::Path(p) => {
            let mut ct = CondTerm::Leaf(Term::Path(AccessPath::of(*p.base())));
            for g in p.fields() {
                ct = ct.extend(g, write, fresh);
            }
            ct
        }
    }
}

/// Replaces surviving `$new`-rooted paths by allocation tokens.
fn resolve_fresh(f: &Formula, fresh: &mut FreshFields) -> Formula {
    f.map_terms(&mut |t| match t {
        Term::Path(p) if p.base().name().starts_with("$new") => {
            let mut cur = Term::Alloc(AllocToken::new(
                // the root token id is derived from the $new index
                p.base().name()[4..].parse::<u32>().unwrap_or(0),
                *p.base().ty(),
            ));
            for g in p.fields() {
                cur = field_of(&cur, g, fresh);
            }
            cur
        }
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_easl::builtin;

    fn iter_var(n: &str) -> Var {
        Var::new(n, TypeName::new("Iterator"))
    }

    fn set_var(n: &str) -> Var {
        Var::new(n, TypeName::new("Set"))
    }

    /// stale(i) ≡ i.defVer != i.set.ver
    fn stale(n: &str) -> Formula {
        Formula::ne(
            AccessPath::of(iter_var(n)).field("defVer"),
            AccessPath::of(iter_var(n)).field("set").field("ver"),
        )
    }

    fn call_actions(
        spec: &canvas_easl::Spec,
        class: &str,
        method: &str,
        b: &OperandBinding,
    ) -> Vec<Action> {
        let c = spec.class(class).unwrap();
        let m = c.method(method).unwrap();
        client_stmt_actions(spec, Some(c), Some(m), b)
    }

    #[test]
    fn add_makes_aliased_iterators_stale() {
        // WP(stale(i), v.add(o)) should be equivalent to stale(i) || i.set == v
        let spec = builtin::cmp();
        let binding = OperandBinding {
            recv: Some(set_var("v")),
            args: vec![Var::new("o", TypeName::new("Object"))],
            lhs: None,
        };
        let actions = call_actions(&spec, "Set", "add", &binding);
        let wp = wp_through_actions(&stale("i"), &actions);
        let expected = Formula::or([
            stale("i"),
            Formula::eq(AccessPath::of(iter_var("i")).field("set"), AccessPath::of(set_var("v"))),
        ]);
        let oracle = spec.oracle();
        assert!(
            canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &expected),
            "wp was {wp}"
        );
    }

    #[test]
    fn iterator_result_is_never_stale() {
        // WP(stale(i), i = v.iterator()) ≡ false
        let spec = builtin::cmp();
        let binding =
            OperandBinding { recv: Some(set_var("v")), args: vec![], lhs: Some(iter_var("i")) };
        let actions = call_actions(&spec, "Set", "iterator", &binding);
        let wp = wp_through_actions(&stale("i"), &actions);
        let oracle = spec.oracle();
        assert!(
            canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &Formula::False),
            "wp was {wp}"
        );
    }

    #[test]
    fn iterof_of_fresh_iterator_is_same_set() {
        // WP(i.set == w, i = v.iterator()) ≡ v == w
        let spec = builtin::cmp();
        let iterof =
            Formula::eq(AccessPath::of(iter_var("i")).field("set"), AccessPath::of(set_var("w")));
        let binding =
            OperandBinding { recv: Some(set_var("v")), args: vec![], lhs: Some(iter_var("i")) };
        let actions = call_actions(&spec, "Set", "iterator", &binding);
        let wp = wp_through_actions(&iterof, &actions);
        let expected = Formula::eq(AccessPath::of(set_var("v")), AccessPath::of(set_var("w")));
        let oracle = spec.oracle();
        assert!(
            canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &expected),
            "wp was {wp}"
        );
    }

    #[test]
    fn remove_wp_matches_paper_under_precondition() {
        // WP(stale(i), j.remove()) under ¬stale(j) ≡ stale(i) ∨ mutx(i,j)
        let spec = builtin::cmp();
        let binding = OperandBinding { recv: Some(iter_var("j")), args: vec![], lhs: None };
        let actions = call_actions(&spec, "Iterator", "remove", &binding);
        let wp = wp_through_actions(&stale("i"), &actions);
        let c = spec.class("Iterator").unwrap();
        let m = c.method("remove").unwrap();
        let assumption = bind_requires(c, m, &binding).unwrap();
        let mutx = Formula::and([
            Formula::eq(
                AccessPath::of(iter_var("i")).field("set"),
                AccessPath::of(iter_var("j")).field("set"),
            ),
            Formula::ne(AccessPath::of(iter_var("i")), AccessPath::of(iter_var("j"))),
        ]);
        let expected = Formula::or([stale("i"), mutx]);
        let oracle = spec.oracle();
        assert!(
            canvas_logic::models::equivalent(&oracle, &assumption, &wp, &expected),
            "wp was {wp}"
        );
        // and the equivalence genuinely needs the precondition
        assert!(!canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &expected));
    }

    #[test]
    fn new_set_resets_iterof_and_same() {
        let spec = builtin::cmp();
        // WP(v == w, v = new Set()) ≡ false (fresh set equals no prior one)
        let same = Formula::eq(AccessPath::of(set_var("v")), AccessPath::of(set_var("w")));
        let c = spec.class("Set").unwrap();
        let binding = OperandBinding { recv: None, args: vec![], lhs: Some(set_var("v")) };
        let actions = client_stmt_actions(&spec, Some(c), None, &binding);
        let wp = wp_through_actions(&same, &actions);
        let oracle = spec.oracle();
        assert!(canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &Formula::False));
        // WP(v == v, v = new Set()) ≡ true
        let refl = Formula::eq(AccessPath::of(set_var("v")), AccessPath::of(set_var("v")));
        let wp = wp_through_actions(&refl, &actions);
        assert!(canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &Formula::True));
    }

    #[test]
    fn copy_rebases() {
        let spec = builtin::cmp();
        // WP(stale(i), i = j) ≡ stale(j)
        let binding =
            OperandBinding { recv: None, args: vec![iter_var("j")], lhs: Some(iter_var("i")) };
        let actions = client_stmt_actions(&spec, None, None, &binding);
        let wp = wp_through_actions(&stale("i"), &actions);
        let oracle = spec.oracle();
        assert!(canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &stale("j")));
    }

    #[test]
    fn grp_start_traversal_invalidates_other_traversals() {
        let spec = builtin::grp();
        let t = Var::new("t", TypeName::new("Traversal"));
        let g2 = Var::new("g2", TypeName::new("Graph"));
        // staleT(t) ≡ t.tok != t.g.owner
        let stale_t = Formula::ne(
            AccessPath::of(t).field("tok"),
            AccessPath::of(t).field("g").field("owner"),
        );
        let binding = OperandBinding { recv: Some(g2), args: vec![], lhs: None };
        let actions = call_actions(&spec, "Graph", "startTraversal", &binding);
        let wp = wp_through_actions(&stale_t, &actions);
        let expected = Formula::or([
            stale_t.clone(),
            Formula::eq(AccessPath::of(t).field("g"), AccessPath::of(g2)),
        ]);
        let oracle = spec.oracle();
        assert!(
            canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &expected),
            "wp was {wp}"
        );
        // and the traversal returned by startTraversal is valid:
        let t2 = Var::new("t2", TypeName::new("Traversal"));
        let stale_t2 = Formula::ne(
            AccessPath::of(t2).field("tok"),
            AccessPath::of(t2).field("g").field("owner"),
        );
        let binding = OperandBinding { recv: Some(g2), args: vec![], lhs: Some(t2) };
        let actions = call_actions(&spec, "Graph", "startTraversal", &binding);
        let wp = wp_through_actions(&stale_t2, &actions);
        assert!(
            canvas_logic::models::equivalent(&oracle, &Formula::True, &wp, &Formula::False),
            "wp was {wp}"
        );
    }

    #[test]
    fn binding_requires_renames_operands() {
        let spec = builtin::cmp();
        let c = spec.class("Iterator").unwrap();
        let m = c.method("next").unwrap();
        let binding = OperandBinding { recv: Some(iter_var("i1")), args: vec![], lhs: None };
        let req = bind_requires(c, m, &binding).unwrap();
        assert_eq!(req.to_string(), "i1.defVer == i1.set.ver");
    }
}
