//! The staged abstraction-derivation procedure (paper §4.1–§4.2, §4.5).
//!
//! Starting from the negated `requires` clauses, the procedure repeatedly
//! computes weakest preconditions of candidate instrumentation predicates
//! through every client-visible statement form, splits the (precondition-
//! simplified) results into disjuncts, and interns each disjunct as an
//! instrumentation-predicate *family* — recognising previously seen families
//! up to variable renaming with the small-model equivalence check. The
//! by-product of each WP computation is recorded as an update rule,
//! assembling the component *method abstractions* (the paper's Fig. 5).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use canvas_abstraction::{
    DerivationStats, Derived, Family, FamilyId, RuleRhs, RuleVar, StmtAbstraction, StmtForm,
    UpdateRule,
};
use canvas_easl::{ClassSpec, MethodSpec, Spec};
use canvas_logic::{models, FieldId, Formula, PredId, Term, TypeName, TypeOracle, Var};

use crate::simplify::Simplifier;
use crate::sym::{bind_requires, client_stmt_actions, wp_through_actions, OperandBinding};

static WP_COMPUTATIONS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("wp.computations");
static WP_DISJUNCT_SPLITS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("wp.disjunct_splits");
static WP_EQUIV_CHECKS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("wp.equiv_checks");
static WP_FAMILIES: canvas_telemetry::Counter = canvas_telemetry::Counter::new("wp.families");
static WP_EQUIV_MEMO_HITS: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("wp.equiv_memo_hits");
static WP_EQUIV_MEMO_MISSES: canvas_telemetry::Counter =
    canvas_telemetry::Counter::new("wp.equiv_memo_misses");
static WP_DERIVE_TIME: canvas_telemetry::Timer = canvas_telemetry::Timer::new("wp.derive");

// The derived-abstraction data model (Family/StmtAbstraction/Derived and
// friends) lives in `canvas_abstraction::derived` so the trusted certificate
// checker can consume abstractions without depending on this crate; it is
// re-exported from the crate root for compatibility. This module keeps only
// the derivation *procedure*.

/// Derivation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeriveError {
    /// The family budget was exceeded — the specification is (probably) not
    /// mutation-restricted and the WP iteration does not converge (§4.5).
    Budget {
        /// The budget that was exceeded.
        max_families: usize,
    },
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::Budget { max_families } => write!(
                f,
                "derivation exceeded the budget of {max_families} predicate families \
                 (specification is likely not mutation-restricted)"
            ),
        }
    }
}

impl std::error::Error for DeriveError {}

/// Derives the specialized abstraction for `spec` with the default budget.
///
/// # Errors
///
/// Returns [`DeriveError::Budget`] if the WP iteration generates more than
/// 64 families (it provably converges for mutation-restricted specs, §6).
pub fn derive_abstraction(spec: &Spec) -> Result<Derived, DeriveError> {
    derive_with_budget(spec, 64)
}

/// [`derive_abstraction`] with an explicit family budget.
///
/// # Errors
///
/// Returns [`DeriveError::Budget`] when more than `max_families` families
/// are generated.
pub fn derive_with_budget(spec: &Spec, max_families: usize) -> Result<Derived, DeriveError> {
    derive_impl(spec, max_families, false)
}

/// The §4.5 fallback: like [`derive_with_budget`], but instead of failing
/// when the family budget is exhausted, the derivation stops generating new
/// families and emits *conservative* update rules ([`RuleRhs::Unknown`]) for
/// the weakest-precondition disjuncts it can no longer express. The
/// resulting certifier is sound but may raise extra false alarms.
///
/// # Errors
///
/// Never fails; the `Result` is kept for signature symmetry.
pub fn derive_conservative(spec: &Spec, max_families: usize) -> Result<Derived, DeriveError> {
    derive_impl(spec, max_families, true)
}

fn derive_impl(
    spec: &Spec,
    max_families: usize,
    conservative: bool,
) -> Result<Derived, DeriveError> {
    let _span = WP_DERIVE_TIME.span();
    let oracle = spec.oracle();
    let mut d = Deriver {
        spec,
        oracle: &oracle,
        families: Vec::new(),
        pending: VecDeque::new(),
        stats: DerivationStats::default(),
        max_families,
        conservative,
        equiv_memo: HashMap::new(),
    };
    let forms = enumerate_forms(spec);
    let mut stmts: Vec<StmtAbstraction> = Vec::new();

    // Phase A (rule 1): seed families from negated requires clauses, and
    // record the per-form precondition checks.
    for (form, class, method) in &forms {
        let binding = operand_binding(spec, class.as_ref(), method.as_ref());
        let mut checks = Vec::new();
        if let (Some(c), Some(m)) = (class.as_ref(), method.as_ref()) {
            if let Some(req) = bind_requires(c, m, &binding) {
                let neg = Formula::not(req);
                let simp = Simplifier::new(d.oracle);
                for disj in simp.minimized_disjuncts(&neg, &Formula::True) {
                    checks.push(d.intern(&disj, &binding, &[], "requires"));
                }
            }
        }
        stmts.push(StmtAbstraction { form: form.clone(), checks, rules: Vec::new() });
    }
    d.stats.families_discovered.push(d.families.len());

    // Phase B (rules 2+3): WP of every family through every statement form.
    while let Some(fid) = d.pending.pop_front() {
        if d.families.len() > d.max_families {
            return Err(DeriveError::Budget { max_families: d.max_families });
        }
        for (idx, (_, class, method)) in forms.iter().enumerate() {
            let rules = d.rules_for(fid, class.as_ref(), method.as_ref())?;
            stmts[idx].rules.extend(rules);
        }
        d.stats.families_discovered.push(d.families.len());
    }

    WP_COMPUTATIONS.add(d.stats.wp_count as u64);
    WP_DISJUNCT_SPLITS.add(d.stats.candidates as u64);
    WP_EQUIV_CHECKS.add(d.stats.equiv_checks as u64);
    WP_FAMILIES.add(d.families.len() as u64);
    Ok(Derived::new(spec.name().to_string(), d.families, stmts, d.stats))
}

type FormEntry = (StmtForm, Option<ClassSpec>, Option<MethodSpec>);

fn enumerate_forms(spec: &Spec) -> Vec<FormEntry> {
    let mut out = Vec::new();
    for c in spec.classes() {
        out.push((StmtForm::New { class: *c.name() }, Some(c.clone()), None));
        for m in c.methods() {
            if !m.is_ctor() {
                out.push((
                    StmtForm::Call { class: *c.name(), method: m.name().to_string() },
                    Some(c.clone()),
                    Some(m.clone()),
                ));
            }
        }
    }
    for ty in spec.client_facing_types() {
        out.push((StmtForm::Copy { ty }, None, None));
    }
    out
}

/// Builds the operand variables for a statement form (`rcv`, `a0…`, `lhs`).
fn operand_binding(
    spec: &Spec,
    class: Option<&ClassSpec>,
    method: Option<&MethodSpec>,
) -> OperandBinding {
    match (class, method) {
        (Some(c), Some(m)) => OperandBinding {
            recv: Some(Var::new("rcv", *c.name())),
            args: m
                .params()
                .iter()
                .enumerate()
                .map(|(k, (_, t))| Var::new(format!("a{k}"), *t))
                .collect(),
            lhs: m.ret_ty().map(|rt| Var::new("lhs", *rt)),
        },
        (Some(c), None) => {
            let ctor_params = c.ctor().map(|m| m.params().to_vec()).unwrap_or_default();
            OperandBinding {
                recv: None,
                args: ctor_params
                    .iter()
                    .enumerate()
                    .map(|(k, (_, t))| Var::new(format!("a{k}"), *t))
                    .collect(),
                lhs: Some(Var::new("lhs", *c.name())),
            }
        }
        (None, _) => {
            // Copy form: type filled in by the caller via rules_for
            let _ = spec;
            OperandBinding::default()
        }
    }
}

struct Deriver<'a> {
    spec: &'a Spec,
    oracle: &'a dyn TypeOracle,
    families: Vec<Family>,
    pending: VecDeque<FamilyId>,
    stats: DerivationStats,
    max_families: usize,
    conservative: bool,
    /// Memo of small-model equivalence verdicts, keyed by
    /// `(assumption, lhs, rhs)`. The oracle is fixed for the Deriver's
    /// lifetime, so verdicts never go stale. Statistics count *checks
    /// requested*, not models enumerated, and are incremented at the call
    /// sites — cache hits leave them unchanged.
    equiv_memo: HashMap<(Formula, Formula, Formula), bool>,
}

impl Deriver<'_> {
    /// [`models::equivalent`] through the per-derivation memo.
    fn equivalent_memo(&mut self, assumption: &Formula, f: &Formula, g: &Formula) -> bool {
        let key = (assumption.clone(), f.clone(), g.clone());
        if let Some(&v) = self.equiv_memo.get(&key) {
            WP_EQUIV_MEMO_HITS.incr();
            return v;
        }
        WP_EQUIV_MEMO_MISSES.incr();
        let v = models::equivalent(self.oracle, assumption, f, g);
        self.equiv_memo.insert(key, v);
        v
    }

    /// Derives the update rules for family `fid` through one statement form.
    // the expects encode form invariants established case-by-case in this
    // function (copy forms carry a parameter type, bound subsets bind an
    // lhs); they cannot be reached from malformed external input, which is
    // rejected during spec resolution
    #[allow(clippy::expect_used)]
    fn rules_for(
        &mut self,
        fid: FamilyId,
        class: Option<&ClassSpec>,
        method: Option<&MethodSpec>,
    ) -> Result<Vec<UpdateRule>, DeriveError> {
        let fam = self.families[fid.index()].clone();
        let mut out = Vec::new();

        // determine the copy type for Copy forms from the context
        let (form_is_copy, copy_ty) = match (class, method) {
            (None, None) => (true, None::<TypeName>),
            _ => (false, None),
        };
        let _ = copy_ty;

        // lhs type of this form, if results can be bound
        let lhs_ty: Option<TypeName> = match (class, method) {
            (Some(c), None) => Some(*c.name()),
            (Some(_), Some(m)) => m.ret_ty().cloned(),
            (None, None) => None, // determined per family param type below
            (None, Some(_)) => unreachable!(),
        };

        // enumerate binding subsets: positions of fam params assignable by lhs
        let candidate_positions: Vec<usize> = match (&lhs_ty, form_is_copy) {
            (_, true) => (0..fam.params().len()).collect(),
            (Some(t), _) => fam
                .params()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.ty() == t)
                .map(|(k, _)| k)
                .collect(),
            (None, _) => Vec::new(),
        };

        for subset in subsets(&candidate_positions) {
            // for Copy forms, all bound positions must share one type
            let copy_param_ty: Option<TypeName> = if form_is_copy {
                match subset.first() {
                    None => continue, // a copy with no bound position is the identity
                    Some(&k0) => {
                        let t = *fam.params()[k0].ty();
                        if subset.iter().any(|&k| fam.params()[k].ty() != &t) {
                            continue;
                        }
                        Some(t)
                    }
                }
            } else {
                None
            };

            let lhs_var = if form_is_copy {
                Some(Var::new("lhs", copy_param_ty.expect("non-empty subset")))
            } else if subset.is_empty() {
                None
            } else {
                lhs_ty.map(|t| Var::new("lhs", t))
            };

            // instance vars for the family params
            let inst_vars: Vec<Var> = fam
                .params()
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    if subset.contains(&k) {
                        lhs_var.expect("bound subset implies lhs")
                    } else {
                        Var::new(format!("p{k}"), *p.ty())
                    }
                })
                .collect();
            let phi = fam.instantiate(&inst_vars);

            // operand binding for the statement
            let mut binding = if form_is_copy {
                let t = copy_param_ty.expect("copy has a type");
                OperandBinding { recv: None, args: vec![Var::new("a0", t)], lhs: lhs_var }
            } else {
                operand_binding(self.spec, class, method)
            };
            if !form_is_copy {
                binding.lhs = match (&lhs_var, class, method) {
                    // allocations always produce a value; method results are
                    // only relevant when a family slot binds to them
                    (_, Some(_), None) => Some(
                        lhs_var
                            .unwrap_or_else(|| Var::new("lhs", lhs_ty.expect("new has lhs type"))),
                    ),
                    (Some(x), _, _) => Some(*x),
                    (None, _, _) => None,
                };
            }

            let actions = if form_is_copy {
                client_stmt_actions(self.spec, None, None, &binding)
            } else {
                client_stmt_actions(self.spec, class, method, &binding)
            };
            self.stats.wp_count += 1;
            let wp = wp_through_actions(&phi, &actions);
            let assumption = match (class, method) {
                (Some(c), Some(m)) => bind_requires(c, m, &binding).unwrap_or(Formula::True),
                _ => Formula::True,
            };

            // identity → no rule (instances unchanged)
            if self.equivalent_memo(&assumption, &wp, &phi) {
                continue;
            }

            let simp = Simplifier::new(self.oracle);
            let disjuncts = simp.minimized_disjuncts(&wp, &assumption);
            let mut rhs = Vec::new();
            let mut is_true = false;
            for dj in &disjuncts {
                if *dj == Formula::True {
                    is_true = true;
                    break;
                }
            }
            if is_true {
                rhs.push(RuleRhs::Const(true));
            } else {
                for dj in &disjuncts {
                    self.stats.candidates += 1;
                    rhs.push(self.intern(dj, &binding, &inst_vars, fam.name()));
                }
            }
            if self.families.len() > self.max_families {
                return Err(DeriveError::Budget { max_families: self.max_families });
            }

            let target_args: Vec<RuleVar> = (0..fam.params().len())
                .map(|k| if subset.contains(&k) { RuleVar::Lhs } else { RuleVar::Univ(k) })
                .collect();
            out.push(UpdateRule { family: fid, target_args, rhs });
        }
        Ok(out)
    }

    /// Finds or creates the family a candidate disjunct belongs to, and
    /// returns the instance over rule variables.
    fn intern(
        &mut self,
        candidate: &Formula,
        binding: &OperandBinding,
        inst_vars: &[Var],
        origin: &str,
    ) -> RuleRhs {
        // constants
        if self.equivalent_memo(&Formula::True, candidate, &Formula::True) {
            return RuleRhs::Const(true);
        }
        if self.equivalent_memo(&Formula::True, candidate, &Formula::False) {
            return RuleRhs::Const(false);
        }

        let mut fv: Vec<Var> = candidate.free_vars().into_iter().collect();
        fv.sort_by(|a, b| (a.ty(), a.name()).cmp(&(b.ty(), b.name())));

        // try existing families
        for g in 0..self.families.len() {
            if self.families[g].params().len() != fv.len() {
                continue;
            }
            for perm in permutations(fv.len()) {
                // type check the bijection: fam.param[k] ↦ fv[perm[k]]
                if !(0..fv.len()).all(|k| self.families[g].params()[k].ty() == fv[perm[k]].ty()) {
                    continue;
                }
                self.stats.equiv_checks += 1;
                let args: Vec<Var> = perm.iter().map(|&j| fv[j]).collect();
                let inst = self.families[g].instantiate(&args);
                if self.equivalent_memo(&Formula::True, &inst, candidate) {
                    let rule_args =
                        args.iter().map(|v| self.to_rule_var(v, binding, inst_vars)).collect();
                    return RuleRhs::Inst(PredId::from_index(g), rule_args);
                }
            }
        }

        // new family
        if self.conservative && self.families.len() >= self.max_families {
            self.stats.unknown_rhs += 1;
            return RuleRhs::Unknown;
        }
        let id = PredId::from_index(self.families.len());
        let params: Vec<Var> =
            fv.iter().enumerate().map(|(k, v)| Var::new(format!("x{k}"), *v.ty())).collect();
        let formula = candidate.rename_vars(&|v| match fv.iter().position(|w| w == v) {
            Some(k) => params[k],
            None => *v,
        });
        let name = self.pick_name(&formula, &params);
        let mutable_dep = formula_reads_mutable(self.spec, &formula);
        self.families.push(Family::new(
            id,
            name,
            params,
            formula,
            mutable_dep,
            format!("from {origin}"),
        ));
        self.pending.push_back(id);
        let rule_args = fv.iter().map(|v| self.to_rule_var(v, binding, inst_vars)).collect();
        RuleRhs::Inst(id, rule_args)
    }

    fn to_rule_var(&self, v: &Var, binding: &OperandBinding, inst_vars: &[Var]) -> RuleVar {
        if binding.lhs.as_ref() == Some(v) {
            return RuleVar::Lhs;
        }
        if binding.recv.as_ref() == Some(v) {
            return RuleVar::Recv;
        }
        if let Some(k) = binding.args.iter().position(|a| a == v) {
            return RuleVar::Arg(k);
        }
        if let Some(k) = inst_vars.iter().position(|p| p == v) {
            return RuleVar::Univ(k);
        }
        unreachable!("free variable {v} not among statement operands or family params")
    }

    /// Names a family after the classic shapes when recognisable.
    fn pick_name(&self, formula: &Formula, params: &[Var]) -> String {
        let base = nickname(formula, params).unwrap_or_else(|| format!("q{}", self.families.len()));
        let mut name = base.clone();
        let mut k = 2;
        while self.families.iter().any(|f| f.name() == name) {
            name = format!("{base}{k}");
            k += 1;
        }
        name
    }
}

/// All subsets of `positions` (including the empty one), deterministic order.
fn subsets(positions: &[usize]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for &p in positions {
        let mut more: Vec<Vec<usize>> = out
            .iter()
            .map(|s| {
                let mut t = s.clone();
                t.push(p);
                t
            })
            .collect();
        out.append(&mut more);
    }
    out
}

/// All permutations of `0..n` (n ≤ 4 in practice).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for k in 0..n {
            let mut p = rest.clone();
            p.insert(k, n - 1);
            out.push(p);
        }
    }
    out
}

/// Whether a formula reads a field that the specification mutates after
/// construction.
fn formula_reads_mutable(spec: &Spec, formula: &Formula) -> bool {
    let mutable = mutable_fields(spec);
    let mut found = false;
    formula.visit_terms(&mut |t| {
        if let Term::Path(p) = t {
            let mut ty = *p.base().ty();
            for f in p.fields() {
                if mutable.contains(&(ty, FieldId(*f))) {
                    found = true;
                }
                match spec.field_type(&ty, f) {
                    Some(next) => ty = next,
                    None => break,
                }
            }
        }
    });
    found
}

/// The set of `(owner type, field)` pairs assigned outside construction.
// assignment paths always end in a field: enforced by the EASL parser
#[allow(clippy::expect_used)]
pub(crate) fn mutable_fields(spec: &Spec) -> std::collections::HashSet<(TypeName, FieldId)> {
    let mut out = std::collections::HashSet::new();
    for class in spec.classes() {
        for m in class.methods() {
            for stmt in m.body() {
                let canvas_easl::SpecStmt::Assign { lhs, .. } = stmt;
                let construction = m.is_ctor()
                    && lhs.fields().len() == 1
                    && lhs.base() == canvas_easl::SpecVar::This;
                if construction {
                    continue;
                }
                // type of the parent of the written path
                let path = lhs.to_access_path(m, class);
                let mut ty = *path.base().ty();
                for f in &path.fields()[..path.fields().len() - 1] {
                    match spec.field_type(&ty, f) {
                        Some(next) => ty = next,
                        None => break,
                    }
                }
                let field = FieldId(*path.fields().last().expect("assignments target fields"));
                out.insert((ty, field));
            }
        }
    }
    out
}

/// Recognises the classic family shapes for readable names.
fn nickname(formula: &Formula, params: &[Var]) -> Option<String> {
    let dnf = formula.to_dnf_cached();
    if dnf.conjuncts().len() != 1 {
        return None;
    }
    let lits: Vec<_> = dnf.conjuncts()[0].iter().collect();
    let path_depths = |l: &canvas_logic::Literal| -> Option<(usize, usize)> {
        match (l.lhs(), l.rhs()) {
            (Term::Path(a), Term::Path(b)) => Some((a.depth(), b.depth())),
            _ => None,
        }
    };
    match (params.len(), lits.len()) {
        (1, 1) => {
            let l = lits[0];
            let (da, db) = path_depths(l)?;
            if !l.is_positive() && da >= 1 && db >= 1 {
                return Some("stale".to_string());
            }
            None
        }
        (2, 1) => {
            let l = lits[0];
            let (da, db) = path_depths(l)?;
            match (l.is_positive(), da.min(db), da.max(db)) {
                (true, 0, 0) => Some("same".to_string()),
                (false, 0, 0) => Some("diff".to_string()),
                (true, 0, _) => Some("iterof".to_string()),
                (false, 0, _) => Some("mismatch".to_string()),
                _ => None,
            }
        }
        (2, 2) => {
            // x0.f == x1.f && x0 != x1
            let mut has_field_eq = false;
            let mut has_var_ne = false;
            for l in &lits {
                let (da, db) = path_depths(l)?;
                if l.is_positive() && da >= 1 && db >= 1 {
                    has_field_eq = true;
                }
                if !l.is_positive() && da == 0 && db == 0 {
                    has_var_ne = true;
                }
            }
            (has_field_eq && has_var_ne).then(|| "mutx".to_string())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_easl::builtin;

    #[test]
    fn cmp_derives_the_four_families() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let names: Vec<&str> = d.families().iter().map(|f| f.name()).collect();
        assert_eq!(names, ["stale", "iterof", "mutx", "same"], "{:#?}", d.families());
        // arities match Fig. 4
        assert_eq!(d.family(FamilyId::from_index(0)).params().len(), 1);
        assert_eq!(d.family(FamilyId::from_index(1)).params().len(), 2);
        assert_eq!(d.family(FamilyId::from_index(2)).params().len(), 2);
        assert_eq!(d.family(FamilyId::from_index(3)).params().len(), 2);
        // stale depends on the mutable version fields, the others do not
        assert!(d.family(FamilyId::from_index(0)).mutable_dep());
        assert!(!d.family(FamilyId::from_index(1)).mutable_dep());
        assert!(!d.family(FamilyId::from_index(2)).mutable_dep());
        assert!(!d.family(FamilyId::from_index(3)).mutable_dep());
    }

    #[test]
    fn cmp_add_rule_matches_fig5() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let add = d.for_call(&TypeName::new("Set"), "add").unwrap();
        // stalek := stalek ∨ iterof(k, v)   ∀k
        let stale = FamilyId::from_index(0);
        let rule = add.rule_for(stale, &[]).expect("add updates stale");
        assert_eq!(rule.target_args, vec![RuleVar::Univ(0)]);
        assert_eq!(rule.rhs.len(), 2);
        assert!(rule.rhs.contains(&RuleRhs::Inst(stale, vec![RuleVar::Univ(0)])));
        // the other disjunct is iterof(k, rcv) (argument order per family)
        assert!(rule
            .rhs
            .iter()
            .any(|r| matches!(r, RuleRhs::Inst(f, args) if f.index() == 1 && args.contains(&RuleVar::Recv))));
        // add has no requires
        assert!(add.checks.is_empty());
    }

    #[test]
    fn cmp_next_checks_stale_receiver() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let next = d.for_call(&TypeName::new("Iterator"), "next").unwrap();
        assert_eq!(next.checks, vec![RuleRhs::Inst(FamilyId::from_index(0), vec![RuleVar::Recv])]);
        // next has no updates at all
        assert!(next.rules.is_empty());
    }

    #[test]
    fn cmp_iterator_rules() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let it = d.for_call(&TypeName::new("Set"), "iterator").unwrap();
        // bound case: stale(lhs) := 0
        let r = it
            .rule_for(FamilyId::from_index(0), &[0])
            .expect("iterator resets stale of its result");
        assert_eq!(r.rhs, Vec::new());
        // bound case: iterof(lhs, z) := same(rcv, z)
        let r =
            it.rule_for(FamilyId::from_index(1), &[0]).expect("iterator sets iterof of its result");
        assert_eq!(r.rhs.len(), 1);
        assert!(matches!(&r.rhs[0], RuleRhs::Inst(f, _) if f.index() == 3));
        // unbound stale is untouched by iterator()
        assert!(it.rule_for(FamilyId::from_index(0), &[]).is_none());
    }

    #[test]
    fn cmp_remove_updates_via_mutx() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let rm = d.for_call(&TypeName::new("Iterator"), "remove").unwrap();
        assert_eq!(rm.checks, vec![RuleRhs::Inst(FamilyId::from_index(0), vec![RuleVar::Recv])]);
        let r = rm
            .rule_for(FamilyId::from_index(0), &[])
            .expect("remove stales mutually-excluded iterators");
        assert!(r.rhs.contains(&RuleRhs::Inst(FamilyId::from_index(0), vec![RuleVar::Univ(0)])));
        assert!(r
            .rhs
            .iter()
            .any(|x| matches!(x, RuleRhs::Inst(f, args) if f.index() == 2 && args.contains(&RuleVar::Recv))));
    }

    #[test]
    fn cmp_copy_rules() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let cp = d.for_copy(&TypeName::new("Iterator")).unwrap();
        // stale(lhs) := stale(src)
        let r = cp.rule_for(FamilyId::from_index(0), &[0]).unwrap();
        assert_eq!(r.rhs, vec![RuleRhs::Inst(FamilyId::from_index(0), vec![RuleVar::Arg(0)])]);
        // mutx(lhs, z) := mutx(src, z)
        let r = cp.rule_for(FamilyId::from_index(2), &[0]).unwrap();
        assert_eq!(r.rhs.len(), 1);
    }

    #[test]
    fn grp_imp_aop_derive_finitely() {
        for spec in builtin::all() {
            let d = derive_abstraction(&spec).unwrap_or_else(|e| {
                panic!("{} failed to derive: {e}", spec.name());
            });
            assert!(
                d.families().len() <= 6,
                "{} derived too many families: {:#?}",
                spec.name(),
                d.families()
            );
            assert!(!d.families().is_empty(), "{}", spec.name());
        }
    }

    #[test]
    fn unbounded_spec_exhausts_budget() {
        let spec = builtin::unbounded();
        let err = derive_with_budget(&spec, 8).unwrap_err();
        assert!(matches!(err, DeriveError::Budget { max_families: 8 }));
    }

    #[test]
    fn stats_recorded() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        assert!(d.stats().wp_count > 0);
        assert!(d.stats().equiv_checks > 0);
        assert_eq!(*d.stats().families_discovered.last().unwrap(), 4);
    }

    #[test]
    fn family_display_and_instantiate() {
        let spec = builtin::cmp();
        let d = derive_abstraction(&spec).unwrap();
        let stale = d.family(FamilyId::from_index(0));
        assert!(stale.to_string().starts_with("stale(x0: Iterator)"));
        let i1 = Var::new("i1", TypeName::new("Iterator"));
        let inst = stale.instantiate(&[i1]);
        assert_eq!(inst.to_string(), "i1.defVer != i1.set.ver");
    }
}

#[cfg(test)]
mod conservative_tests {
    use super::*;
    use canvas_easl::builtin;

    #[test]
    fn conservative_derivation_never_fails() {
        let spec = builtin::unbounded();
        let d = derive_conservative(&spec, 4).expect("conservative derivation succeeds");
        assert!(d.stats().unknown_rhs > 0, "budget pressure must show up");
        assert!(d.families().len() <= 5);
        // the requires check itself is still expressible
        let push = d.for_call(&TypeName::new("Cell"), "use").expect("use abstraction");
        assert!(!push.checks.is_empty());
    }

    #[test]
    fn conservative_equals_strict_when_budget_suffices() {
        let spec = builtin::cmp();
        let strict = derive_abstraction(&spec).unwrap();
        let cons = derive_conservative(&spec, 64).unwrap();
        assert_eq!(strict, cons);
        assert_eq!(cons.stats().unknown_rhs, 0);
    }
}
