//! Measures what pipeline telemetry costs: every engine over Fig. 3 with
//! metrics disabled (the default, where each counter site is a relaxed
//! atomic load of the enabled flag) vs enabled (atomic adds plus clock
//! reads at span boundaries). The instrumentation budget is <2% on this
//! all-engines workload.

use canvas_bench::FIG3;
use canvas_core::{Certifier, Engine, PreparedProgram};
use criterion::{criterion_group, criterion_main, Criterion};

fn telemetry_overhead(c: &mut Criterion) {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
    let program = canvas_minijava::Program::parse(FIG3, certifier.spec()).unwrap();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        group.bench_function(format!("all-engines-fig3-{label}"), |b| {
            canvas_telemetry::set_enabled(enabled);
            b.iter(|| {
                let prepared = PreparedProgram::new(&program);
                for engine in Engine::all() {
                    certifier.certify_program_prepared(&program, &prepared, engine).unwrap();
                }
            })
        });
    }
    canvas_telemetry::set_enabled(false);
    canvas_telemetry::reset();
    group.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
