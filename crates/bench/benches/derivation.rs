//! Benchmarks the abstraction-derivation stage (certifier-generation time,
//! paper §1.3 stage 2) for every built-in specification.

use criterion::{criterion_group, criterion_main, Criterion};

fn derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for spec in canvas_easl::builtin::all() {
        group.bench_function(spec.name(), |b| {
            b.iter(|| canvas_wp::derive_abstraction(std::hint::black_box(&spec)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, derivation);
criterion_main!(benches);
