//! Benchmarks every certification engine on the paper's Fig. 3 running
//! example (the E5 timing comparison: FDS ≪ TVLA; independent-attribute ≤
//! relational), plus the suite driver with and without shared transforms.

use canvas_core::{Certifier, Engine, PreparedProgram};
use criterion::{criterion_group, criterion_main, Criterion};

const FIG3: &str = r#"
class Main {
    static void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (true) { i2.next(); }
        if (true) { i3.next(); }
        v.add("x");
        if (true) { i1.next(); }
    }
}
"#;

fn engines(c: &mut Criterion) {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
    let program = canvas_minijava::Program::parse(FIG3, certifier.spec()).unwrap();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for engine in Engine::all() {
        group.bench_function(engine.to_string(), |b| {
            b.iter(|| certifier.certify(&program, engine).unwrap())
        });
    }
    group.finish();
}

/// All engines over Fig. 3, recomputing every transform per engine (the old
/// driver) vs sharing one [`PreparedProgram`] across engines (the new one).
fn all_engines_shared_vs_unshared(c: &mut Criterion) {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();
    let program = canvas_minijava::Program::parse(FIG3, certifier.spec()).unwrap();
    let mut group = c.benchmark_group("fig3-all-engines");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("unshared-transforms", |b| {
        b.iter(|| {
            for engine in Engine::all() {
                certifier.certify_program(&program, engine).unwrap();
            }
        })
    });
    group.bench_function("shared-transforms", |b| {
        b.iter(|| {
            let prepared = PreparedProgram::new(&program);
            for engine in Engine::all() {
                certifier.certify_program_prepared(&program, &prepared, engine).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, engines, all_engines_shared_vs_unshared);
criterion_main!(benches);
