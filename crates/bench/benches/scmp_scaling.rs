//! Benchmarks the polynomial SCMP certifier across client sizes (the E7
//! scaling figure): time should grow polynomially in E and B.

use canvas_core::{Certifier, Engine};
use canvas_suite::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn scaling(c: &mut Criterion) {
    let certifier = Certifier::from_spec(canvas_easl::builtin::cmp()).unwrap();

    let mut group = c.benchmark_group("scmp-fds/blocks");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for blocks in [4usize, 16, 64] {
        let g = generators::scmp_blocks(blocks, 2, 0.0, 1);
        let program = canvas_minijava::Program::parse(&g.source, certifier.spec()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &program, |b, p| {
            b.iter(|| certifier.certify(p, Engine::ScmpFds).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scmp-fds/vars");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [4usize, 8, 16] {
        let g = generators::iterator_ring(n, false);
        let program = canvas_minijava::Program::parse(&g.source, certifier.spec()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| certifier.certify(p, Engine::ScmpFds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
