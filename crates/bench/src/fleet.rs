//! E15: fleet-scale corpus certification (DESIGN.md §13).
//!
//! Generates a fixed synthetic corpus with [`canvas_fleet::gen`], runs the
//! sharded driver across a shard sweep (1/2/4/8), and runs a cold→warm
//! pair through an on-disk certificate store. The shard sweep demonstrates
//! scaling and cache-merge traffic; the warm re-run demonstrates the
//! tentpole property — zero recomputed cells, byte-identical corpus
//! digest. Like the E12 fixpoint benchmark, the emitted document splits
//! into a `deterministic` section (verdict counts, digests, warm-run
//! hits/misses — gated against `bench/baseline.json`) and a `measured`
//! section (wall clock, steals, merge traffic — recorded, never gated).

use std::time::Duration;

use crate::json::{obj, Json};
use crate::{fmt_duration, render_header};
use canvas_core::Engine;
use canvas_fleet::{generate_with_threads, run_fleet, FleetConfig, FleetItem, GenParams, Manifest};

/// Corpus size for the benchmark (kept small: this runs inside `eval`).
pub const FLEET_BENCH_PROGRAMS: usize = 48;

/// Corpus seed — part of the deterministic contract with the baseline.
pub const FLEET_BENCH_SEED: u64 = 4242;

/// Shard counts swept by the benchmark.
pub const FLEET_SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// One row of the shard sweep (all measured, none gated).
pub struct FleetSweepRow {
    /// Shard count for this row.
    pub shards: usize,
    /// End-to-end wall clock.
    pub wall: Duration,
    /// Of which, the final cache merge.
    pub merge_wall: Duration,
    /// Work-stealing moves.
    pub steals: u64,
    /// Cache hits / fresh solves across all shards.
    pub hits: u64,
    /// Cells solved fresh.
    pub misses: u64,
    /// New entries merged from shard caches into the final store.
    pub merged: u64,
    /// Byte-identical entries already present at merge time.
    pub duplicates: u64,
    /// Same-key different-bytes collisions (resolved deterministically).
    pub conflicts: u64,
}

/// Everything `eval fleet` reports.
pub struct FleetBenchMetrics {
    /// Corpus size.
    pub programs: usize,
    /// Generator seed.
    pub seed: u64,
    /// Corpus manifest digest (generator determinism witness).
    pub manifest_digest: String,
    /// Programs certified conformant (same at every shard count).
    pub certified: usize,
    /// Programs with at least one potential violation.
    pub violating: usize,
    /// Total violation sites.
    pub violation_sites: usize,
    /// Inconclusive programs.
    pub inconclusive: usize,
    /// Generator ground-truth disagreements (must be 0).
    pub truth_mismatches: usize,
    /// Corpus outcome digest (identical across every shard count).
    pub corpus_digest: String,
    /// True iff every sweep row reproduced the same corpus digest.
    pub shard_digests_agree: bool,
    /// Fresh solves on the warm re-run (the tentpole: must be 0).
    pub warm_misses: u64,
    /// Cache hits on the warm re-run.
    pub warm_hits: u64,
    /// Store entries seeded into shard caches on the warm re-run.
    pub warm_seeded: u64,
    /// True iff the warm re-run reproduced the cold corpus digest.
    pub warm_digest_matches: bool,
    /// Cold-run wall clock (measured).
    pub cold_wall: Duration,
    /// Warm-run wall clock (measured).
    pub warm_wall: Duration,
    /// The shard sweep (measured).
    pub sweep: Vec<FleetSweepRow>,
}

fn bench_corpus() -> (Vec<FleetItem>, String) {
    let params = GenParams {
        programs: FLEET_BENCH_PROGRAMS,
        seed: FLEET_BENCH_SEED,
        ..GenParams::default()
    };
    let corpus = generate_with_threads(&params, canvas_suite::worker_count(FLEET_BENCH_PROGRAMS))
        .expect("fleet bench corpus generates");
    let manifest = Manifest::from_programs(&params, &corpus);
    let items = corpus
        .iter()
        .map(|p| FleetItem {
            name: p.name.clone(),
            source: p.source.clone(),
            expected: Some(p.expected.clone()),
        })
        .collect();
    (items, manifest.digest.to_string())
}

fn cmp_config(shards: usize) -> FleetConfig {
    FleetConfig::local(canvas_easl::builtin::cmp(), "cmp", Engine::ScmpFds, shards)
}

/// Runs the E15 benchmark: shard sweep plus a cold→warm store pair.
pub fn collect_fleet_metrics() -> FleetBenchMetrics {
    let (items, manifest_digest) = bench_corpus();

    let mut sweep = Vec::new();
    let mut first: Option<(usize, usize, usize, usize, usize, String)> = None;
    let mut shard_digests_agree = true;
    for &shards in FLEET_SHARD_SWEEP {
        let r = run_fleet(&items, &cmp_config(shards)).expect("fleet sweep runs");
        let digest = r.corpus_digest.to_string();
        match &first {
            None => {
                first = Some((
                    r.certified,
                    r.violating,
                    r.violation_sites,
                    r.inconclusive,
                    r.truth_mismatches,
                    digest,
                ));
            }
            Some((.., d)) => {
                if *d != digest {
                    shard_digests_agree = false;
                }
            }
        }
        sweep.push(FleetSweepRow {
            shards,
            wall: r.wall,
            merge_wall: r.merge_wall,
            steals: r.steals,
            hits: r.cache.hits,
            misses: r.cache.misses,
            merged: r.cache.merged,
            duplicates: r.cache.duplicates,
            conflicts: r.cache.conflicts,
        });
    }
    let (certified, violating, violation_sites, inconclusive, truth_mismatches, corpus_digest) =
        first.expect("sweep is non-empty");

    // Cold→warm pair through an on-disk store: the warm run must answer
    // every cell from the merged shard caches of the cold run.
    let dir = std::env::temp_dir().join(format!("canvas-eval-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = cmp_config(4);
    cfg.cache_dir = Some(dir.clone());
    let cold = run_fleet(&items, &cfg).expect("cold fleet run");
    let warm = run_fleet(&items, &cfg).expect("warm fleet run");
    let _ = std::fs::remove_dir_all(&dir);

    FleetBenchMetrics {
        programs: items.len(),
        seed: FLEET_BENCH_SEED,
        manifest_digest,
        certified,
        violating,
        violation_sites,
        inconclusive,
        truth_mismatches,
        corpus_digest,
        shard_digests_agree,
        warm_misses: warm.cache.misses,
        warm_hits: warm.cache.hits,
        warm_seeded: warm.cache.seeded,
        warm_digest_matches: warm.corpus_digest == cold.corpus_digest,
        cold_wall: cold.wall,
        warm_wall: warm.wall,
        sweep,
    }
}

/// The `canvas-bench-eval/2` document for the fleet benchmark.
pub fn fleet_to_json(m: &FleetBenchMetrics) -> Json {
    obj(vec![
        ("schema", Json::Str("canvas-bench-eval/2".to_string())),
        (
            "deterministic",
            obj(vec![
                ("programs", Json::Int(m.programs as u64)),
                ("seed", Json::Int(m.seed)),
                ("manifest_digest", Json::Str(m.manifest_digest.clone())),
                ("certified", Json::Int(m.certified as u64)),
                ("violating", Json::Int(m.violating as u64)),
                ("violation_sites", Json::Int(m.violation_sites as u64)),
                ("inconclusive", Json::Int(m.inconclusive as u64)),
                ("truth_mismatches", Json::Int(m.truth_mismatches as u64)),
                ("corpus_digest", Json::Str(m.corpus_digest.clone())),
                ("shard_digests_agree", Json::Bool(m.shard_digests_agree)),
                ("warm_misses", Json::Int(m.warm_misses)),
                ("warm_digest_matches", Json::Bool(m.warm_digest_matches)),
            ]),
        ),
        (
            "measured",
            obj(vec![
                ("warm_hits", Json::Int(m.warm_hits)),
                ("warm_seeded", Json::Int(m.warm_seeded)),
                ("cold_wall_ms", Json::Int(m.cold_wall.as_millis() as u64)),
                ("warm_wall_ms", Json::Int(m.warm_wall.as_millis() as u64)),
                (
                    "sweep",
                    Json::Arr(
                        m.sweep
                            .iter()
                            .map(|r| {
                                obj(vec![
                                    ("shards", Json::Int(r.shards as u64)),
                                    ("wall_ms", Json::Int(r.wall.as_millis() as u64)),
                                    ("merge_ms", Json::Int(r.merge_wall.as_millis() as u64)),
                                    ("steals", Json::Int(r.steals)),
                                    ("hits", Json::Int(r.hits)),
                                    ("misses", Json::Int(r.misses)),
                                    ("merged", Json::Int(r.merged)),
                                    ("duplicates", Json::Int(r.duplicates)),
                                    ("conflicts", Json::Int(r.conflicts)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Compares a freshly collected document's deterministic section against
/// the committed baseline's `"fleet"` key. Empty result = no drift.
pub fn fleet_drift(current: &Json, baseline: &Json) -> Vec<String> {
    match (current.get("deterministic"), baseline.get("fleet")) {
        (Some(c), Some(b)) => crate::json::diff(c, b),
        (None, _) => vec!["missing \"deterministic\" section in the current document".to_string()],
        (_, None) => vec!["missing \"fleet\" section in the baseline".to_string()],
    }
}

/// Renders the E15 table.
pub fn render_fleet(m: &FleetBenchMetrics) -> String {
    use std::fmt::Write as _;
    let mut out = render_header(&format!(
        "E15: fleet shard sweep ({} programs, seed {}, scmp-fds)",
        m.programs, m.seed
    ));
    let _ = writeln!(
        out,
        "verdicts: {} certified, {} violating ({} sites), {} inconclusive, {} truth mismatches",
        m.certified, m.violating, m.violation_sites, m.inconclusive, m.truth_mismatches
    );
    let _ = writeln!(out, "corpus digest {} (manifest {})", m.corpus_digest, m.manifest_digest);
    let _ = writeln!(
        out,
        "shard digests agree: {}",
        if m.shard_digests_agree { "yes" } else { "NO — schedule leaked into answers" }
    );
    let _ = writeln!(
        out,
        "\nshards      wall     merge  steals    hits  misses  merged  dup  conflicts"
    );
    for r in &m.sweep {
        let _ = writeln!(
            out,
            "{:>6}  {:>8}  {:>8}  {:>6}  {:>6}  {:>6}  {:>6}  {:>3}  {:>9}",
            r.shards,
            fmt_duration(r.wall),
            fmt_duration(r.merge_wall),
            r.steals,
            r.hits,
            r.misses,
            r.merged,
            r.duplicates,
            r.conflicts
        );
    }
    let _ = writeln!(
        out,
        "\nwarm re-run: {} misses, {} hits, {} seeded, digest {} (cold {}, warm {})",
        m.warm_misses,
        m.warm_hits,
        m.warm_seeded,
        if m.warm_digest_matches { "reproduced" } else { "DIVERGED" },
        fmt_duration(m.cold_wall),
        fmt_duration(m.warm_wall)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The benchmark gates itself: a baseline built from its own
    /// deterministic section must show no drift, and the tentpole
    /// invariants (zero warm misses, digest agreement) must hold.
    #[test]
    fn fleet_document_round_trips_and_gates_itself() {
        let m = collect_fleet_metrics();
        assert_eq!(m.truth_mismatches, 0, "generator ground truth holds");
        assert!(m.shard_digests_agree, "every shard count yields the same digest");
        assert_eq!(m.warm_misses, 0, "warm re-run recomputes nothing");
        assert!(m.warm_digest_matches, "warm re-run reproduces the digest");
        let doc = fleet_to_json(&m);
        let det = doc.get("deterministic").expect("deterministic section").clone();
        let baseline = obj(vec![("fleet", det)]);
        assert!(fleet_drift(&doc, &baseline).is_empty(), "self-baseline shows no drift");
        let corrupt = obj(vec![("fleet", obj(vec![("programs", Json::Int(7))]))]);
        assert!(!fleet_drift(&doc, &corrupt).is_empty(), "corrupted baseline is caught");
        let text = render_fleet(&m);
        assert!(text.contains("E15: fleet shard sweep"));
        assert!(text.contains("warm re-run: 0 misses"));
    }
}
